//! A composable builder for custom workloads.
//!
//! The registry's 23 models cover the paper's benchmarks; this builder
//! lets downstream users assemble *new* workloads from the same Fig. 2
//! vocabulary — named regions plus a sequence of phases over them —
//! without hand-writing page indices.
//!
//! # Examples
//!
//! ```
//! use uvm_workloads::WorkloadBuilder;
//!
//! // A GEMM-like composite: stream A once while sweeping B twice, then
//! // write C.
//! let w = WorkloadBuilder::new("mini-gemm")
//!     .region("a", 64)
//!     .region("b", 256)
//!     .region("c", 32)
//!     .stream("a")?
//!     .sweeps("b", 2)?
//!     .stream("c")?
//!     .build()?;
//! assert_eq!(w.footprint_pages(), 64 + 256 + 32);
//! assert_eq!(w.global_sequence().len(), 64 + 512 + 32);
//! # Ok::<(), uvm_workloads::BuildError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use uvm_util::Rng;

use crate::patterns;

/// Error from [`WorkloadBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A phase referenced a region name that was never declared.
    UnknownRegion(String),
    /// A region was declared twice.
    DuplicateRegion(String),
    /// A region was declared with zero pages.
    EmptyRegion(String),
    /// The workload has no phases.
    NoPhases,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownRegion(n) => write!(f, "unknown region {n:?}"),
            BuildError::DuplicateRegion(n) => write!(f, "region {n:?} declared twice"),
            BuildError::EmptyRegion(n) => write!(f, "region {n:?} has zero pages"),
            BuildError::NoPhases => f.write_str("workload has no phases"),
        }
    }
}

impl Error for BuildError {}

#[derive(Debug, Clone)]
enum Phase {
    Stream {
        region: String,
        refs: u32,
    },
    Sweeps {
        region: String,
        n: u32,
    },
    RegionMoving {
        region: String,
        parts: u64,
        rounds: u32,
    },
    Irregular {
        region: String,
        window: u64,
        max_extra: u32,
    },
    HotMix {
        base: String,
        hot: String,
        period: usize,
        touches: u32,
    },
}

/// A finished custom workload.
#[derive(Debug, Clone)]
pub struct CustomWorkload {
    name: String,
    footprint: u64,
    global: Vec<u64>,
}

impl CustomWorkload {
    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Footprint in pages.
    pub fn footprint_pages(&self) -> u64 {
        self.footprint
    }

    /// The global page-reference sequence.
    pub fn global_sequence(&self) -> &[u64] {
        &self.global
    }

    /// Distributes the workload over `n_streams` warps (see
    /// [`crate::Trace::from_global`]).
    pub fn trace(&self, n_streams: u32, tile: u32, compute_per_op: u16) -> crate::Trace {
        crate::Trace::from_global(
            &self.global,
            self.footprint,
            compute_per_op,
            n_streams,
            tile,
        )
    }
}

/// Builder for [`CustomWorkload`]; declare regions, then chain phases.
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    name: String,
    regions: Vec<(String, u64)>,
    bases: HashMap<String, u64>,
    footprint: u64,
    phases: Vec<Phase>,
    seed: u64,
}

impl WorkloadBuilder {
    /// Starts a workload named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        WorkloadBuilder {
            name: name.into(),
            regions: Vec::new(),
            bases: HashMap::new(),
            footprint: 0,
            phases: Vec::new(),
            seed: 0x5EED,
        }
    }

    /// Sets the RNG seed for stochastic phases.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Declares a contiguous region of `pages` pages.
    ///
    /// # Panics
    ///
    /// Never panics; duplicate or empty regions surface at [`Self::build`].
    pub fn region(mut self, name: impl Into<String>, pages: u64) -> Self {
        let name = name.into();
        if !self.bases.contains_key(&name) {
            self.bases.insert(name.clone(), self.footprint);
            self.footprint += pages;
        } else {
            // Remember the duplicate; build() reports it.
            self.footprint = self.footprint.wrapping_add(0);
        }
        self.regions.push((name, pages));
        self
    }

    fn check_region(&self, name: &str) -> Result<(), BuildError> {
        if self.bases.contains_key(name) {
            Ok(())
        } else {
            Err(BuildError::UnknownRegion(name.to_string()))
        }
    }

    /// Streams the region once, `refs == 1` touch per page.
    pub fn stream(self, region: &str) -> Result<Self, BuildError> {
        self.stream_refs(region, 1)
    }

    /// Streams the region once with `refs` back-to-back touches per page.
    pub fn stream_refs(mut self, region: &str, refs: u32) -> Result<Self, BuildError> {
        self.check_region(region)?;
        self.phases.push(Phase::Stream {
            region: region.to_string(),
            refs,
        });
        Ok(self)
    }

    /// Sweeps the whole region cyclically `n` times (type II).
    pub fn sweeps(mut self, region: &str, n: u32) -> Result<Self, BuildError> {
        self.check_region(region)?;
        self.phases.push(Phase::Sweeps {
            region: region.to_string(),
            n,
        });
        Ok(self)
    }

    /// Region-moving over the region: `parts` sub-regions, each swept
    /// `rounds` times (type VI).
    pub fn region_moving(
        mut self,
        region: &str,
        parts: u64,
        rounds: u32,
    ) -> Result<Self, BuildError> {
        self.check_region(region)?;
        self.phases.push(Phase::RegionMoving {
            region: region.to_string(),
            parts,
            rounds,
        });
        Ok(self)
    }

    /// Windowed page-irregular reuse over the region (irregular#2-style).
    pub fn irregular(
        mut self,
        region: &str,
        window: u64,
        max_extra: u32,
    ) -> Result<Self, BuildError> {
        self.check_region(region)?;
        self.phases.push(Phase::Irregular {
            region: region.to_string(),
            window,
            max_extra,
        });
        Ok(self)
    }

    /// Streams `base` with hot touches into `hot` every `period` refs.
    pub fn hot_mix(
        mut self,
        base: &str,
        hot: &str,
        period: usize,
        touches: u32,
    ) -> Result<Self, BuildError> {
        self.check_region(base)?;
        self.check_region(hot)?;
        self.phases.push(Phase::HotMix {
            base: base.to_string(),
            hot: hot.to_string(),
            period,
            touches,
        });
        Ok(self)
    }

    /// Builds the workload.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for duplicate/empty regions or an empty phase
    /// list.
    pub fn build(self) -> Result<CustomWorkload, BuildError> {
        let mut seen = HashMap::new();
        for (name, pages) in &self.regions {
            if *pages == 0 {
                return Err(BuildError::EmptyRegion(name.clone()));
            }
            if seen.insert(name.clone(), ()).is_some() {
                return Err(BuildError::DuplicateRegion(name.clone()));
            }
        }
        if self.phases.is_empty() {
            return Err(BuildError::NoPhases);
        }
        let sizes: HashMap<String, u64> = self.regions.iter().cloned().collect();
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut global = Vec::new();
        for phase in &self.phases {
            let (region, seq) = match phase {
                Phase::Stream { region, refs } => {
                    (region, patterns::streaming(sizes[region], *refs))
                }
                Phase::Sweeps { region, n } => (region, patterns::thrashing(sizes[region], *n)),
                Phase::RegionMoving {
                    region,
                    parts,
                    rounds,
                } => (
                    region,
                    patterns::region_moving(sizes[region], *parts, *rounds),
                ),
                Phase::Irregular {
                    region,
                    window,
                    max_extra,
                } => (
                    region,
                    patterns::page_irregular(sizes[region], *window, *max_extra, &mut rng),
                ),
                Phase::HotMix {
                    base,
                    hot,
                    period,
                    touches,
                } => {
                    let base_seq = patterns::streaming(sizes[base], 1);
                    let hot_base = self.bases[hot];
                    let mixed = patterns::with_hot_region(
                        &base_seq,
                        sizes[base], // placeholder offset; rebased below
                        sizes[hot],
                        *period,
                        *touches,
                        &mut rng,
                    );
                    // Rebase: base-region pages offset by its own base; hot
                    // touches (>= sizes[base]) map into the hot region.
                    let base_off = self.bases[base];
                    let base_len = sizes[base];
                    global.extend(mixed.into_iter().map(|p| {
                        if p < base_len {
                            base_off + p
                        } else {
                            hot_base + (p - base_len)
                        }
                    }));
                    continue;
                }
            };
            let off = self.bases[region];
            global.extend(seq.into_iter().map(|p| off + p));
        }
        Ok(CustomWorkload {
            name: self.name,
            footprint: self.footprint,
            global,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_sequential() {
        let w = WorkloadBuilder::new("w")
            .region("x", 10)
            .region("y", 20)
            .stream("x")
            .unwrap()
            .stream("y")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(w.footprint_pages(), 30);
        let seq = w.global_sequence();
        assert_eq!(&seq[..10], &(0..10).collect::<Vec<_>>()[..]);
        assert_eq!(&seq[10..], &(10..30).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn sweeps_phase_repeats() {
        let w = WorkloadBuilder::new("w")
            .region("x", 5)
            .sweeps("x", 3)
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(w.global_sequence().len(), 15);
    }

    #[test]
    fn unknown_region_is_an_error() {
        let err = WorkloadBuilder::new("w")
            .region("x", 5)
            .stream("nope")
            .unwrap_err();
        assert_eq!(err, BuildError::UnknownRegion("nope".to_string()));
    }

    #[test]
    fn duplicate_region_is_an_error() {
        let err = WorkloadBuilder::new("w")
            .region("x", 5)
            .region("x", 6)
            .stream("x")
            .unwrap()
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::DuplicateRegion("x".to_string()));
    }

    #[test]
    fn empty_region_is_an_error() {
        let err = WorkloadBuilder::new("w")
            .region("x", 0)
            .stream("x")
            .unwrap()
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::EmptyRegion("x".to_string()));
    }

    #[test]
    fn no_phases_is_an_error() {
        let err = WorkloadBuilder::new("w")
            .region("x", 5)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::NoPhases);
    }

    #[test]
    fn hot_mix_touches_both_regions() {
        let w = WorkloadBuilder::new("w")
            .region("input", 100)
            .region("bins", 20)
            .hot_mix("input", "bins", 10, 2)
            .unwrap()
            .build()
            .unwrap();
        let seq = w.global_sequence();
        assert!(seq.iter().any(|&p| p < 100));
        assert!(seq.iter().any(|&p| (100..120).contains(&p)));
        assert!(seq.iter().all(|&p| p < 120));
    }

    #[test]
    fn trace_distribution_works() {
        let w = WorkloadBuilder::new("w")
            .region("x", 16)
            .sweeps("x", 2)
            .unwrap()
            .build()
            .unwrap();
        let t = w.trace(4, 2, 3);
        assert_eq!(t.total_ops(), 32);
        assert_eq!(t.footprint_pages(), 16);
    }

    #[test]
    fn deterministic_per_seed() {
        let build = |seed| {
            WorkloadBuilder::new("w")
                .seed(seed)
                .region("x", 64)
                .irregular("x", 32, 2)
                .unwrap()
                .build()
                .unwrap()
                .global_sequence()
                .to_vec()
        };
        assert_eq!(build(1), build(1));
        assert_ne!(build(1), build(2));
    }
}
