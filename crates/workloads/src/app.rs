//! Application model type and pattern taxonomy.

use std::fmt;

use uvm_util::impl_json_enum;

/// The six access-pattern types of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PatternType {
    /// Type I — streaming: every page referenced once (or a fixed small
    /// number of times) in a single pass.
    Streaming,
    /// Type II — thrashing: the whole footprint (larger than memory) is
    /// swept repeatedly.
    Thrashing,
    /// Type III — part repetitive: a pass in which part of the pages is
    /// re-referenced with some probability.
    PartRepetitive,
    /// Type IV — most repetitive: most pages referenced multiple times.
    MostRepetitive,
    /// Type V — repetitive-thrashing: a most-repetitive sequence repeated,
    /// with footprint larger than memory.
    RepetitiveThrashing,
    /// Type VI — region moving: contiguous regions referenced intensively
    /// one after another, never returning.
    RegionMoving,
}

impl PatternType {
    /// All six types in paper order.
    pub const ALL: [PatternType; 6] = [
        PatternType::Streaming,
        PatternType::Thrashing,
        PatternType::PartRepetitive,
        PatternType::MostRepetitive,
        PatternType::RepetitiveThrashing,
        PatternType::RegionMoving,
    ];

    /// The roman-numeral label used throughout the paper ("I".."VI").
    pub fn roman(self) -> &'static str {
        match self {
            PatternType::Streaming => "I",
            PatternType::Thrashing => "II",
            PatternType::PartRepetitive => "III",
            PatternType::MostRepetitive => "IV",
            PatternType::RepetitiveThrashing => "V",
            PatternType::RegionMoving => "VI",
        }
    }
}

impl_json_enum!(PatternType {
    Streaming,
    Thrashing,
    PartRepetitive,
    MostRepetitive,
    RepetitiveThrashing,
    RegionMoving,
});

impl fmt::Display for PatternType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Type {}", self.roman())
    }
}

/// Source benchmark suite (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia benchmark suite.
    Rodinia,
    /// Parboil benchmark suite.
    Parboil,
    /// Polybench/GPU benchmark suite.
    Polybench,
}

impl_json_enum!(Suite {
    Rodinia,
    Parboil,
    Polybench
});

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::Rodinia => "Rodinia",
            Suite::Parboil => "Parboil",
            Suite::Polybench => "Polybench",
        };
        f.write_str(s)
    }
}

/// A synthetic model of one of the paper's 23 applications.
///
/// Each model owns a deterministic generator producing its global
/// page-reference sequence over page indices `0..footprint_pages`. Models
/// are registered in [`crate::registry`].
///
/// # Examples
///
/// ```
/// use uvm_workloads::registry;
///
/// let nw = registry::by_abbr("NW").unwrap();
/// let seq = nw.global_sequence();
/// assert!(seq.iter().all(|&p| p < nw.footprint_pages()));
/// ```
#[derive(Clone)]
pub struct App {
    pub(crate) name: &'static str,
    pub(crate) abbr: &'static str,
    pub(crate) suite: Suite,
    pub(crate) pattern: PatternType,
    pub(crate) footprint_pages: u64,
    pub(crate) compute_per_op: u16,
    pub(crate) seed: u64,
    pub(crate) build: fn(&App) -> Vec<u64>,
}

impl App {
    /// Full application name ("hotspot", "b+tree", ...).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The paper's abbreviation ("HOT", "B+T", ...).
    pub fn abbr(&self) -> &'static str {
        self.abbr
    }

    /// Source benchmark suite.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// The access-pattern type assigned by Table II.
    pub fn pattern(&self) -> PatternType {
        self.pattern
    }

    /// Footprint in pages; all generated page indices are below this.
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_pages
    }

    /// Compute instructions modelled per memory operation (shapes IPC
    /// without affecting paging behaviour).
    pub fn compute_per_op(&self) -> u16 {
        self.compute_per_op
    }

    /// RNG seed used by stochastic generators; fixed per app so traces are
    /// reproducible.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the global page-reference sequence (deterministic).
    pub fn global_sequence(&self) -> Vec<u64> {
        (self.build)(self)
    }
}

impl fmt::Debug for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("App")
            .field("name", &self.name)
            .field("abbr", &self.abbr)
            .field("suite", &self.suite)
            .field("pattern", &self.pattern)
            .field("footprint_pages", &self.footprint_pages)
            .finish_non_exhaustive()
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.abbr, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roman_labels() {
        assert_eq!(PatternType::Streaming.roman(), "I");
        assert_eq!(PatternType::RegionMoving.roman(), "VI");
        assert_eq!(PatternType::ALL.len(), 6);
        assert_eq!(format!("{}", PatternType::Thrashing), "Type II");
    }

    #[test]
    fn pattern_and_suite_json_roundtrip() {
        use uvm_util::{FromJson, ToJson};
        for p in PatternType::ALL {
            assert_eq!(PatternType::from_json(&p.to_json()).unwrap(), p);
        }
        for s in [Suite::Rodinia, Suite::Parboil, Suite::Polybench] {
            assert_eq!(Suite::from_json(&s.to_json()).unwrap(), s);
        }
    }

    #[test]
    fn suite_display() {
        assert_eq!(Suite::Rodinia.to_string(), "Rodinia");
        assert_eq!(Suite::Parboil.to_string(), "Parboil");
        assert_eq!(Suite::Polybench.to_string(), "Polybench");
    }
}
