//! The 23 application models of Table II.
//!
//! Each model synthesizes the page-level access pattern the paper documents
//! for that application, scaled so that simulations complete quickly while
//! preserving every ratio that matters (footprint vs. GPU memory at a given
//! oversubscription rate, reuse distance vs. TLB reach, page-set counter
//! statistics at classification time).
//!
//! Footprints here are in the 1–4 K page range (4–16 MB), ~4–8× smaller
//! than the paper's (3–130 MB). The simulator's scaled TLB configuration
//! (`uvm_sim::scaled_config`) shrinks TLB reach by the same factor so that
//! page-walk-level reuse visibility matches the paper's setup.

use uvm_util::Rng;

use crate::app::{App, PatternType, Suite};
use crate::patterns;

fn rng_for(app: &App) -> Rng {
    Rng::seed_from_u64(app.seed)
}

// ---------------------------------------------------------------------------
// Type I — streaming
// ---------------------------------------------------------------------------

fn build_hot(app: &App) -> Vec<u64> {
    // hotspot: reads temperature + power grids, writes result; each page
    // visited twice in a short window during a single pass.
    patterns::streaming(app.footprint_pages, 2)
}

fn build_leu(app: &App) -> Vec<u64> {
    // leukocyte: frame-by-frame single pass.
    patterns::streaming(app.footprint_pages, 1)
}

fn build_cut(app: &App) -> Vec<u64> {
    // cutcp: lattice points streamed, two touches per page.
    patterns::streaming(app.footprint_pages, 2)
}

fn build_2dc(app: &App) -> Vec<u64> {
    // 2DCONV: stencil input streamed once.
    patterns::streaming(app.footprint_pages, 1)
}

fn build_gem(app: &App) -> Vec<u64> {
    // GEMM C = A×B: A row-tiles streamed once; for each A tile the whole B
    // operand is reswept. B alone exceeds GPU memory at both studied
    // oversubscription rates, which is why LRU underperforms on GEM even
    // though it is a type I application (Fig. 3's "except GEM").
    let a_pages = 384u64;
    let b_pages = 2048u64;
    let c_pages = app.footprint_pages - a_pages - b_pages;
    let a_tile = 64u64;
    let n_tiles = a_pages / a_tile;
    let b_base = a_pages;
    let c_base = a_pages + b_pages;
    let mut out = Vec::new();
    for t in 0..n_tiles {
        // Touch this A tile, then stream B against it.
        let a_seq: Vec<u64> = (t * a_tile..(t + 1) * a_tile).collect();
        let b_seq: Vec<u64> = (b_base..b_base + b_pages).collect();
        out.extend(patterns::interleave(&a_seq, 2, &b_seq, 64));
        // Write back the C tile produced by this row block.
        let c_per_tile = c_pages / n_tiles;
        out.extend(c_base + t * c_per_tile..c_base + (t + 1) * c_per_tile);
    }
    out
}

// ---------------------------------------------------------------------------
// Type II — thrashing
// ---------------------------------------------------------------------------

fn build_srd(app: &App) -> Vec<u64> {
    // srad_v2: iterative stencil, whole footprint swept per iteration.
    patterns::thrashing(app.footprint_pages, 6)
}

fn build_hsd(app: &App) -> Vec<u64> {
    // hotspot3D: 3-D stencil, many iterations — the paper's best case for
    // HPE (2.81x over LRU at 75%).
    patterns::thrashing(app.footprint_pages, 8)
}

fn build_mrq(app: &App) -> Vec<u64> {
    // mri-q: Q computation re-reads sample data per chunk.
    patterns::thrashing(app.footprint_pages, 4)
}

fn build_stn(app: &App) -> Vec<u64> {
    // stencil: smaller-footprint iterative sweep.
    patterns::thrashing(app.footprint_pages, 6)
}

// ---------------------------------------------------------------------------
// Type III — part repetitive
// ---------------------------------------------------------------------------

fn build_pat(app: &App) -> Vec<u64> {
    // pathfinder: row pass with some rows (page sets) revisited.
    patterns::part_repetitive(app.footprint_pages, 16, 0.30, 1, &mut rng_for(app))
}

fn build_dwt(app: &App) -> Vec<u64> {
    // dwt2d: wavelet levels revisit a fraction of the image sets.
    patterns::part_repetitive(app.footprint_pages, 16, 0.40, 2, &mut rng_for(app))
}

fn build_bkp(app: &App) -> Vec<u64> {
    // backprop: layer pass, some weight sets revisited.
    patterns::part_repetitive(app.footprint_pages, 16, 0.25, 1, &mut rng_for(app))
}

fn build_kmn(app: &App) -> Vec<u64> {
    // kmeans: largest footprint; per-page (feature-row) reuse counts vary,
    // making page-set counters indivisible by the set size — the paper's
    // motivating outlier for classifying by ratio_1 (irregular#2).
    let mut rng = rng_for(app);
    let features = app.footprint_pages - 256;
    // Centroids are seeded with one pass over the centroid region.
    let mut out: Vec<u64> = (features..app.footprint_pages).collect();
    for _ in 0..2 {
        let pass = patterns::page_irregular(features, 256, 3, &mut rng);
        // Centroid pages interjected between feature reads.
        out.extend(patterns::with_hot_region(
            &pass, features, 256, 24, 1, &mut rng,
        ));
    }
    out
}

fn build_sad(app: &App) -> Vec<u64> {
    // sad: per-macroblock reuse varies by page; two passes.
    let mut rng = rng_for(app);
    let n = app.footprint_pages;
    let mut out = patterns::page_irregular(n, 256, 2, &mut rng);
    out.extend(patterns::page_irregular(n, 256, 2, &mut rng));
    out
}

// ---------------------------------------------------------------------------
// Type IV — most repetitive
// ---------------------------------------------------------------------------

fn build_nw(app: &App) -> Vec<u64> {
    // nw: the paper's even/odd example (Section IV-C). The input matrix's
    // even pages are swept for several (jittered) rounds while the output
    // array streams alongside (the streaming faults keep HIR flushes
    // flowing so the even-page reuse reaches the page set chain); then the
    // odd pages likewise; finally a full traceback pass over the input.
    let mut rng = rng_for(app);
    let input = 1024u64;
    let out_half = (app.footprint_pages - input) / 2;
    let even = patterns::parity_phase_jittered(input, 0, 6, 8, &mut rng);
    let out_a: Vec<u64> = (input..input + out_half).collect();
    let odd = patterns::parity_phase_jittered(input, 1, 6, 8, &mut rng);
    let out_b: Vec<u64> = (input + out_half..app.footprint_pages).collect();
    let mut seq = patterns::interleave(&even, 64, &out_a, 8);
    seq.extend(patterns::interleave(&odd, 64, &out_b, 8));
    seq.extend(patterns::streaming(input, 1));
    seq
}

fn build_bfs(app: &App) -> Vec<u64> {
    // bfs: per level, the edge array is reswept (embedded thrashing — the
    // reason the paper's dynamic adjustment must switch BFS from LRU to
    // MRU-C) while frontier node pages are touched irregularly.
    let mut rng = rng_for(app);
    let edge_pages = 1024u64;
    let node_pages = app.footprint_pages - edge_pages;
    // Node array (levels, visited flags) is initialized with one full pass.
    let mut out: Vec<u64> = (edge_pages..edge_pages + node_pages).collect();
    for _ in 0..6 {
        let sweep = patterns::streaming(edge_pages, 1);
        out.extend(patterns::with_hot_region(
            &sweep, edge_pages, node_pages, 16, 2, &mut rng,
        ));
    }
    out
}

fn build_mvt(app: &App) -> Vec<u64> {
    // MVT: touches pages with an address stride of 4 (Section V-B), which
    // wastes HIR entry space (only 4 of 16 counters per entry used). A
    // partial (probabilistic) resweep of each column keeps the page-set
    // counters indivisible at every oversubscription rate, matching MVT's
    // irregular classification.
    let mut rng = rng_for(app);
    let n = app.footprint_pages;
    let mut out = Vec::new();
    for _pass in 0..2 {
        for offset in 0..4 {
            let cols = patterns::strided(n, 4, offset, 1);
            out.extend_from_slice(&cols);
            out.extend(cols.iter().copied().filter(|_| rng.gen_bool(0.4)));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Type V — repetitive-thrashing
// ---------------------------------------------------------------------------

fn build_hwl(app: &App) -> Vec<u64> {
    // heartwall: windowed frame processing (each window of pages reswept a
    // few times before moving on), whole pass repeated per frame batch.
    // Windows are 512 pages — comfortably larger than the warp-concurrency
    // shuffle plus TLB reach, so the resweeps stay visible as page walks —
    // and four rounds per window drive the per-set touch count past the
    // saturating counter maximum, which absorbs the walk-count jitter that
    // fault-queue skew introduces (the reason the paper saturates at 64).
    let one = patterns::region_moving(app.footprint_pages, 3, 6);
    let mut out = Vec::new();
    for _ in 0..3 {
        out.extend_from_slice(&one);
    }
    out
}

fn build_sgm(app: &App) -> Vec<u64> {
    // sgemm: like GEM, a thrashing B-operand resweep (part of its pattern
    // "is like type II", Section V-A), but with per-set-uniform touches so
    // ratio_1 stays small and SGM classifies as regular. Two wide A tiles
    // mean GPU memory first fills during B's *first* sweep, when all
    // counters are still small-and-regular — the paper's SGM observation.
    let a_pages = 512u64;
    let b_pages = 1024u64;
    let b_base = a_pages;
    let c_base = a_pages + b_pages;
    let c_pages = app.footprint_pages - c_base;
    let one = {
        let mut pass = Vec::new();
        for t in 0..2u64 {
            let a_seq: Vec<u64> = (t * 256..(t + 1) * 256).collect();
            let b_seq: Vec<u64> = (b_base..b_base + b_pages).collect();
            pass.extend(patterns::interleave(&a_seq, 4, &b_seq, 16));
            let c_per = c_pages / 2;
            pass.extend(c_base + t * c_per..c_base + (t + 1) * c_per);
        }
        pass
    };
    // Repetitive-thrashing: the whole kernel pass repeats.
    let mut out = one.clone();
    out.extend(one);
    out
}

fn build_his(app: &App) -> Vec<u64> {
    // histo: input stream with hot histogram bins touched irregularly; the
    // bin sets' indivisible counters push ratio_1 over the threshold.
    let mut rng = rng_for(app);
    let input_pages = 1024u64;
    let bin_pages = app.footprint_pages - input_pages;
    // Histogram bins are zeroed with one full pass before accumulation.
    let mut out: Vec<u64> = (input_pages..input_pages + bin_pages).collect();
    for _ in 0..2 {
        let pass = patterns::streaming(input_pages, 1);
        out.extend(patterns::with_hot_region(
            &pass,
            input_pages,
            bin_pages,
            8,
            3,
            &mut rng,
        ));
    }
    out
}

fn build_spv(app: &App) -> Vec<u64> {
    // spmv: matrix windows reswept (large, regular counters -> irregular#1)
    // plus an irregularly-touched x-vector region.
    let mut rng = rng_for(app);
    let matrix_pages = app.footprint_pages - 256;
    let one = patterns::region_moving(matrix_pages, 4, 6);
    // The x vector is read in full when first loaded.
    let mut out: Vec<u64> = (matrix_pages..app.footprint_pages).collect();
    for _ in 0..3 {
        out.extend(patterns::with_hot_region(
            &one,
            matrix_pages,
            256,
            48,
            1,
            &mut rng,
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Type VI — region moving
// ---------------------------------------------------------------------------

fn build_bpt(app: &App) -> Vec<u64> {
    // b+tree: query batches traverse one subtree region (512 pages) at a
    // time; four rounds per region saturate the per-set counters (see the
    // HWL comment).
    patterns::region_moving(app.footprint_pages, 3, 6)
}

fn build_hyb(app: &App) -> Vec<u64> {
    // hybridsort: bucket-by-bucket processing (512-page buckets).
    patterns::region_moving(app.footprint_pages, 4, 6)
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

macro_rules! app {
    ($name:literal, $abbr:literal, $suite:ident, $pattern:ident,
     $pages:literal, $compute:literal, $seed:literal, $build:ident) => {
        App {
            name: $name,
            abbr: $abbr,
            suite: Suite::$suite,
            pattern: PatternType::$pattern,
            footprint_pages: $pages,
            compute_per_op: $compute,
            seed: $seed,
            build: $build,
        }
    };
}

/// The 23 applications of Table II, in paper order (by pattern type).
pub static APPS: [App; 23] = [
    // Type I
    app!("hotspot", "HOT", Rodinia, Streaming, 2048, 6, 101, build_hot),
    app!(
        "leukocyte",
        "LEU",
        Rodinia,
        Streaming,
        1536,
        8,
        102,
        build_leu
    ),
    app!("cutcp", "CUT", Parboil, Streaming, 1024, 10, 103, build_cut),
    app!("2DCONV", "2DC", Polybench, Streaming, 2048, 4, 104, build_2dc),
    app!("GEMM", "GEM", Polybench, Streaming, 2560, 6, 105, build_gem),
    // Type II
    app!("srad_v2", "SRD", Rodinia, Thrashing, 2048, 5, 201, build_srd),
    app!(
        "hotspot3D",
        "HSD",
        Rodinia,
        Thrashing,
        2304,
        5,
        202,
        build_hsd
    ),
    app!("mri-q", "MRQ", Parboil, Thrashing, 1280, 8, 203, build_mrq),
    app!("stencil", "STN", Parboil, Thrashing, 768, 5, 204, build_stn),
    // Type III
    app!(
        "pathfinder",
        "PAT",
        Rodinia,
        PartRepetitive,
        1536,
        4,
        301,
        build_pat
    ),
    app!(
        "dwt2d",
        "DWT",
        Rodinia,
        PartRepetitive,
        2560,
        5,
        302,
        build_dwt
    ),
    app!(
        "backprop",
        "BKP",
        Rodinia,
        PartRepetitive,
        1280,
        6,
        303,
        build_bkp
    ),
    app!(
        "kmeans",
        "KMN",
        Rodinia,
        PartRepetitive,
        4096,
        4,
        304,
        build_kmn
    ),
    app!(
        "sad",
        "SAD",
        Parboil,
        PartRepetitive,
        2048,
        5,
        305,
        build_sad
    ),
    // Type IV
    app!("nw", "NW", Rodinia, MostRepetitive, 1536, 4, 401, build_nw),
    app!(
        "bfs",
        "BFS",
        Rodinia,
        MostRepetitive,
        1536,
        3,
        402,
        build_bfs
    ),
    app!(
        "MVT",
        "MVT",
        Polybench,
        MostRepetitive,
        1024,
        4,
        403,
        build_mvt
    ),
    // Type V
    app!(
        "heartwall",
        "HWL",
        Rodinia,
        RepetitiveThrashing,
        1536,
        6,
        501,
        build_hwl
    ),
    app!(
        "sgemm",
        "SGM",
        Parboil,
        RepetitiveThrashing,
        1792,
        6,
        502,
        build_sgm
    ),
    app!(
        "histo",
        "HIS",
        Parboil,
        RepetitiveThrashing,
        1536,
        4,
        503,
        build_his
    ),
    app!(
        "spmv",
        "SPV",
        Parboil,
        RepetitiveThrashing,
        2304,
        4,
        504,
        build_spv
    ),
    // Type VI
    app!(
        "b+tree",
        "B+T",
        Rodinia,
        RegionMoving,
        1536,
        5,
        601,
        build_bpt
    ),
    app!(
        "hybridsort",
        "HYB",
        Rodinia,
        RegionMoving,
        2048,
        5,
        602,
        build_hyb
    ),
];

/// Returns all 23 registered applications in paper order.
pub fn all() -> &'static [App] {
    &APPS
}

/// Looks up an application by its paper abbreviation (case-sensitive,
/// e.g. `"HSD"`).
pub fn by_abbr(abbr: &str) -> Option<&'static App> {
    APPS.iter().find(|a| a.abbr == abbr)
}

/// Returns the applications of one pattern type, in registry order.
pub fn by_pattern(pattern: PatternType) -> Vec<&'static App> {
    APPS.iter().filter(|a| a.pattern == pattern).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn twenty_three_apps_with_unique_abbrs() {
        assert_eq!(all().len(), 23);
        let abbrs: HashSet<&str> = all().iter().map(|a| a.abbr()).collect();
        assert_eq!(abbrs.len(), 23);
        let seeds: HashSet<u64> = all().iter().map(|a| a.seed()).collect();
        assert_eq!(seeds.len(), 23);
    }

    #[test]
    fn pattern_counts_match_table2() {
        // Table II: I=5, II=4, III=5, IV=3, V=4, VI=2.
        let counts: Vec<usize> = PatternType::ALL
            .iter()
            .map(|&p| by_pattern(p).len())
            .collect();
        assert_eq!(counts, vec![5, 4, 5, 3, 4, 2]);
    }

    #[test]
    fn lookup_by_abbr() {
        assert_eq!(by_abbr("HSD").unwrap().name(), "hotspot3D");
        assert_eq!(by_abbr("B+T").unwrap().suite(), Suite::Rodinia);
        assert!(by_abbr("hsd").is_none());
        assert!(by_abbr("XXX").is_none());
    }

    #[test]
    fn every_sequence_stays_in_footprint_and_is_deterministic() {
        for app in all() {
            let seq = app.global_sequence();
            assert!(!seq.is_empty(), "{} empty", app.abbr());
            assert!(
                seq.iter().all(|&p| p < app.footprint_pages()),
                "{} out of footprint",
                app.abbr()
            );
            assert_eq!(
                seq,
                app.global_sequence(),
                "{} nondeterministic",
                app.abbr()
            );
        }
    }

    #[test]
    fn every_page_of_every_footprint_is_touched() {
        for app in all() {
            let seq = app.global_sequence();
            let mut seen = vec![false; app.footprint_pages() as usize];
            for &p in &seq {
                seen[p as usize] = true;
            }
            let untouched = seen.iter().filter(|&&s| !s).count();
            // Stochastic generators may skip a handful of pages; footprints
            // must still be essentially fully populated.
            assert!(
                (untouched as f64) < 0.02 * app.footprint_pages() as f64,
                "{}: {untouched} of {} pages untouched",
                app.abbr(),
                app.footprint_pages()
            );
        }
    }

    #[test]
    fn thrashing_apps_resweep_their_footprint() {
        for abbr in ["SRD", "HSD", "MRQ", "STN"] {
            let app = by_abbr(abbr).unwrap();
            let seq = app.global_sequence();
            let refs_per_page = seq.len() as u64 / app.footprint_pages();
            assert!(refs_per_page >= 4, "{abbr} sweeps {refs_per_page}x");
            // Perfectly cyclic: position of page p repeats every footprint.
            assert_eq!(seq[0], seq[app.footprint_pages() as usize]);
        }
    }

    #[test]
    fn nw_has_even_then_odd_phases() {
        let app = by_abbr("NW").unwrap();
        let seq = app.global_sequence();
        let input = 1024u64;
        // Input-matrix touches (pages < 1024) in the first half of the
        // sequence are all even; after the even phase ends, all input
        // touches before the final traceback pass are odd.
        let traceback_start = seq.len() - input as usize;
        let first_odd = seq
            .iter()
            .position(|&p| p < input && p % 2 == 1)
            .expect("odd phase exists");
        for &p in &seq[..first_odd] {
            if p < input {
                assert_eq!(p % 2, 0, "even phase contains odd page {p}");
            }
        }
        for &p in &seq[first_odd..traceback_start] {
            if p < input {
                assert_eq!(p % 2, 1, "odd phase contains even page {p}");
            }
        }
        // Traceback pass covers the full input sequentially.
        assert_eq!(
            seq[traceback_start..].to_vec(),
            (0..input).collect::<Vec<_>>()
        );
    }

    #[test]
    fn mvt_touches_with_stride_4() {
        let app = by_abbr("MVT").unwrap();
        let seq = app.global_sequence();
        // First pass, first offset: all pages congruent to 0 mod 4.
        let quarter = app.footprint_pages() as usize / 4;
        assert!(seq[..quarter].iter().all(|p| p % 4 == 0));
    }

    #[test]
    fn gem_resweeps_b_operand() {
        let app = by_abbr("GEM").unwrap();
        let seq = app.global_sequence();
        // B pages (384..384+2048) are each touched once per A tile (6 tiles).
        let b_page = 1000u64;
        let touches = seq.iter().filter(|&&p| p == b_page).count();
        assert_eq!(touches, 6);
    }

    #[test]
    fn region_moving_apps_never_return() {
        for abbr in ["B+T", "HYB"] {
            let app = by_abbr(abbr).unwrap();
            let seq = app.global_sequence();
            let mut max_seen = 0u64;
            // Pages strictly below (max_seen - region) must not reappear.
            let region = app.footprint_pages() / if abbr == "B+T" { 3 } else { 4 };
            for &p in &seq {
                assert!(
                    p + 2 * region > max_seen,
                    "{abbr} returned to distant page {p} after {max_seen}"
                );
                max_seen = max_seen.max(p);
            }
        }
    }
}
