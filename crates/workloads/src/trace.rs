//! Trace representation and distribution over per-warp streams.

use uvm_types::PageId;
use uvm_util::impl_json_struct;

use crate::App;

/// One simulated instruction bundle: a memory access to `page` followed by
/// `compute` compute instructions (one cycle each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Op {
    /// The virtual page touched by the memory access.
    pub page: PageId,
    /// Compute instructions executed after the access.
    pub compute: u16,
}

impl_json_struct!(Op { page, compute });

/// A workload trace: one op stream per simulated warp.
///
/// [`Trace::build`] distributes an application's global page-reference
/// sequence over `n_streams` streams in contiguous tiles dealt round-robin,
/// mimicking how consecutive GPU thread blocks cover consecutive portions
/// of a kernel's iteration space. With warps progressing at similar rates,
/// the aggregate reference order seen by the memory system approximates the
/// global sequence.
///
/// # Examples
///
/// ```
/// use uvm_workloads::{registry, Trace};
///
/// let app = registry::by_abbr("HOT").unwrap();
/// let trace = Trace::build(app, 4, 8);
/// let total: usize = trace.streams().iter().map(|s| s.len()).sum();
/// assert_eq!(total as u64, trace.total_ops());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    streams: Vec<Vec<Op>>,
    footprint_pages: u64,
    total_ops: u64,
}

impl_json_struct!(Trace {
    streams,
    footprint_pages,
    total_ops,
});

impl Trace {
    /// Builds a trace for `app`, dealing tiles of `tile` consecutive global
    /// references round-robin to `n_streams` streams.
    ///
    /// # Panics
    ///
    /// Panics if `n_streams` or `tile` is zero.
    pub fn build(app: &App, n_streams: u32, tile: u32) -> Trace {
        let global = app.global_sequence();
        Self::from_global(
            &global,
            app.footprint_pages(),
            app.compute_per_op(),
            n_streams,
            tile,
        )
    }

    /// Builds a trace directly from a global page-index sequence.
    ///
    /// Exposed so tests and custom workloads can bypass the registry.
    ///
    /// # Panics
    ///
    /// Panics if `n_streams` or `tile` is zero, or if any page index is not
    /// below `footprint_pages`.
    pub fn from_global(
        global: &[u64],
        footprint_pages: u64,
        compute_per_op: u16,
        n_streams: u32,
        tile: u32,
    ) -> Trace {
        assert!(n_streams > 0, "n_streams must be nonzero");
        assert!(tile > 0, "tile must be nonzero");
        let mut streams: Vec<Vec<Op>> = vec![Vec::new(); n_streams as usize];
        for (chunk_idx, chunk) in global.chunks(tile as usize).enumerate() {
            let stream = &mut streams[chunk_idx % n_streams as usize];
            for &p in chunk {
                assert!(
                    p < footprint_pages,
                    "page index {p} outside footprint {footprint_pages}"
                );
                stream.push(Op {
                    page: PageId(p),
                    compute: compute_per_op,
                });
            }
        }
        Trace {
            streams,
            footprint_pages,
            total_ops: global.len() as u64,
        }
    }

    /// The per-warp op streams.
    pub fn streams(&self) -> &[Vec<Op>] {
        &self.streams
    }

    /// Footprint of the workload in pages.
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_pages
    }

    /// Total number of ops across all streams.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Deterministic round-robin merge of the streams: round `r` yields the
    /// `r`-th op of each stream in stream order. This approximates the
    /// reference order of warps progressing in lockstep and is the order
    /// the Belady ("Ideal") oracle uses for next-use distances.
    pub fn round_robin_interleave(&self) -> Vec<PageId> {
        let mut out = Vec::with_capacity(self.total_ops as usize);
        let max_len = self.streams.iter().map(Vec::len).max().unwrap_or(0);
        for r in 0..max_len {
            for s in &self.streams {
                if let Some(op) = s.get(r) {
                    out.push(op.page);
                }
            }
        }
        out
    }

    /// Number of distinct pages actually referenced (compulsory faults
    /// under unconstrained memory).
    pub fn distinct_pages(&self) -> u64 {
        let mut seen = vec![false; self.footprint_pages as usize];
        let mut n = 0u64;
        for s in &self.streams {
            for op in s {
                let idx = op.page.0 as usize;
                if !seen[idx] {
                    seen[idx] = true;
                    n += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiles_deal_round_robin() {
        let global: Vec<u64> = (0..10).collect();
        let t = Trace::from_global(&global, 10, 0, 2, 3);
        // Tiles: [0,1,2] [3,4,5] [6,7,8] [9] -> streams 0,1,0,1.
        let s0: Vec<u64> = t.streams()[0].iter().map(|o| o.page.0).collect();
        let s1: Vec<u64> = t.streams()[1].iter().map(|o| o.page.0).collect();
        assert_eq!(s0, vec![0, 1, 2, 6, 7, 8]);
        assert_eq!(s1, vec![3, 4, 5, 9]);
        assert_eq!(t.total_ops(), 10);
    }

    #[test]
    fn round_robin_interleave_contains_everything() {
        let global: Vec<u64> = (0..23).collect();
        let t = Trace::from_global(&global, 23, 0, 4, 2);
        let merged = t.round_robin_interleave();
        assert_eq!(merged.len(), 23);
        let mut sorted: Vec<u64> = merged.iter().map(|p| p.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn distinct_pages_counts_unique() {
        let global = vec![0, 1, 1, 2, 0];
        let t = Trace::from_global(&global, 3, 0, 1, 4);
        assert_eq!(t.distinct_pages(), 3);
    }

    #[test]
    #[should_panic(expected = "outside footprint")]
    fn rejects_out_of_footprint_page() {
        Trace::from_global(&[5], 5, 0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "n_streams must be nonzero")]
    fn rejects_zero_streams() {
        Trace::from_global(&[0], 1, 0, 0, 1);
    }

    #[test]
    fn compute_per_op_propagates() {
        let t = Trace::from_global(&[0, 1], 2, 7, 1, 1);
        assert!(t.streams()[0].iter().all(|o| o.compute == 7));
    }

    #[test]
    fn trace_json_roundtrip() {
        use uvm_util::{FromJson, Json, ToJson};
        let t = Trace::from_global(&[0, 1, 1, 2], 3, 5, 2, 1);
        let text = t.to_json().to_string();
        let back = Trace::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_global_gives_empty_streams() {
        let t = Trace::from_global(&[], 0, 0, 3, 2);
        assert_eq!(t.total_ops(), 0);
        assert!(t.round_robin_interleave().is_empty());
        assert_eq!(t.distinct_pages(), 0);
    }
}
