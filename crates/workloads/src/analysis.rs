//! Trace analysis: reuse (LRU stack) distances and touch statistics.
//!
//! These tools quantify whether a synthetic trace actually realizes the
//! access pattern it claims: streaming traces have no finite reuse
//! distances, thrashing traces have reuse distances clustered at the
//! footprint size, and windowed traces cluster at the window size.

use std::collections::HashMap;

/// A Fenwick (binary indexed) tree over `n` slots counting marked
/// positions; supports point update and prefix sum in O(log n).
#[derive(Debug, Clone)]
pub struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    /// Creates a tree over `n` positions (1-based internally).
    pub fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at position `i` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn add(&mut self, i: usize, delta: i64) {
        let mut i = i + 1;
        assert!(i < self.tree.len(), "index out of range");
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta) as u64;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based).
    pub fn prefix_sum(&self, i: usize) -> u64 {
        let mut i = (i + 1).min(self.tree.len() - 1);
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Total sum.
    pub fn total(&self) -> u64 {
        self.prefix_sum(self.tree.len().saturating_sub(2))
    }
}

/// Computes the LRU stack distance of every reference: the number of
/// *distinct* pages referenced since the previous reference to the same
/// page, or `None` for first touches.
///
/// A reference with stack distance `d` hits in an LRU memory of capacity
/// `> d`. O(n log n).
///
/// # Examples
///
/// ```
/// use uvm_workloads::analysis::stack_distances;
///
/// let d = stack_distances(&[1, 2, 3, 1, 1]);
/// assert_eq!(d, vec![None, None, None, Some(2), Some(0)]);
/// ```
pub fn stack_distances(global: &[u64]) -> Vec<Option<u64>> {
    let n = global.len();
    let mut fen = Fenwick::new(n);
    let mut last_pos: HashMap<u64, usize> = HashMap::new();
    let mut out = Vec::with_capacity(n);
    for (i, &page) in global.iter().enumerate() {
        match last_pos.get(&page).copied() {
            Some(prev) => {
                // Distinct pages touched in (prev, i) = marked positions.
                let between = fen.prefix_sum(i.saturating_sub(1))
                    - if prev == 0 {
                        0
                    } else {
                        fen.prefix_sum(prev - 1)
                    }
                    - 1; // exclude the page's own mark at prev
                out.push(Some(between));
                fen.add(prev, -1);
            }
            None => out.push(None),
        }
        fen.add(i, 1);
        last_pos.insert(page, i);
    }
    out
}

/// Summary statistics of a global reference trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Total references.
    pub refs: u64,
    /// Distinct pages.
    pub distinct: u64,
    /// First-touch (compulsory) fraction of references.
    pub compulsory_fraction: f64,
    /// Median finite stack distance, if any reuse exists.
    pub median_reuse: Option<u64>,
    /// 90th-percentile finite stack distance.
    pub p90_reuse: Option<u64>,
    /// Maximum references to any single page.
    pub max_refs_per_page: u64,
}

/// Profiles a trace.
pub fn profile(global: &[u64]) -> TraceProfile {
    let distances = stack_distances(global);
    let mut finite: Vec<u64> = distances.iter().filter_map(|d| *d).collect();
    finite.sort_unstable();
    let mut per_page: HashMap<u64, u64> = HashMap::new();
    for &p in global {
        *per_page.entry(p).or_insert(0) += 1;
    }
    let firsts = distances.iter().filter(|d| d.is_none()).count() as u64;
    TraceProfile {
        refs: global.len() as u64,
        distinct: per_page.len() as u64,
        compulsory_fraction: if global.is_empty() {
            0.0
        } else {
            firsts as f64 / global.len() as f64
        },
        median_reuse: percentile(&finite, 0.50),
        p90_reuse: percentile(&finite, 0.90),
        max_refs_per_page: per_page.values().copied().max().unwrap_or(0), // lint:allow(hash-iteration) — max() is order-insensitive
    }
}

fn percentile(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() {
        None
    } else {
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{patterns, registry};

    #[test]
    fn fenwick_prefix_sums() {
        let mut f = Fenwick::new(8);
        f.add(0, 1);
        f.add(3, 2);
        f.add(7, 5);
        assert_eq!(f.prefix_sum(0), 1);
        assert_eq!(f.prefix_sum(2), 1);
        assert_eq!(f.prefix_sum(3), 3);
        assert_eq!(f.prefix_sum(7), 8);
        assert_eq!(f.total(), 8);
        f.add(3, -2);
        assert_eq!(f.prefix_sum(7), 6);
    }

    #[test]
    fn stack_distance_textbook_example() {
        // a b c b a: b's reuse skips {c} -> 1; a's skips {b, c} -> 2.
        let d = stack_distances(&[0, 1, 2, 1, 0]);
        assert_eq!(d, vec![None, None, None, Some(1), Some(2)]);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let d = stack_distances(&[5, 5, 5]);
        assert_eq!(d, vec![None, Some(0), Some(0)]);
    }

    #[test]
    fn streaming_has_no_reuse() {
        let s = patterns::streaming(64, 1);
        let p = profile(&s);
        assert_eq!(p.compulsory_fraction, 1.0);
        assert_eq!(p.median_reuse, None);
        assert_eq!(p.max_refs_per_page, 1);
    }

    #[test]
    fn thrashing_reuse_distance_equals_footprint() {
        // Cyclic sweep of k pages: every reuse skips exactly k-1 pages.
        let s = patterns::thrashing(50, 4);
        let d = stack_distances(&s);
        for dist in d.iter().flatten() {
            assert_eq!(*dist, 49);
        }
        let p = profile(&s);
        assert_eq!(p.median_reuse, Some(49));
        assert_eq!(p.max_refs_per_page, 4);
    }

    #[test]
    fn region_moving_reuse_bounded_by_region() {
        let s = patterns::region_moving(512, 4, 3);
        let p = profile(&s);
        assert_eq!(p.p90_reuse, Some(127), "reuse stays within a region");
    }

    #[test]
    fn registered_type_ii_apps_have_footprint_scale_reuse() {
        for abbr in ["SRD", "HSD"] {
            let app = registry::by_abbr(abbr).unwrap();
            let p = profile(&app.global_sequence());
            let median = p.median_reuse.expect("reuse exists") as f64;
            let footprint = app.footprint_pages() as f64;
            assert!(
                median > 0.9 * footprint,
                "{abbr}: median reuse {median} not at footprint scale {footprint}"
            );
        }
    }

    #[test]
    fn registered_streaming_apps_have_tiny_reuse() {
        for abbr in ["LEU", "2DC"] {
            let app = registry::by_abbr(abbr).unwrap();
            let p = profile(&app.global_sequence());
            assert!(
                p.median_reuse.is_none() || p.median_reuse == Some(0),
                "{abbr}: unexpected reuse {:?}",
                p.median_reuse
            );
        }
    }

    #[test]
    fn profile_of_empty_trace() {
        let p = profile(&[]);
        assert_eq!(p.refs, 0);
        assert_eq!(p.distinct, 0);
        assert_eq!(p.compulsory_fraction, 0.0);
    }
}
