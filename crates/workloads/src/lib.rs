//! Synthetic GPU workload models for the HPE reproduction.
//!
//! The paper characterizes 23 applications from Rodinia, Parboil, and
//! Polybench by their *page-level access patterns* (Fig. 2 defines six
//! pattern types; Table II assigns each application a type). Running the
//! original CUDA binaries requires GPGPU-Sim, so this crate instead
//! synthesizes, per application, a global page-reference sequence that
//! realizes the documented pattern — including the per-application quirks
//! the paper calls out (NW's even/odd page phases, MVT's stride-4 touches,
//! BFS's embedded thrashing, KMN/SAD's irregular per-page reuse, GEM's
//! column-operand resweeps, ...).
//!
//! The global sequence is then distributed over per-warp instruction
//! streams in small tiles, mimicking how GPU thread blocks partition a
//! kernel's iteration space ([`Trace::build`]).
//!
//! # Examples
//!
//! ```
//! use uvm_workloads::{registry, Trace};
//!
//! let app = registry::by_abbr("HSD").expect("hotspot3D is registered");
//! let trace = Trace::build(app, 8, 4);
//! assert_eq!(trace.streams().len(), 8);
//! assert!(trace.total_ops() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
mod app;
mod builder;
pub mod patterns;
pub mod registry;
mod trace;

pub use app::{App, PatternType, Suite};
pub use builder::{BuildError, CustomWorkload, WorkloadBuilder};
pub use trace::{Op, Trace};
