//! Generators for the six access-pattern types of Fig. 2.
//!
//! Every generator produces a *global* page-reference sequence over a local
//! page index space `0..footprint`; [`crate::Trace::build`] later distributes
//! it over per-warp streams. In Fig. 2's notation, a sequence element `a_i`
//! is a virtual page and `a_i^{N_i}` means `a_i` is referenced `N_i` times.
//!
//! Page-set spatial locality (the paper's second observation in Section I)
//! is realized by generating reuse at *page set* granularity where an
//! application is "regular", and at page granularity where it is not.

use uvm_util::Rng;

/// Type I — streaming: `(a_1, a_2, a_3, ..., a_k)`, every page referenced
/// the same small number of times in a single pass.
///
/// # Examples
///
/// ```
/// let s = uvm_workloads::patterns::streaming(4, 2);
/// assert_eq!(s, vec![0, 0, 1, 1, 2, 2, 3, 3]);
/// ```
pub fn streaming(pages: u64, refs_per_page: u32) -> Vec<u64> {
    let mut out = Vec::with_capacity((pages * refs_per_page as u64) as usize);
    for p in 0..pages {
        for _ in 0..refs_per_page {
            out.push(p);
        }
    }
    out
}

/// Type II — thrashing: `(a_1, ..., a_k)^N` with `k` larger than memory,
/// i.e. the whole footprint is swept `sweeps` times.
///
/// # Examples
///
/// ```
/// let s = uvm_workloads::patterns::thrashing(3, 2);
/// assert_eq!(s, vec![0, 1, 2, 0, 1, 2]);
/// ```
pub fn thrashing(pages: u64, sweeps: u32) -> Vec<u64> {
    let mut out = Vec::with_capacity((pages * sweeps as u64) as usize);
    for _ in 0..sweeps {
        out.extend(0..pages);
    }
    out
}

/// Type III — part repetitive:
/// `(a_1^{N_1}·ε_1, ..., a_k^{N_k}·ε_k)` — a streaming pass in which a
/// fraction `eps` of *page sets* is re-referenced (entirely, preserving
/// spatial locality) `extra_refs` additional times shortly after first
/// touch.
///
/// `set_size` is the page-set granularity of the reuse. The generated
/// counters stay divisible by the page set size, which is what makes these
/// applications classify as **regular** (Section IV-D).
pub fn part_repetitive(
    pages: u64,
    set_size: u64,
    eps: f64,
    extra_refs: u32,
    rng: &mut Rng,
) -> Vec<u64> {
    assert!(set_size > 0, "set_size must be nonzero");
    let mut out = Vec::new();
    let mut set_start = 0u64;
    while set_start < pages {
        let set_end = (set_start + set_size).min(pages);
        let passes = if rng.gen_bool(eps) { 1 + extra_refs } else { 1 };
        for _ in 0..passes {
            out.extend(set_start..set_end);
        }
        set_start = set_end;
    }
    out
}

/// Page-granular irregular reuse: the footprint is processed in contiguous
/// windows of `window` pages; within each window, each *page* independently
/// receives `1 + extra` references (`extra` uniform in `0..=max_extra`),
/// spread across repeated passes over the window so the reuse escapes the
/// TLBs and is visible at the page-walk level.
///
/// Because reuse counts vary per page rather than per page set, the
/// resulting page-set counters are mostly *indivisible* by the page set
/// size — the signature of the paper's **irregular#2** category (KMN, SAD).
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn page_irregular(pages: u64, window: u64, max_extra: u32, rng: &mut Rng) -> Vec<u64> {
    assert!(window > 0, "window must be nonzero");
    let mut out = Vec::new();
    let mut start = 0u64;
    while start < pages {
        let end = (start + window).min(pages);
        let refs: Vec<u32> = (start..end)
            .map(|_| 1 + rng.gen_range(0..=max_extra))
            .collect();
        for pass in 0..=max_extra {
            for (i, p) in (start..end).enumerate() {
                if pass < refs[i] {
                    out.push(p);
                }
            }
        }
        start = end;
    }
    out
}

/// Even/odd phase with per-page jitter (NW): pages of `parity` within
/// `0..pages` are swept repeatedly; page `p` participates in
/// `min_refs..=max_refs` sweeps (drawn per page). The jitter makes NW's
/// page-set counters indivisible by the set size, matching its irregular
/// classification, while pages that accumulate the full saturating count
/// still trigger HPE's page-set division.
///
/// # Panics
///
/// Panics if `parity >= 2` or `min_refs > max_refs` or `min_refs == 0`.
pub fn parity_phase_jittered(
    pages: u64,
    parity: u64,
    min_refs: u32,
    max_refs: u32,
    rng: &mut Rng,
) -> Vec<u64> {
    assert!(parity < 2, "parity must be 0 or 1");
    assert!(min_refs >= 1 && min_refs <= max_refs, "bad refs range");
    let members: Vec<u64> = (parity..pages).step_by(2).collect();
    let refs: Vec<u32> = members
        .iter()
        .map(|_| rng.gen_range(min_refs..=max_refs))
        .collect();
    let mut out = Vec::new();
    for sweep in 0..max_refs {
        for (i, &p) in members.iter().enumerate() {
            if sweep < refs[i] {
                out.push(p);
            }
        }
    }
    out
}

/// Type IV/V building block — most repetitive:
/// `(a_1^{N_1}, ..., a_k^{N_k})`, each page referenced `refs_per_page`
/// times, with the repetitions of a page *spread across the pass* (rather
/// than back-to-back) so that repeated references escape the TLBs and are
/// visible to the eviction policy, as in the paper's page-walk traces.
///
/// The pass is organized as `refs_per_page` interleaved sweeps of the
/// region, offset by `phase_stride` pages each time.
pub fn most_repetitive(pages: u64, refs_per_page: u32, phase_stride: u64) -> Vec<u64> {
    let mut out = Vec::with_capacity((pages * refs_per_page as u64) as usize);
    for r in 0..refs_per_page as u64 {
        let shift = (r * phase_stride) % pages.max(1);
        for p in 0..pages {
            out.push((p + shift) % pages);
        }
    }
    out
}

/// Type V — repetitive-thrashing: a most-repetitive pass over the whole
/// footprint, repeated `outer` times (`(a_1^{N_1},...,a_k^{N_k})^N` with
/// `k` > memory).
pub fn repetitive_thrashing(
    pages: u64,
    refs_per_page: u32,
    phase_stride: u64,
    outer: u32,
) -> Vec<u64> {
    let one = most_repetitive(pages, refs_per_page, phase_stride);
    let mut out = Vec::with_capacity(one.len() * outer as usize);
    for _ in 0..outer {
        out.extend_from_slice(&one);
    }
    out
}

/// Type VI — region moving: the footprint is divided into `regions`
/// contiguous regions; each region is swept `rounds_per_region` times
/// before the application moves to the next region and never returns.
///
/// # Panics
///
/// Panics if `regions` is zero.
///
/// # Examples
///
/// ```
/// let s = uvm_workloads::patterns::region_moving(4, 2, 2);
/// assert_eq!(s, vec![0, 1, 0, 1, 2, 3, 2, 3]);
/// ```
pub fn region_moving(pages: u64, regions: u64, rounds_per_region: u32) -> Vec<u64> {
    assert!(regions > 0, "regions must be nonzero");
    let per = pages / regions;
    let mut out = Vec::new();
    for r in 0..regions {
        let start = r * per;
        let end = if r == regions - 1 { pages } else { start + per };
        for _ in 0..rounds_per_region {
            out.extend(start..end);
        }
    }
    out
}

/// Strided touches: references pages `offset, offset+stride, ...` below
/// `pages`, each `refs` times back-to-back. Models MVT's stride-4 page
/// touches (Section V-B), which waste HIR entry space.
pub fn strided(pages: u64, stride: u64, offset: u64, refs: u32) -> Vec<u64> {
    assert!(stride > 0, "stride must be nonzero");
    let mut out = Vec::new();
    let mut p = offset;
    while p < pages {
        for _ in 0..refs {
            out.push(p);
        }
        p += stride;
    }
    out
}

/// Even/odd phase pattern (NW, Section IV-C): pages of `parity` (0 = even,
/// 1 = odd) inside `0..pages` are swept `rounds` times.
pub fn parity_phase(pages: u64, parity: u64, rounds: u32) -> Vec<u64> {
    assert!(parity < 2, "parity must be 0 or 1");
    let mut out = Vec::new();
    for _ in 0..rounds {
        let mut p = parity;
        while p < pages {
            out.push(p);
            p += 2;
        }
    }
    out
}

/// Hot-region interjections: returns `base` with references into a hot
/// region `hot_start..hot_start+hot_pages` inserted every `period` base
/// references (each insertion touches one hot page, round-robin, possibly
/// repeatedly). Models histogram bins (HIS) and sparse vectors (SPV).
pub fn with_hot_region(
    base: &[u64],
    hot_start: u64,
    hot_pages: u64,
    period: usize,
    touches_per_insert: u32,
    rng: &mut Rng,
) -> Vec<u64> {
    assert!(period > 0, "period must be nonzero");
    assert!(hot_pages > 0, "hot_pages must be nonzero");
    let mut out = Vec::with_capacity(base.len() + base.len() / period + 1);
    for (i, &p) in base.iter().enumerate() {
        out.push(p);
        if (i + 1) % period == 0 {
            for _ in 0..touches_per_insert {
                out.push(hot_start + rng.gen_range(0..hot_pages));
            }
        }
    }
    out
}

/// Concatenates phases into one sequence, offsetting each phase's page
/// indices by its region base so phases can address disjoint regions.
///
/// # Examples
///
/// ```
/// use uvm_workloads::patterns::{concat_regions, streaming};
///
/// let a = streaming(2, 1);        // pages 0,1
/// let b = streaming(2, 1);        // pages 0,1 -> offset to 10,11
/// let s = concat_regions(vec![(0, a), (10, b)]);
/// assert_eq!(s, vec![0, 1, 10, 11]);
/// ```
pub fn concat_regions(phases: Vec<(u64, Vec<u64>)>) -> Vec<u64> {
    let mut out = Vec::with_capacity(phases.iter().map(|(_, v)| v.len()).sum());
    for (base, seq) in phases {
        out.extend(seq.into_iter().map(|p| base + p));
    }
    out
}

/// Interleaves two sequences by dealing `chunk_a` elements from `a` then
/// `chunk_b` from `b`, repeating until both are exhausted. Used to overlay
/// concurrently-active operand regions (e.g. GEMM's A stream against B
/// resweeps).
pub fn interleave(a: &[u64], chunk_a: usize, b: &[u64], chunk_b: usize) -> Vec<u64> {
    assert!(chunk_a > 0 && chunk_b > 0, "chunks must be nonzero");
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    while ia < a.len() || ib < b.len() {
        let ea = (ia + chunk_a).min(a.len());
        out.extend_from_slice(&a[ia..ea]);
        ia = ea;
        let eb = (ib + chunk_b).min(b.len());
        out.extend_from_slice(&b[ib..eb]);
        ib = eb;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from_u64(42)
    }

    #[test]
    fn streaming_touches_each_page_refs_times() {
        let s = streaming(10, 3);
        assert_eq!(s.len(), 30);
        for p in 0..10 {
            assert_eq!(s.iter().filter(|&&x| x == p).count(), 3);
        }
        // Single pass: first occurrence order is ascending.
        let firsts: Vec<u64> = {
            let mut seen = std::collections::HashSet::new();
            s.iter().copied().filter(|p| seen.insert(*p)).collect()
        };
        assert_eq!(firsts, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn thrashing_is_repeated_sweeps() {
        let s = thrashing(5, 3);
        assert_eq!(s.len(), 15);
        assert_eq!(&s[0..5], &[0, 1, 2, 3, 4]);
        assert_eq!(&s[5..10], &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn part_repetitive_reuses_whole_sets() {
        let s = part_repetitive(64, 16, 1.0, 1, &mut rng());
        // eps=1.0: every set repeated once -> every page exactly twice.
        assert_eq!(s.len(), 128);
        for p in 0..64 {
            assert_eq!(s.iter().filter(|&&x| x == p).count(), 2);
        }
        // eps=0.0: pure streaming.
        let s0 = part_repetitive(64, 16, 0.0, 3, &mut rng());
        assert_eq!(s0, streaming(64, 1));
    }

    #[test]
    fn part_repetitive_counters_divisible_by_set_size() {
        let s = part_repetitive(256, 16, 0.4, 2, &mut rng());
        for set in 0..(256 / 16) {
            let count = s.iter().filter(|&&p| p / 16 == set).count();
            assert_eq!(count % 16, 0, "set {set} count {count} not divisible");
        }
    }

    #[test]
    fn page_irregular_produces_indivisible_set_counts() {
        let s = page_irregular(512, 256, 3, &mut rng());
        let mut irregular_sets = 0;
        for set in 0..(512 / 16) {
            let count = s.iter().filter(|&&p| p / 16 == set).count();
            if count % 16 != 0 {
                irregular_sets += 1;
            }
        }
        // With per-page randomness nearly every set count is indivisible.
        assert!(irregular_sets > 24, "only {irregular_sets} irregular sets");
    }

    #[test]
    fn page_irregular_spreads_reuse_across_window_passes() {
        let s = page_irregular(64, 32, 2, &mut rng());
        // Repetitions of any page are at least a window apart (minus the
        // pages skipped in later passes), never adjacent.
        let pos: Vec<usize> = s
            .iter()
            .enumerate()
            .filter(|(_, &x)| x == 0)
            .map(|(i, _)| i)
            .collect();
        assert!(pos.windows(2).all(|w| w[1] - w[0] > 8));
        // Every page appears between 1 and 3 times.
        for p in 0..64u64 {
            let n = s.iter().filter(|&&x| x == p).count();
            assert!((1..=3).contains(&n), "page {p} appears {n} times");
        }
    }

    #[test]
    fn parity_phase_jittered_respects_parity_and_bounds() {
        let s = parity_phase_jittered(64, 0, 6, 8, &mut rng());
        assert!(s.iter().all(|p| p % 2 == 0));
        for p in (0..64u64).step_by(2) {
            let n = s.iter().filter(|&&x| x == p).count();
            assert!((6..=8).contains(&n), "page {p} appears {n} times");
        }
        // Repetitions are spread: page 0's touches are a full sweep apart.
        let pos: Vec<usize> = s
            .iter()
            .enumerate()
            .filter(|(_, &x)| x == 0)
            .map(|(i, _)| i)
            .collect();
        assert!(pos.windows(2).all(|w| w[1] - w[0] > 16));
    }

    #[test]
    fn most_repetitive_spreads_reuse() {
        let s = most_repetitive(8, 3, 2);
        assert_eq!(s.len(), 24);
        for p in 0..8 {
            assert_eq!(s.iter().filter(|&&x| x == p).count(), 3);
        }
        // Repetitions of page 0 are not adjacent.
        let pos: Vec<usize> = s
            .iter()
            .enumerate()
            .filter(|(_, &x)| x == 0)
            .map(|(i, _)| i)
            .collect();
        assert!(pos.windows(2).all(|w| w[1] - w[0] > 1));
    }

    #[test]
    fn repetitive_thrashing_repeats_outer() {
        let one = most_repetitive(8, 2, 1);
        let s = repetitive_thrashing(8, 2, 1, 3);
        assert_eq!(s.len(), one.len() * 3);
        assert_eq!(&s[0..one.len()], one.as_slice());
        assert_eq!(&s[one.len()..2 * one.len()], one.as_slice());
    }

    #[test]
    fn region_moving_never_returns() {
        let s = region_moving(100, 4, 3);
        // Once a region is left, no reference to it appears again.
        let region_of = |p: u64| (p / 25).min(3);
        let mut max_region = 0;
        let mut left = [false; 4];
        for &p in &s {
            let r = region_of(p) as usize;
            assert!(!left[r], "returned to region {r}");
            if r > max_region {
                for l in left.iter_mut().take(r) {
                    *l = true;
                }
                max_region = r;
            }
        }
        assert_eq!(max_region, 3);
    }

    #[test]
    fn region_moving_last_region_absorbs_remainder() {
        let s = region_moving(10, 3, 1);
        // Regions: 0..3, 3..6, 6..10.
        assert_eq!(s, vec![0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn strided_touches_only_stride_pages() {
        let s = strided(64, 4, 1, 2);
        assert!(s.iter().all(|&p| p % 4 == 1));
        assert_eq!(s.iter().filter(|&&p| p == 1).count(), 2);
        assert_eq!(s.len(), 2 * 16);
    }

    #[test]
    fn parity_phase_respects_parity() {
        let even = parity_phase(10, 0, 2);
        assert!(even.iter().all(|p| p % 2 == 0));
        assert_eq!(even.len(), 10);
        let odd = parity_phase(10, 1, 1);
        assert!(odd.iter().all(|p| p % 2 == 1));
        assert_eq!(odd.len(), 5);
    }

    #[test]
    fn with_hot_region_inserts_hot_touches() {
        let base = streaming(100, 1);
        let s = with_hot_region(&base, 1000, 8, 10, 2, &mut rng());
        let hot: Vec<u64> = s.iter().copied().filter(|&p| p >= 1000).collect();
        assert_eq!(hot.len(), 20);
        assert!(hot.iter().all(|&p| p < 1008));
        let cold: Vec<u64> = s.iter().copied().filter(|&p| p < 1000).collect();
        assert_eq!(cold, base);
    }

    #[test]
    fn concat_regions_offsets() {
        let s = concat_regions(vec![(0, vec![0, 1]), (100, vec![0, 5])]);
        assert_eq!(s, vec![0, 1, 100, 105]);
    }

    #[test]
    fn interleave_preserves_both_orders() {
        let a = vec![0, 1, 2, 3];
        let b = vec![10, 11];
        let s = interleave(&a, 2, &b, 1);
        assert_eq!(s, vec![0, 1, 10, 2, 3, 11]);
        // Exhausted b: remaining a continues.
        let s2 = interleave(&a, 1, &b, 1);
        assert_eq!(s2, vec![0, 10, 1, 11, 2, 3]);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = part_repetitive(128, 16, 0.5, 2, &mut rng());
        let b = part_repetitive(128, 16, 0.5, 2, &mut rng());
        assert_eq!(a, b);
        let c = page_irregular(128, 64, 3, &mut rng());
        let d = page_irregular(128, 64, 3, &mut rng());
        assert_eq!(c, d);
        let e = parity_phase_jittered(128, 1, 2, 4, &mut rng());
        let f = parity_phase_jittered(128, 1, 2, 4, &mut rng());
        assert_eq!(e, f);
    }
}
