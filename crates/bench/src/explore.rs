//! Execution side of the fault-space exploration engine (`hpe-chaos
//! explore`).
//!
//! `uvm_sim::ExploreSpec` owns the pure bookkeeping — case enumeration,
//! shrinking control flow, report types. This module owns everything
//! that needs the policy zoo and a thread pool:
//!
//! * building the simulation for a case (any [`PolicyKind`], boxed
//!   behind [`Traced`] except HPE, which is run concretely so its
//!   degraded-mode state stays inspectable),
//! * evaluating the spec's invariant set on a case — one sanitized run
//!   shared by `completes`/`sanitizer`/`conservation`/`recovery`, plus
//!   one extra run each for `replay` and `checkpoint`,
//! * fanning the case list over a scoped worker pool (the campaign
//!   engine's injector/collector pattern: an atomic cursor over the
//!   enumeration order, results merged by case id, so the report is
//!   **byte-identical for any worker count**),
//! * shrinking failing cases serially, in enumeration order, with
//!   [`uvm_sim::shrink_plan`] — the serial phase is what keeps the
//!   counterexample bytes independent of worker count,
//! * packaging counterexamples as replayable [`ReproCase`] documents and
//!   re-executing them (`hpe-chaos replay`).

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use hpe_core::{Hpe, HpeConfig};
use uvm_policies::{
    ClockPro, ClockProConfig, EvictionPolicy, Lfu, Lru, RandomPolicy, Rrip, Traced,
};
use uvm_sim::{
    ideal_for, shrink_plan, trace_for, Counterexample, ExploreReport, ExploreSpec, FaultPlan,
    ReproCase, RetryPolicy, Sanitizer, SimOutcome, Simulation, TenantMix, TenantReport,
    ALL_INVARIANTS,
};
use uvm_types::{Oversubscription, SimConfig, SimError, SimStats};
use uvm_util::json;
use uvm_workloads::{registry, App, Trace};

use crate::runner::{rrip_config_for, PolicyKind};
use crate::tenant::{check_containment, containment_mix, run_mix_serial, MixOptions};

/// Clean-fault headroom after which a still-degraded HPE run counts as a
/// `recovery` violation: the policy re-checks its exit conditions on
/// every fault while the HIR channel is up, so a generous multiple of
/// the circuit breaker's re-arm horizon is more than enough legitimate
/// lag.
pub const RECOVERY_STREAK_FAULTS: u64 = 256;

/// Why an exploration could not run (as opposed to running and finding
/// counterexamples, which is a successful exploration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The spec failed `ExploreSpec::validate`.
    InvalidSpec(String),
    /// The spec's app abbreviation is not in the workload registry.
    UnknownApp(String),
    /// The spec's policy label is not in the policy zoo.
    UnknownPolicy(String),
    /// The spec enumerated no cases (empty grid, no fixtures, no batch).
    EmptyCaseList,
    /// The progress stream could not be written.
    Io(String),
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::InvalidSpec(m) => write!(f, "invalid explore spec: {m}"),
            ExploreError::UnknownApp(a) => write!(f, "unknown app '{a}'"),
            ExploreError::UnknownPolicy(p) => write!(f, "unknown policy '{p}'"),
            ExploreError::EmptyCaseList => write!(f, "spec enumerates no cases"),
            ExploreError::Io(m) => write!(f, "explore i/o error: {m}"),
        }
    }
}

impl std::error::Error for ExploreError {}

/// What one probe run observed (enough state for every invariant).
struct ProbeResult {
    stats: SimStats,
    hir_down: bool,
    clean_streak: u64,
    /// `Some` only for HPE (the one policy with a degraded mode).
    degraded: Option<bool>,
}

/// One case's invariant evaluation.
#[derive(Debug, Clone)]
struct Verdict {
    /// Simulation runs this evaluation cost (1–3).
    runs: u64,
    /// Selected invariants actually evaluated.
    checks: u64,
    /// First violated invariant + its error text, in check order.
    violation: Option<(String, String)>,
}

/// Everything shared by every run of one exploration. Built once,
/// borrowed by all workers (all fields are `Sync` plain data).
struct Ctx<'a> {
    cfg: &'a SimConfig,
    app: &'static App,
    trace: Trace,
    capacity: u64,
    kind: PolicyKind,
    retry: Option<RetryPolicy>,
    /// The spec's invariant selection, in [`ALL_INVARIANTS`] order.
    invariants: Vec<String>,
    sanitize_cadence: u64,
    checkpoint_at: u64,
    /// The `containment` invariant's mix and its fault-free baseline,
    /// computed eagerly at context build (never lazily inside a worker)
    /// so the merged report stays byte-identical for any worker count.
    tenant_mix: Option<TenantMix>,
    tenant_baseline: Option<TenantReport>,
    tenant_target: u64,
}

/// Runs a built simulation to completion — straight through, or
/// interrupted at `interrupt` with a checkpoint taken and a *fresh*
/// simulation resumed from it (the `checkpoint` invariant's subject).
fn drive<P: EvictionPolicy>(
    build: &dyn Fn() -> Result<Simulation<P>, SimError>,
    interrupt: Option<u64>,
) -> Result<SimOutcome<P>, SimError> {
    match interrupt {
        None => build()?.run(),
        Some(at) => {
            let mut first = build()?;
            if first.run_until(at)? {
                return first.finish();
            }
            let ckpt = first.checkpoint();
            let mut resumed = build()?;
            resumed.resume(&ckpt)?;
            resumed.finish()
        }
    }
}

impl Ctx<'_> {
    fn want(&self, invariant: &str) -> bool {
        self.invariants.iter().any(|i| i == invariant)
    }

    fn boxed_policy(&self) -> Box<dyn EvictionPolicy> {
        match self.kind {
            PolicyKind::Lru => Box::new(Lru::new()),
            PolicyKind::Random => Box::new(RandomPolicy::seeded(self.app.seed())),
            PolicyKind::Lfu => Box::new(Lfu::new()),
            PolicyKind::Rrip => Box::new(Rrip::new(rrip_config_for(self.app))),
            PolicyKind::ClockPro => Box::new(ClockPro::new(ClockProConfig::default())),
            // Hpe is handled concretely in `probe`; Ideal is the only
            // other policy needing per-run construction inputs.
            PolicyKind::Ideal | PolicyKind::Hpe => Box::new(ideal_for(&self.trace)),
        }
    }

    fn configure<P: EvictionPolicy>(
        &self,
        sim: &mut Simulation<P>,
        plan: &FaultPlan,
        sanitize: Option<u64>,
    ) -> Result<(), SimError> {
        sim.set_fault_plan(plan.clone())?;
        if let Some(rp) = self.retry {
            sim.set_retry_policy(rp)?;
        }
        if let Some(cadence) = sanitize {
            sim.set_sanitizer(Sanitizer::new(cadence));
        }
        Ok(())
    }

    /// One simulation run of `plan` under this context.
    fn probe(
        &self,
        plan: &FaultPlan,
        sanitize: Option<u64>,
        interrupt: Option<u64>,
    ) -> Result<ProbeResult, SimError> {
        if self.kind == PolicyKind::Hpe {
            let build = || -> Result<Simulation<Hpe>, SimError> {
                let hpe = Hpe::new(HpeConfig::from_sim(self.cfg))?;
                let mut sim = Simulation::new(self.cfg.clone(), &self.trace, hpe, self.capacity)?;
                self.configure(&mut sim, plan, sanitize)?;
                Ok(sim)
            };
            let out = drive(&build, interrupt)?;
            Ok(ProbeResult {
                stats: out.stats,
                hir_down: out.hir_down,
                clean_streak: out.hir_clean_streak_faults,
                degraded: Some(out.policy.is_degraded()),
            })
        } else {
            let build = || -> Result<Simulation<Traced<Box<dyn EvictionPolicy>>>, SimError> {
                let policy = Traced::new(self.boxed_policy());
                let mut sim =
                    Simulation::new(self.cfg.clone(), &self.trace, policy, self.capacity)?;
                self.configure(&mut sim, plan, sanitize)?;
                Ok(sim)
            };
            let out = drive(&build, interrupt)?;
            Ok(ProbeResult {
                stats: out.stats,
                hir_down: out.hir_down,
                clean_streak: out.hir_clean_streak_faults,
                degraded: None,
            })
        }
    }

    fn check_conservation(&self, base: &ProbeResult) -> Option<String> {
        let s = &base.stats;
        if s.mem_accesses != self.trace.total_ops() {
            return Some(format!(
                "executed {} memory accesses but the trace has {} ops",
                s.mem_accesses,
                self.trace.total_ops()
            ));
        }
        let inflow = s.driver.faults_serviced + s.driver.prefetched_pages;
        if s.driver.evictions > inflow {
            return Some(format!(
                "{} evictions exceed {} migrated pages",
                s.driver.evictions, inflow
            ));
        }
        if inflow - s.driver.evictions > self.capacity {
            return Some(format!(
                "{} pages resident at end exceed capacity {}",
                inflow - s.driver.evictions,
                self.capacity
            ));
        }
        if s.walk_hits > s.walks {
            return Some(format!(
                "{} walk hits exceed {} walks",
                s.walk_hits, s.walks
            ));
        }
        None
    }

    fn check_recovery(&self, base: &ProbeResult) -> Option<String> {
        if base.degraded == Some(true)
            && !base.hir_down
            && base.clean_streak > RECOVERY_STREAK_FAULTS
        {
            return Some(format!(
                "HPE still degraded after {} clean faults with the HIR channel up",
                base.clean_streak
            ));
        }
        None
    }

    /// Runs the containment mix with `plan` scoped to the target tenant
    /// and byte-compares every other tenant's row against the fault-free
    /// baseline.
    fn check_containment_invariant(
        &self,
        plan: &FaultPlan,
        mix: &TenantMix,
        baseline: &TenantReport,
    ) -> Option<String> {
        let opts = MixOptions {
            policy: self.kind,
            plan: Some(plan.clone()),
            plan_name: "explore-case".to_string(),
            fault_tenant: Some(self.tenant_target),
            ..MixOptions::default()
        };
        match run_mix_serial(self.cfg, mix, &opts) {
            Err(e) => Some(format!("containment mix run failed: {e}")),
            Ok(faulted) => check_containment(baseline, &faulted).err(),
        }
    }

    fn check_replay(
        &self,
        plan: &FaultPlan,
        sanitize: Option<u64>,
        base: &ProbeResult,
    ) -> Option<String> {
        match self.probe(plan, sanitize, None) {
            Err(e) => Some(format!("second identical run failed: {e}")),
            Ok(again) if again.stats != base.stats => {
                Some("two identical runs produced different statistics".to_string())
            }
            Ok(_) => None,
        }
    }

    fn check_checkpoint(
        &self,
        plan: &FaultPlan,
        sanitize: Option<u64>,
        base: &ProbeResult,
    ) -> Option<String> {
        match self.probe(plan, sanitize, Some(self.checkpoint_at)) {
            Err(e) => Some(format!(
                "interrupted-and-resumed run failed at cycle {}: {e}",
                self.checkpoint_at
            )),
            Ok(resumed) if resumed.stats != base.stats => Some(format!(
                "run resumed from a cycle-{} checkpoint diverged from the straight run",
                self.checkpoint_at
            )),
            Ok(_) => None,
        }
    }

    /// Evaluates the selected invariants on `plan`, stopping at the
    /// first violation (in [`ALL_INVARIANTS`] order).
    ///
    /// A run that cannot finish is always surfaced — as `sanitizer` for
    /// a mid-run invariant report, else as `completes` — even when those
    /// invariants are deselected, because nothing else is evaluable
    /// without a finished run.
    fn verdict(&self, plan: &FaultPlan) -> Verdict {
        let sanitize = self.want("sanitizer").then_some(self.sanitize_cadence);
        let mut runs = 1u64;
        let mut checks = 0u64;
        let (base, broke) = match self.probe(plan, sanitize, None) {
            Ok(r) => (Some(r), None),
            Err(e) => {
                let invariant = if matches!(e, SimError::InvariantViolated { .. }) {
                    "sanitizer"
                } else {
                    "completes"
                };
                (None, Some((invariant.to_string(), e.to_string())))
            }
        };
        for inv in &self.invariants {
            let violation: Option<String> = match (inv.as_str(), &base) {
                ("completes" | "sanitizer", _) => {
                    checks += 1;
                    match &broke {
                        Some((i, e)) if i == inv => Some(e.clone()),
                        _ => None,
                    }
                }
                // The base run did not finish: later invariants are not
                // evaluable (the break is surfaced below regardless).
                (_, None) => continue,
                ("conservation", Some(b)) => {
                    checks += 1;
                    self.check_conservation(b)
                }
                ("replay", Some(b)) => {
                    checks += 1;
                    runs += 1;
                    self.check_replay(plan, sanitize, b)
                }
                ("checkpoint", Some(b)) => {
                    if self.checkpoint_at == 0 {
                        continue;
                    }
                    checks += 1;
                    runs += 1;
                    self.check_checkpoint(plan, sanitize, b)
                }
                ("recovery", Some(b)) => {
                    if self.kind != PolicyKind::Hpe {
                        continue;
                    }
                    checks += 1;
                    self.check_recovery(b)
                }
                ("containment", Some(_)) => {
                    let (Some(mix), Some(baseline)) = (&self.tenant_mix, &self.tenant_baseline)
                    else {
                        // Spec declared no tenant mix: skipped, like
                        // `checkpoint` at cycle 0.
                        continue;
                    };
                    checks += 1;
                    runs += mix.tenants.len() as u64;
                    self.check_containment_invariant(plan, mix, baseline)
                }
                _ => None,
            };
            if let Some(error) = violation {
                return Verdict {
                    runs,
                    checks,
                    violation: Some((inv.clone(), error)),
                };
            }
        }
        if let Some(broke) = broke {
            return Verdict {
                runs,
                checks,
                violation: Some(broke),
            };
        }
        Verdict {
            runs,
            checks,
            violation: None,
        }
    }
}

/// The run-context inputs shared by a spec and a repro case.
struct CtxParams<'s> {
    app: &'s str,
    policy: &'s str,
    rate: u64,
    retry: Option<RetryPolicy>,
    invariants: &'s [String],
    sanitize_cadence: u64,
    checkpoint_at: u64,
    tenants: u64,
    tenant_target: u64,
    tenant_quota_pct: u64,
}

/// Builds the shared run context, resolving the app, policy and rate.
fn context<'a>(cfg: &'a SimConfig, p: CtxParams<'_>) -> Result<Ctx<'a>, ExploreError> {
    let CtxParams {
        app,
        policy,
        rate,
        retry,
        invariants,
        sanitize_cadence,
        checkpoint_at,
        tenants,
        tenant_target,
        tenant_quota_pct,
    } = p;
    let app = registry::by_abbr(app).ok_or_else(|| ExploreError::UnknownApp(app.to_string()))?;
    let kind =
        PolicyKind::parse(policy).ok_or_else(|| ExploreError::UnknownPolicy(policy.to_string()))?;
    let rate = match rate {
        50 => Oversubscription::Rate50,
        75 => Oversubscription::Rate75,
        other => {
            return Err(ExploreError::InvalidSpec(format!(
                "rate must be 50 or 75, got {other}"
            )))
        }
    };
    // Normalize the invariant selection into ALL_INVARIANTS order so
    // evaluation (and `checks` accounting) is canonical.
    let ordered: Vec<String> = ALL_INVARIANTS
        .iter()
        .filter(|known| invariants.iter().any(|i| i == *known))
        .map(|s| s.to_string())
        .collect();
    if ordered.is_empty() {
        return Err(ExploreError::InvalidSpec(format!(
            "no known invariant selected (known: {})",
            ALL_INVARIANTS.join(", ")
        )));
    }
    // The containment invariant needs a tenant mix and its fault-free
    // baseline. Both are built eagerly here — once, before the worker
    // pool starts — so verdicts stay pure per-case functions and the
    // merged report is byte-identical for any worker count.
    let wants_containment = ordered.iter().any(|i| i == "containment");
    let (tenant_mix, tenant_baseline) = if wants_containment && tenants >= 2 {
        let mix = containment_mix(tenants, tenant_quota_pct);
        mix.validate()
            .map_err(|e| ExploreError::InvalidSpec(format!("containment mix invalid: {e}")))?;
        if !mix.tenants.iter().any(|t| t.id == tenant_target) {
            return Err(ExploreError::InvalidSpec(format!(
                "tenant_target {tenant_target} is not part of the containment mix \
                 (tenants 0..{tenants})"
            )));
        }
        let opts = MixOptions {
            policy: kind,
            ..MixOptions::default()
        };
        let baseline = run_mix_serial(cfg, &mix, &opts)
            .map_err(|e| ExploreError::InvalidSpec(format!("containment baseline failed: {e}")))?;
        (Some(mix), Some(baseline))
    } else {
        (None, None)
    };
    Ok(Ctx {
        cfg,
        app,
        trace: trace_for(cfg, app),
        capacity: rate.capacity_pages(app.footprint_pages()),
        kind,
        retry,
        invariants: ordered,
        sanitize_cadence,
        checkpoint_at,
        tenant_mix,
        tenant_baseline,
        tenant_target,
    })
}

/// Runs the exploration: enumerates the spec's cases, fans them over
/// `workers` scoped threads, shrinks every failing case to a minimal
/// counterexample, and returns the merged coverage report.
///
/// The report is **byte-identical for any worker count**: verdicts are
/// pure per-case functions merged by enumeration id, and shrinking runs
/// serially in id order after the parallel phase.
///
/// `progress`, when given, receives one compact JSON line per completed
/// case in arrival order (observability only — explicitly outside the
/// determinism contract).
///
/// # Errors
///
/// Returns [`ExploreError`] if the spec is invalid or names an unknown
/// app/policy, enumerates no cases, or the progress stream cannot be
/// written. Invariant violations are *results*, not errors — they come
/// back as counterexamples on the report.
pub fn run_explore(
    cfg: &SimConfig,
    spec: &ExploreSpec,
    workers: usize,
    mut progress: Option<&mut dyn io::Write>,
) -> Result<ExploreReport, ExploreError> {
    spec.validate()
        .map_err(|e| ExploreError::InvalidSpec(e.to_string()))?;
    let ctx = context(
        cfg,
        CtxParams {
            app: &spec.app,
            policy: &spec.policy,
            rate: spec.rate,
            retry: spec.retry,
            invariants: &spec.invariant_set(),
            sanitize_cadence: spec.sanitize_cadence,
            checkpoint_at: spec.checkpoint_at,
            tenants: spec.tenants,
            tenant_target: spec.tenant_target,
            tenant_quota_pct: spec.tenant_quota_pct,
        },
    )?;
    let (cases, skipped) = spec.cases();
    if cases.is_empty() {
        return Err(ExploreError::EmptyCaseList);
    }

    // Parallel verdict phase: injector cursor over enumeration order,
    // collector merges by case id (the campaign pool pattern).
    let workers = workers.max(1).min(cases.len());
    let cursor = AtomicUsize::new(0);
    let mut verdicts: Vec<Option<Verdict>> = vec![None; cases.len()];
    let mut io_error: Option<ExploreError> = None;
    thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<(usize, Verdict)>();
        for _ in 0..workers {
            let tx = tx.clone();
            let (cursor, ctx, cases) = (&cursor, &ctx, &cases);
            s.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(case) = cases.get(i) else {
                    break;
                };
                let verdict = ctx.verdict(&case.plan);
                if tx.send((i, verdict)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, verdict) in rx.iter() {
            if let Some(w) = progress.as_deref_mut() {
                let line = json!({
                    "id": cases[i].id,
                    "label": cases[i].label.clone(),
                    "ok": verdict.violation.is_none(),
                    "invariant": verdict.violation.as_ref().map(|(inv, _)| inv.clone()),
                })
                .to_string();
                if let Err(e) = writeln!(w, "{line}") {
                    io_error.get_or_insert(ExploreError::Io(e.to_string()));
                }
            }
            verdicts[i] = Some(verdict);
        }
    });
    if let Some(e) = io_error {
        return Err(e);
    }

    let mut runs = 0u64;
    let mut invariant_checks = 0u64;
    let mut shrink_probes = 0u64;
    let mut counterexamples = Vec::new();
    // Serial shrink phase, in enumeration order: the probe sequence (and
    // therefore the shrunk plan bytes) must not depend on worker count.
    for (case, slot) in cases.iter().zip(&verdicts) {
        let Some(verdict) = slot else { continue };
        runs += verdict.runs;
        invariant_checks += verdict.checks;
        let Some((target, first_error)) = verdict.violation.clone() else {
            continue;
        };
        let mut fails = |candidate: &FaultPlan| -> bool {
            let v = ctx.verdict(candidate);
            matches!(&v.violation, Some((inv, _)) if *inv == target)
        };
        let (plan, probes) = shrink_plan(&case.plan, spec.shrink_budget, &mut fails);
        // One confirming run on the shrunk plan pins the exact error the
        // minimal counterexample reproduces.
        let confirm = ctx.verdict(&plan);
        shrink_probes += probes + 1;
        let error = match confirm.violation {
            Some((_, e)) => e,
            None => first_error,
        };
        counterexamples.push(Counterexample {
            case: case.id,
            label: case.label.clone(),
            invariant: target,
            error,
            probes: probes + 1,
            plan,
        });
    }

    let count_of =
        |prefix: &str| cases.iter().filter(|c| c.label.starts_with(prefix)).count() as u64;
    Ok(ExploreReport {
        app: spec.app.clone(),
        policy: ctx.kind.label().to_string(),
        rate: spec.rate,
        cases: cases.len() as u64,
        fixture_cases: count_of("fixture:"),
        window_cases: count_of("window:"),
        batch_cases: count_of("batch:"),
        skipped_invalid: skipped,
        distinct_placements: spec.distinct_placements(),
        invariants: ctx.invariants.clone(),
        runs,
        invariant_checks,
        shrink_probes,
        counterexamples,
    })
}

/// Packages a counterexample as a self-contained replayable repro.
pub fn repro_for(spec: &ExploreSpec, cx: &Counterexample) -> ReproCase {
    ReproCase {
        app: spec.app.clone(),
        policy: spec.policy.clone(),
        rate: spec.rate,
        invariant: cx.invariant.clone(),
        error: cx.error.clone(),
        retry: spec.retry,
        sanitize_cadence: spec.sanitize_cadence,
        checkpoint_at: spec.checkpoint_at,
        tenants: spec.tenants,
        tenant_target: spec.tenant_target,
        tenant_quota_pct: spec.tenant_quota_pct,
        plan: cx.plan.clone(),
    }
}

/// Re-executes a repro deterministically and returns the violation it
/// reproduced — `(invariant, error)` — or `None` if the run came back
/// clean (the recorded bug did not reproduce).
///
/// # Errors
///
/// Returns [`ExploreError`] if the repro names an unknown app, policy or
/// invariant, or carries an invalid plan.
pub fn replay_repro(
    cfg: &SimConfig,
    repro: &ReproCase,
) -> Result<Option<(String, String)>, ExploreError> {
    if !ALL_INVARIANTS.contains(&repro.invariant.as_str()) {
        return Err(ExploreError::InvalidSpec(format!(
            "unknown invariant `{}` (known: {})",
            repro.invariant,
            ALL_INVARIANTS.join(", ")
        )));
    }
    repro
        .plan
        .validate()
        .map_err(|e| ExploreError::InvalidSpec(e.to_string()))?;
    let ctx = context(
        cfg,
        CtxParams {
            app: &repro.app,
            policy: &repro.policy,
            rate: repro.rate,
            retry: repro.retry,
            invariants: std::slice::from_ref(&repro.invariant),
            sanitize_cadence: repro.sanitize_cadence,
            checkpoint_at: repro.checkpoint_at,
            tenants: repro.tenants,
            tenant_target: repro.tenant_target,
            tenant_quota_pct: repro.tenant_quota_pct,
        },
    )?;
    Ok(ctx.verdict(&repro.plan).violation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_config;

    /// A minimal clean spec: one fixture plan, no grid, no batch, the
    /// cheap single-run invariants only.
    fn tiny_clean_spec() -> ExploreSpec {
        ExploreSpec {
            policy: "lru".to_string(),
            grid_limit: 0,
            fixtures: vec![FaultPlan::latency_storm(5)],
            invariants: vec!["completes".to_string(), "conservation".to_string()],
            ..ExploreSpec::default()
        }
    }

    #[test]
    fn clean_fixture_reports_zero_counterexamples() {
        let report = run_explore(&bench_config(), &tiny_clean_spec(), 1, None).unwrap();
        assert_eq!(report.cases, 1);
        assert_eq!(report.fixture_cases, 1);
        assert_eq!(report.window_cases, 0);
        assert_eq!(report.runs, 1, "both invariants share the base run");
        assert_eq!(report.invariant_checks, 2);
        assert!(
            report.counterexamples.is_empty(),
            "{:?}",
            report.counterexamples
        );
        assert_eq!(report.shrink_probes, 0);
        assert_eq!(report.policy, "LRU", "label normalized");
        assert_eq!(
            report.invariants,
            vec!["completes".to_string(), "conservation".to_string()]
        );
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let cfg = bench_config();
        let mut spec = tiny_clean_spec();
        spec.app = "XXX".to_string();
        assert_eq!(
            run_explore(&cfg, &spec, 1, None).unwrap_err(),
            ExploreError::UnknownApp("XXX".to_string())
        );
        let mut spec = tiny_clean_spec();
        spec.policy = "belady2".to_string();
        assert_eq!(
            run_explore(&cfg, &spec, 1, None).unwrap_err(),
            ExploreError::UnknownPolicy("belady2".to_string())
        );
        let mut spec = tiny_clean_spec();
        spec.fixtures.clear();
        assert_eq!(
            run_explore(&cfg, &spec, 1, None).unwrap_err(),
            ExploreError::EmptyCaseList
        );
    }

    #[test]
    fn containment_invariant_runs_and_holds_on_scoped_faults() {
        // Two tenants, the fault plan scoped to tenant 0: the invariant
        // must actually evaluate (checks > 0) and hold — the non-target
        // tenant's stats stay byte-identical to its fault-free run.
        let spec = ExploreSpec {
            policy: "lru".to_string(),
            grid_limit: 0,
            fixtures: vec![FaultPlan::latency_storm(5)],
            invariants: vec!["completes".to_string(), "containment".to_string()],
            tenants: 2,
            tenant_target: 0,
            ..ExploreSpec::default()
        };
        let report = run_explore(&bench_config(), &spec, 1, None).unwrap();
        assert_eq!(report.cases, 1);
        assert!(
            report.counterexamples.is_empty(),
            "{:?}",
            report.counterexamples
        );
        // completes (1 check) + containment (1 check) per case.
        assert_eq!(report.invariant_checks, 2);
        assert!(
            report.invariants.contains(&"containment".to_string()),
            "{:?}",
            report.invariants
        );

        // A target outside the mix is a typed spec error, not a panic.
        let mut bad = spec.clone();
        bad.tenant_target = 9;
        let err = run_explore(&bench_config(), &bad, 1, None).unwrap_err();
        assert!(matches!(err, ExploreError::InvalidSpec(_)), "{err}");

        // Without a tenant mix the invariant is skipped, like checkpoint
        // at cycle 0: default spec (all invariants, tenants = 0) still
        // runs clean.
        let no_mix = ExploreSpec {
            policy: "lru".to_string(),
            grid_limit: 0,
            fixtures: vec![FaultPlan::latency_storm(5)],
            tenants: 0,
            ..ExploreSpec::default()
        };
        let report = run_explore(&bench_config(), &no_mix, 1, None).unwrap();
        assert!(report.counterexamples.is_empty());
    }

    #[test]
    fn progress_stream_gets_one_line_per_case() {
        let mut buf = Vec::new();
        let report = run_explore(
            &bench_config(),
            &tiny_clean_spec(),
            1,
            Some(&mut buf as &mut dyn io::Write),
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count() as u64, report.cases);
        assert!(text.contains("\"label\":\"fixture:0\""), "{text}");
        assert!(text.contains("\"ok\":true"), "{text}");
    }
}
