//! Parallel campaign engine: fans `(app, policy, rate, plan)` runs across
//! a pool of scoped worker threads and merges the results deterministically
//! by grid key.
//!
//! Every cell of a campaign grid is an independent simulation — it owns its
//! seed (the app's trace seed plus the fault plan's injection stream) and
//! its `SimStats` — so the sweep is embarrassingly parallel. The engine
//! keeps the paper-reproduction guarantee anyway: the merged
//! [`CampaignReport`] is **byte-identical** regardless of worker count,
//! queue order or completion order, because
//!
//! 1. each cell is a pure function of `(SimConfig, app, policy, rate,
//!    plan, recovery)` — workers share no mutable simulation state,
//! 2. results are merged by grid index, never by arrival order, and
//! 3. the report serializes runs in grid order with the deterministic
//!    insertion-ordered JSON writer.
//!
//! The only arrival-ordered artifact is the JSONL progress stream (one
//! compact object per completed run), which exists for observability —
//! `hpe-trace campaign` summarizes it — and is explicitly excluded from
//! the determinism contract.
//!
//! Long campaigns checkpoint themselves: every `snapshot_every`
//! completions the collector writes a [`CampaignSnapshot`] (atomic
//! write-then-rename) holding every completed run plus a fingerprint of
//! the spec. A killed campaign relaunched with `resume` skips the
//! completed cells and re-runs only the rest; the merged report is
//! byte-identical to an uninterrupted run. The snapshot follows the same
//! byte-compare discipline as [`uvm_sim::Checkpoint`]: a resumed campaign
//! recomputes the spec fingerprint and refuses a snapshot taken under a
//! different grid, seed or recovery configuration with a typed
//! [`CampaignError::SnapshotMismatch`] instead of silently merging
//! incompatible runs. (Per-run `Checkpoint`s are *not* stored for
//! in-flight cells: the simulator's checkpoints are replay-based, so
//! resuming one costs the same wall-clock as re-running the cell.)

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use uvm_sim::FaultPlan;
use uvm_types::{Oversubscription, SimConfig, SimStats};
use uvm_util::{check_unknown_fields, json, FromJson, Json, JsonError, Rng, ToJson};
use uvm_workloads::{registry, App};

use crate::runner::{run_policy_recovering, PolicyKind, RecoveryOptions};

/// Snapshot cadence used when the caller does not pick one: frequent
/// enough that a killed full-grid campaign (2 254 cells) loses at most a
/// few seconds of work, rare enough that snapshot I/O is negligible.
pub const DEFAULT_SNAPSHOT_EVERY: usize = 32;

/// Version tag of the campaign snapshot schema.
pub const CAMPAIGN_SNAPSHOT_SCHEMA: u64 = 1;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// How a campaign failed before (or instead of) producing a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// An application abbreviation did not resolve in the registry.
    UnknownApp(String),
    /// The spec enumerates an empty grid (no apps, policies, rates or
    /// plans).
    EmptyGrid,
    /// A resume snapshot was taken under a different spec (grid, seed or
    /// recovery configuration).
    SnapshotMismatch {
        /// Fingerprint of the spec being run.
        expected: String,
        /// Fingerprint recorded in the snapshot.
        found: String,
    },
    /// A snapshot file failed to parse or validate.
    SnapshotMalformed(String),
    /// A snapshot or progress file could not be read or written.
    Io(String),
    /// `report()` was called on a partial campaign.
    Incomplete {
        /// Cells completed so far.
        done: usize,
        /// Grid size.
        total: usize,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::UnknownApp(a) => write!(f, "unknown app '{a}'"),
            CampaignError::EmptyGrid => write!(f, "campaign grid is empty"),
            CampaignError::SnapshotMismatch { expected, found } => write!(
                f,
                "snapshot fingerprint {found} does not match the spec ({expected}); \
                 refusing to merge runs from a different campaign"
            ),
            CampaignError::SnapshotMalformed(m) => write!(f, "malformed snapshot: {m}"),
            CampaignError::Io(m) => write!(f, "campaign i/o error: {m}"),
            CampaignError::Incomplete { done, total } => {
                write!(f, "campaign incomplete: {done}/{total} cells done")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Spec
// ---------------------------------------------------------------------------

/// One fault-plan column of the campaign grid: a stable name plus the
/// plan itself (`None` = the clean, no-injection run).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpec {
    /// Stable column name used in grid keys ("clean", "latency-storm", …).
    pub name: String,
    /// The fault plan, or `None` for the clean run.
    pub plan: Option<FaultPlan>,
}

impl PlanSpec {
    /// The clean (no-injection) column.
    pub fn clean() -> Self {
        PlanSpec {
            name: "clean".to_string(),
            plan: None,
        }
    }

    /// A named fault-injection column.
    pub fn chaos(name: impl Into<String>, plan: FaultPlan) -> Self {
        PlanSpec {
            name: name.into(),
            plan: Some(plan),
        }
    }
}

/// The canonical 7-column plan set: the clean run plus the six named
/// fault plans, each deriving its RNG stream from the campaign seed so
/// the whole sweep replays from one number.
pub fn chaos_plan_set(seed: u64) -> Vec<PlanSpec> {
    vec![
        PlanSpec::clean(),
        PlanSpec::chaos("latency-storm", FaultPlan::latency_storm(seed)),
        PlanSpec::chaos("congestion", FaultPlan::congestion(seed.wrapping_add(1))),
        PlanSpec::chaos(
            "completion-loss",
            FaultPlan::completion_loss(seed.wrapping_add(2)),
        ),
        PlanSpec::chaos(
            "signal-chaos",
            FaultPlan::signal_chaos(seed.wrapping_add(3)),
        ),
        PlanSpec::chaos(
            "partial-outage",
            FaultPlan::partial_outage(seed.wrapping_add(4)),
        ),
        PlanSpec::chaos("victim-drop", FaultPlan::victim_drop(seed.wrapping_add(5))),
    ]
}

/// The full campaign grid: which cells to run and under which recovery
/// machinery. Everything that can change a cell's result is part of the
/// spec and therefore of its fingerprint.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Application abbreviations, in grid order.
    pub apps: Vec<String>,
    /// Policies, in grid order.
    pub policies: Vec<PolicyKind>,
    /// Oversubscription rates, in grid order.
    pub rates: Vec<Oversubscription>,
    /// Fault-plan columns, in grid order.
    pub plans: Vec<PlanSpec>,
    /// Driver recovery machinery applied to every cell.
    pub recovery: RecoveryOptions,
    /// Campaign seed (the fault plans are derived from it; recorded so
    /// the fingerprint distinguishes reseeded sweeps).
    pub seed: u64,
}

impl CampaignSpec {
    /// The paper's full evaluation grid: all 23 apps x all 7 policies x
    /// both studied rates x the 7-column chaos plan set.
    pub fn full_grid(seed: u64) -> Self {
        CampaignSpec {
            apps: registry::all()
                .iter()
                .map(|a| a.abbr().to_string())
                .collect(),
            policies: PolicyKind::ALL.to_vec(),
            rates: vec![Oversubscription::Rate75, Oversubscription::Rate50],
            plans: chaos_plan_set(seed),
            recovery: RecoveryOptions::default(),
            seed,
        }
    }

    /// A clean-only grid over the given apps (no fault injection).
    pub fn clean_grid(apps: Vec<String>, seed: u64) -> Self {
        CampaignSpec {
            apps,
            policies: PolicyKind::ALL.to_vec(),
            rates: vec![Oversubscription::Rate75, Oversubscription::Rate50],
            plans: vec![PlanSpec::clean()],
            recovery: RecoveryOptions::default(),
            seed,
        }
    }

    /// Number of grid cells.
    pub fn grid_len(&self) -> usize {
        self.apps.len() * self.policies.len() * self.rates.len() * self.plans.len()
    }

    /// The JSON document the fingerprint hashes: every input that can
    /// change a cell's result, in deterministic key order.
    fn fingerprint_json(&self) -> Json {
        let policies: Vec<String> = self
            .policies
            .iter()
            .map(|p| p.label().to_string())
            .collect();
        let rates: Vec<String> = self.rates.iter().map(|r| r.label()).collect();
        let plans: Vec<Json> = self
            .plans
            .iter()
            .map(|p| json!({ "name": p.name.clone(), "plan": p.plan.clone() }))
            .collect();
        let recovery = json!({
            "retry": self.recovery.retry,
            "fallback": self.recovery.fallback.label(),
            "sanitize": self.recovery.sanitize,
            "profile": self.recovery.profile,
        });
        json!({
            "apps": self.apps.clone(),
            "policies": policies,
            "rates": rates,
            "plans": plans,
            "recovery": recovery,
            "seed": self.seed,
        })
    }

    /// A 64-bit FNV-1a hex digest of the spec. Two specs with the same
    /// fingerprint enumerate the same grid and produce the same merged
    /// report; snapshots refuse to resume across different fingerprints.
    pub fn fingerprint(&self) -> String {
        format!(
            "{:016x}",
            fnv1a(self.fingerprint_json().to_string().as_bytes())
        )
    }

    /// Enumerates the grid in spec order (apps x policies x rates x
    /// plans), resolving app abbreviations against the registry.
    fn grid(&self) -> Result<Vec<Cell>, CampaignError> {
        if self.grid_len() == 0 {
            return Err(CampaignError::EmptyGrid);
        }
        let mut cells = Vec::with_capacity(self.grid_len());
        for abbr in &self.apps {
            let app =
                registry::by_abbr(abbr).ok_or_else(|| CampaignError::UnknownApp(abbr.clone()))?;
            for &policy in &self.policies {
                for &rate in &self.rates {
                    for (plan_idx, _) in self.plans.iter().enumerate() {
                        cells.push(Cell {
                            index: cells.len(),
                            app,
                            policy,
                            rate,
                            plan_idx,
                        });
                    }
                }
            }
        }
        Ok(cells)
    }
}

/// FNV-1a, 64-bit: a tiny deterministic digest for spec fingerprints
/// (collision resistance is not a goal; catching accidental spec drift
/// across a kill/resume is).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One enumerated grid cell (internal: `&'static App` keeps workers free
/// of per-cell cloning; everything here is `Send + Sync` plain data).
#[derive(Debug, Clone, Copy)]
struct Cell {
    index: usize,
    app: &'static App,
    policy: PolicyKind,
    rate: Oversubscription,
    plan_idx: usize,
}

/// The stable grid key of a cell: `app/policy/rate/plan`.
pub fn grid_key(app: &str, policy: &str, rate: &str, plan: &str) -> String {
    format!("{app}/{policy}/{rate}/{plan}")
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// One completed grid cell: the cell's coordinates plus its outcome.
/// Serializes to deterministic JSON and round-trips through `uvm-util`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignRun {
    /// Position in the enumerated grid.
    pub index: u64,
    /// `app/policy/rate/plan` key.
    pub key: String,
    /// Application abbreviation.
    pub app: String,
    /// Policy label.
    pub policy: String,
    /// Oversubscription label ("75%", "50%").
    pub rate: String,
    /// Plan column name ("clean", "latency-storm", …).
    pub plan: String,
    /// Whether the simulation completed soundly.
    pub ok: bool,
    /// The `SimError` display text when `ok` is false, else empty.
    pub error: String,
    /// Simulator statistics (default-zero when the run failed).
    pub stats: SimStats,
}

uvm_util::impl_json_struct!(CampaignRun {
    index = 0,
    key = String::new(),
    app = String::new(),
    policy = String::new(),
    rate = String::new(),
    plan = String::new(),
    ok = false,
    error = String::new(),
    stats = SimStats::default(),
});

impl CampaignRun {
    /// The compact JSONL progress line for this run (arrival-ordered
    /// observability stream; see the module docs).
    pub fn progress_line(&self) -> String {
        json!({
            "index": self.index,
            "key": self.key.clone(),
            "app": self.app.clone(),
            "policy": self.policy.clone(),
            "rate": self.rate.clone(),
            "plan": self.plan.clone(),
            "ok": self.ok,
            "cycles": self.stats.cycles,
            "faults": self.stats.faults(),
            "evictions": self.stats.evictions(),
            "error": self.error.clone(),
        })
        .to_string()
    }
}

/// Aggregate counters over a set of campaign runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignTotals {
    /// Cells merged.
    pub runs: u64,
    /// Cells whose simulation failed with a typed error.
    pub failed: u64,
    /// Sum of simulated cycles.
    pub cycles: u64,
    /// Sum of serviced faults.
    pub faults: u64,
    /// Sum of evictions.
    pub evictions: u64,
}

/// The merged result of a complete campaign, in grid order.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Fingerprint of the spec that produced it.
    pub fingerprint: String,
    /// Every grid cell's run, sorted by grid index.
    pub runs: Vec<CampaignRun>,
}

impl CampaignReport {
    /// The report as one deterministic JSON document. Byte-identical
    /// across worker counts and completion orders — this is the artifact
    /// the parallel-equivalence suite pins.
    pub fn to_json(&self) -> Json {
        json!({
            "fingerprint": self.fingerprint.clone(),
            "total": self.runs.len() as u64,
            "runs": self.runs.clone(),
        })
    }

    /// Aggregate counters (merged `SimStats` totals).
    pub fn totals(&self) -> CampaignTotals {
        let mut t = CampaignTotals::default();
        for r in &self.runs {
            t.runs += 1;
            if !r.ok {
                t.failed += 1;
            }
            t.cycles += r.stats.cycles;
            t.faults += r.stats.faults();
            t.evictions += r.stats.evictions();
        }
        t
    }

    /// Looks up a run by its grid key.
    pub fn find(&self, key: &str) -> Option<&CampaignRun> {
        self.runs.iter().find(|r| r.key == key)
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// On-disk auto-snapshot of a campaign in flight: the spec fingerprint
/// plus every completed run. Written atomically (temp file + rename) so
/// a kill mid-write leaves the previous snapshot intact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignSnapshot {
    /// Snapshot schema version ([`CAMPAIGN_SNAPSHOT_SCHEMA`]).
    pub schema: u64,
    /// Fingerprint of the producing spec.
    pub fingerprint: String,
    /// Grid size of the producing spec.
    pub total: u64,
    /// Completed runs, in grid order.
    pub completed: Vec<CampaignRun>,
}

uvm_util::impl_json_struct!(CampaignSnapshot {
    schema = 0,
    fingerprint = String::new(),
    total = 0,
    completed = Vec::new(),
});

impl CampaignSnapshot {
    /// Structural validation beyond JSON well-formedness.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::SnapshotMalformed`] on a wrong schema
    /// version, out-of-range or duplicate indices, or runs out of grid
    /// order.
    pub fn validate(&self) -> Result<(), CampaignError> {
        if self.schema != CAMPAIGN_SNAPSHOT_SCHEMA {
            return Err(CampaignError::SnapshotMalformed(format!(
                "schema {} (expected {CAMPAIGN_SNAPSHOT_SCHEMA})",
                self.schema
            )));
        }
        let mut last: Option<u64> = None;
        for run in &self.completed {
            if run.index >= self.total {
                return Err(CampaignError::SnapshotMalformed(format!(
                    "run index {} out of range (grid size {})",
                    run.index, self.total
                )));
            }
            if last.is_some_and(|l| run.index <= l) {
                return Err(CampaignError::SnapshotMalformed(format!(
                    "run indices not strictly increasing at {}",
                    run.index
                )));
            }
            last = Some(run.index);
        }
        Ok(())
    }

    /// Writes the snapshot atomically to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] on any filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CampaignError> {
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, self.to_json().pretty())?;
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Parses a snapshot, rejecting unknown fields (a truncated or
    /// hand-edited snapshot should fail loudly at load, not resume a
    /// half-wrong campaign).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on unknown or malformed fields.
    pub fn from_json_strict(v: &Json) -> Result<Self, JsonError> {
        // One array exemplar so the run fields join the known set.
        let mut template = CampaignSnapshot::default();
        template.completed.push(CampaignRun::default());
        check_unknown_fields(v, &template.to_json(), "campaign snapshot")?;
        CampaignSnapshot::from_json(v)
    }

    /// Loads and validates a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] if the file cannot be read and
    /// [`CampaignError::SnapshotMalformed`] if it fails to parse,
    /// carries unknown fields, or fails validation.
    pub fn load(path: &Path) -> Result<Self, CampaignError> {
        let text = fs::read_to_string(path)?;
        let value =
            Json::parse(&text).map_err(|e| CampaignError::SnapshotMalformed(e.to_string()))?;
        let snap = CampaignSnapshot::from_json_strict(&value)
            .map_err(|e| CampaignError::SnapshotMalformed(e.to_string()))?;
        snap.validate()?;
        Ok(snap)
    }
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

/// Worker pool and checkpointing knobs, separate from the grid spec so
/// that changing them can never change the merged result (they are not
/// part of the fingerprint by construction).
#[derive(Debug, Clone, Default)]
pub struct PoolOptions {
    /// Worker threads (0 and 1 both mean one worker).
    pub workers: usize,
    /// Shuffle the injector queue with this seed before dispatch. A test
    /// hook: exercises arbitrary completion orders without changing the
    /// merged report.
    pub shuffle: Option<u64>,
    /// Auto-snapshot file. `None` disables checkpointing.
    pub snapshot_path: Option<PathBuf>,
    /// Completions between auto-snapshots (0 = [`DEFAULT_SNAPSHOT_EVERY`]).
    pub snapshot_every: usize,
    /// Resume from `snapshot_path` if it exists (fingerprint-checked).
    pub resume: bool,
    /// Stop dispatching after this many completions this invocation — a
    /// deterministic stand-in for a mid-campaign kill (tests, `--limit`).
    pub limit: Option<usize>,
}

/// What a campaign invocation produced: all completed runs so far (grid
/// order), plus bookkeeping about how they got there.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Fingerprint of the spec.
    pub fingerprint: String,
    /// Grid size.
    pub total: usize,
    /// Cells skipped because a resume snapshot already had them.
    pub resumed: usize,
    /// Cells executed by this invocation.
    pub executed: usize,
    /// Every completed run, in grid order (partial after a `limit` stop).
    pub runs: Vec<CampaignRun>,
}

impl CampaignOutcome {
    /// Whether every grid cell has a result.
    pub fn is_complete(&self) -> bool {
        self.runs.len() == self.total
    }

    /// The merged report.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Incomplete`] if cells are still pending
    /// (after a `limit` stop).
    pub fn report(&self) -> Result<CampaignReport, CampaignError> {
        if !self.is_complete() {
            return Err(CampaignError::Incomplete {
                done: self.runs.len(),
                total: self.total,
            });
        }
        Ok(CampaignReport {
            fingerprint: self.fingerprint.clone(),
            runs: self.runs.clone(),
        })
    }
}

/// Runs one grid cell. Pure: same cell + same spec → same `CampaignRun`,
/// which is what makes the merged report order-independent.
fn execute_cell(cfg: &SimConfig, spec: &CampaignSpec, cell: Cell) -> CampaignRun {
    let plan_spec = &spec.plans[cell.plan_idx];
    let outcome = run_policy_recovering(
        cfg,
        cell.app,
        cell.rate,
        cell.policy,
        plan_spec.plan.as_ref(),
        spec.recovery,
    );
    let (ok, error, stats) = match outcome {
        Ok(r) => (true, String::new(), r.stats),
        Err(e) => (false, e.to_string(), SimStats::default()),
    };
    CampaignRun {
        index: cell.index as u64,
        key: grid_key(
            cell.app.abbr(),
            cell.policy.label(),
            &cell.rate.label(),
            &plan_spec.name,
        ),
        app: cell.app.abbr().to_string(),
        policy: cell.policy.label().to_string(),
        rate: cell.rate.label(),
        plan: plan_spec.name.clone(),
        ok,
        error,
        stats,
    }
}

/// Runs the campaign serially, in grid order, with no pool, no snapshot
/// and no progress stream: the reference implementation the
/// parallel-equivalence suite compares the pool against.
///
/// # Errors
///
/// Returns [`CampaignError`] if the spec does not enumerate a valid grid.
pub fn run_campaign_serial(
    cfg: &SimConfig,
    spec: &CampaignSpec,
) -> Result<CampaignOutcome, CampaignError> {
    let cells = spec.grid()?;
    let total = cells.len();
    let runs: Vec<CampaignRun> = cells
        .into_iter()
        .map(|cell| execute_cell(cfg, spec, cell))
        .collect();
    Ok(CampaignOutcome {
        fingerprint: spec.fingerprint(),
        total,
        resumed: 0,
        executed: total,
        runs,
    })
}

/// Runs the campaign on a scoped worker pool.
///
/// Workers pull cell indices from a shared injector queue (an atomic
/// cursor over the dispatch order) and push completed runs to the
/// collector over a channel; the collector streams JSONL progress,
/// auto-snapshots every [`PoolOptions::snapshot_every`] completions, and
/// merges results by grid index.
///
/// # Errors
///
/// Returns [`CampaignError`] if the spec is invalid, a resume snapshot
/// mismatches, or snapshot/progress I/O fails. Individual cell failures
/// do **not** abort the campaign — they are recorded on the cell's
/// [`CampaignRun`] (`ok = false`).
pub fn run_campaign(
    cfg: &SimConfig,
    spec: &CampaignSpec,
    pool: &PoolOptions,
    mut progress: Option<&mut dyn io::Write>,
) -> Result<CampaignOutcome, CampaignError> {
    let cells = spec.grid()?;
    let total = cells.len();
    let fingerprint = spec.fingerprint();
    let snapshot_every = if pool.snapshot_every == 0 {
        DEFAULT_SNAPSHOT_EVERY
    } else {
        pool.snapshot_every
    };

    // Resume: pre-fill completed slots from the snapshot, if any.
    let mut done: Vec<Option<CampaignRun>> = vec![None; total];
    let mut resumed = 0usize;
    if pool.resume {
        if let Some(path) = &pool.snapshot_path {
            if path.exists() {
                let snap = CampaignSnapshot::load(path)?;
                if snap.fingerprint != fingerprint {
                    return Err(CampaignError::SnapshotMismatch {
                        expected: fingerprint,
                        found: snap.fingerprint,
                    });
                }
                if snap.total != total as u64 {
                    return Err(CampaignError::SnapshotMalformed(format!(
                        "snapshot grid size {} != spec grid size {total}",
                        snap.total
                    )));
                }
                for run in snap.completed {
                    let idx = run.index as usize;
                    let expected_key = {
                        let c = cells[idx];
                        grid_key(
                            c.app.abbr(),
                            c.policy.label(),
                            &c.rate.label(),
                            &spec.plans[c.plan_idx].name,
                        )
                    };
                    if run.key != expected_key {
                        return Err(CampaignError::SnapshotMalformed(format!(
                            "snapshot run {} has key '{}' but the grid cell is '{expected_key}'",
                            idx, run.key
                        )));
                    }
                    done[idx] = Some(run);
                    resumed += 1;
                }
            }
        }
    }

    // Dispatch order over the *pending* cells: grid order, optionally
    // shuffled (a test hook; the merge makes it unobservable).
    let pending: Vec<Cell> = cells
        .iter()
        .copied()
        .filter(|c| done[c.index].is_none())
        .collect();
    let mut order: Vec<usize> = (0..pending.len()).collect();
    if let Some(seed) = pool.shuffle {
        Rng::seed_from_u64(seed).shuffle(&mut order);
    }

    let workers = pool.workers.max(1);
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let mut executed = 0usize;
    let mut io_error: Option<CampaignError> = None;

    thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<CampaignRun>();
        for _ in 0..workers {
            let tx = tx.clone();
            let (cursor, stop, order, pending) = (&cursor, &stop, &order, &pending);
            s.spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let slot = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&cell_idx) = order.get(slot) else {
                    break;
                };
                let run = execute_cell(cfg, spec, pending[cell_idx]);
                if tx.send(run).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        // Collector: arrival-ordered progress, index-ordered merge.
        for run in rx.iter() {
            if let Some(w) = progress.as_deref_mut() {
                if let Err(e) = writeln!(w, "{}", run.progress_line()) {
                    io_error.get_or_insert(CampaignError::Io(e.to_string()));
                    stop.store(true, Ordering::Relaxed);
                }
            }
            let index = run.index as usize;
            done[index] = Some(run);
            executed += 1;
            let at_boundary = executed.is_multiple_of(snapshot_every);
            let at_limit = pool.limit.is_some_and(|l| executed >= l);
            if at_limit {
                stop.store(true, Ordering::Relaxed);
            }
            if at_boundary || at_limit {
                if let Some(path) = &pool.snapshot_path {
                    if let Err(e) = write_snapshot(path, &fingerprint, total, &done) {
                        io_error.get_or_insert(e);
                        stop.store(true, Ordering::Relaxed);
                    }
                }
            }
        }
    });

    if let Some(e) = io_error {
        return Err(e);
    }

    // Final snapshot so a completed (or limit-stopped) campaign's file
    // reflects everything that finished, including in-flight stragglers
    // that completed after the stop flag was raised.
    if let Some(path) = &pool.snapshot_path {
        write_snapshot(path, &fingerprint, total, &done)?;
    }

    Ok(CampaignOutcome {
        fingerprint,
        total,
        resumed,
        executed,
        runs: done.into_iter().flatten().collect(),
    })
}

fn write_snapshot(
    path: &Path,
    fingerprint: &str,
    total: usize,
    done: &[Option<CampaignRun>],
) -> Result<(), CampaignError> {
    let snap = CampaignSnapshot {
        schema: CAMPAIGN_SNAPSHOT_SCHEMA,
        fingerprint: fingerprint.to_string(),
        total: total as u64,
        completed: done.iter().flatten().cloned().collect(),
    };
    snap.save(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_config;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            apps: vec!["STN".to_string()],
            policies: vec![PolicyKind::Lru, PolicyKind::Hpe],
            rates: vec![Oversubscription::Rate75],
            plans: vec![PlanSpec::clean()],
            recovery: RecoveryOptions::default(),
            seed: 7,
        }
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let a = tiny_spec();
        let mut b = tiny_spec();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.seed = 8;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = tiny_spec();
        c.plans = chaos_plan_set(7);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn grid_enumerates_in_spec_order() {
        let spec = tiny_spec();
        let cells = spec.grid().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].policy, PolicyKind::Lru);
        assert_eq!(cells[1].policy, PolicyKind::Hpe);
        assert_eq!(cells[1].index, 1);
    }

    #[test]
    fn unknown_app_is_a_typed_error() {
        let mut spec = tiny_spec();
        spec.apps = vec!["XXX".to_string()];
        assert_eq!(
            spec.grid().unwrap_err(),
            CampaignError::UnknownApp("XXX".to_string())
        );
    }

    #[test]
    fn empty_grid_is_a_typed_error() {
        let mut spec = tiny_spec();
        spec.policies.clear();
        assert_eq!(spec.grid().unwrap_err(), CampaignError::EmptyGrid);
    }

    #[test]
    fn campaign_run_json_roundtrip_is_byte_identical() {
        let cfg = bench_config();
        let spec = tiny_spec();
        let out = run_campaign_serial(&cfg, &spec).unwrap();
        for run in &out.runs {
            let text = run.to_json().to_string();
            let back = CampaignRun::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(&back, run);
            assert_eq!(back.to_json().to_string(), text);
        }
    }

    #[test]
    fn snapshot_rejects_wrong_schema_and_bad_indices() {
        let snap = CampaignSnapshot {
            schema: 99,
            ..CampaignSnapshot::default()
        };
        assert!(matches!(
            snap.validate(),
            Err(CampaignError::SnapshotMalformed(_))
        ));
        let snap = CampaignSnapshot {
            schema: CAMPAIGN_SNAPSHOT_SCHEMA,
            fingerprint: "x".into(),
            total: 1,
            completed: vec![CampaignRun {
                index: 5,
                ..CampaignRun::default()
            }],
        };
        assert!(matches!(
            snap.validate(),
            Err(CampaignError::SnapshotMalformed(_))
        ));
    }

    #[test]
    fn snapshot_strict_parse_rejects_unknown_fields_and_truncation() {
        // A misspelled top-level field names itself and the nearest
        // known key.
        let v = Json::parse(r#"{"schema": 1, "fingerprnt": "x"}"#).unwrap();
        let err = CampaignSnapshot::from_json_strict(&v)
            .unwrap_err()
            .to_string();
        assert!(err.contains("fingerprnt"), "{err}");
        assert!(err.contains("fingerprint"), "{err}");
        // Unknown fields nested in a completed run are located by path.
        let v = Json::parse(r#"{"schema": 1, "completed": [{"index": 0, "kye": "a"}]}"#).unwrap();
        let err = CampaignSnapshot::from_json_strict(&v)
            .unwrap_err()
            .to_string();
        assert!(err.contains("completed[0].kye"), "{err}");
        // A truncated snapshot file fails at load with a parse error,
        // not a silent partial resume.
        let dir = std::env::temp_dir().join(format!("hpe-snap-trunc-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let full = CampaignSnapshot {
            schema: CAMPAIGN_SNAPSHOT_SCHEMA,
            fingerprint: "x".into(),
            total: 1,
            completed: vec![CampaignRun::default()],
        };
        full.save(&path).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(
            CampaignSnapshot::load(&path),
            Err(CampaignError::SnapshotMalformed(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn progress_line_is_one_json_object() {
        let run = CampaignRun {
            index: 3,
            key: grid_key("STN", "LRU", "75%", "clean"),
            app: "STN".into(),
            policy: "LRU".into(),
            rate: "75%".into(),
            plan: "clean".into(),
            ok: true,
            ..CampaignRun::default()
        };
        let line = run.progress_line();
        assert!(!line.contains('\n'));
        let v = Json::parse(&line).unwrap();
        assert_eq!(v["key"].as_str(), Some("STN/LRU/75%/clean"));
        assert_eq!(v["ok"].as_bool(), Some(true));
    }
}
