//! Shared experiment runner: one application x one policy x one
//! oversubscription rate, on the scaled reproduction configuration.

use hpe_core::{Classification, Hpe, HpeConfig, StrategyKind};
use uvm_policies::{
    ClockPro, ClockProConfig, EvictionPolicy, Lfu, Lru, RandomPolicy, Rrip, RripConfig,
};
use uvm_sim::{ideal_for, trace_for, Simulation};
use uvm_types::{Oversubscription, SimConfig, SimStats};
use uvm_workloads::{App, PatternType};

/// The policies compared in the paper's evaluation (plus LFU from the
/// related-work discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Page-level LRU.
    Lru,
    /// Uniform random.
    Random,
    /// Least-frequently-used.
    Lfu,
    /// RRIP-FP with the delay enhancement; insertion mode chosen per
    /// application exactly as the paper does (distant + threshold 128 for
    /// type II, long + threshold 0 otherwise).
    Rrip,
    /// CLOCK-Pro with fixed `m_c = 128`.
    ClockPro,
    /// Offline Belady-MIN upper bound.
    Ideal,
    /// HPE with the paper-default configuration.
    Hpe,
}

impl PolicyKind {
    /// All policy kinds in report order.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Lfu,
        PolicyKind::Rrip,
        PolicyKind::ClockPro,
        PolicyKind::Ideal,
        PolicyKind::Hpe,
    ];

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Random => "Random",
            PolicyKind::Lfu => "LFU",
            PolicyKind::Rrip => "RRIP",
            PolicyKind::ClockPro => "CLOCK-Pro",
            PolicyKind::Ideal => "Ideal",
            PolicyKind::Hpe => "HPE",
        }
    }
}

/// HPE-specific observations extracted after a run.
#[derive(Debug, Clone)]
pub struct HpeReport {
    /// Classification (ratios + category) at first memory-full.
    pub classification: Option<Classification>,
    /// Old-partition size (sets) at first memory-full.
    pub old_sets_at_full: Option<usize>,
    /// `(fault, strategy)` timeline.
    pub timeline: Vec<(u64, StrategyKind)>,
    /// `(fault, jump)` search-point adjustments.
    pub jump_events: Vec<(u64, u32)>,
    /// MRU-C searches performed.
    pub mruc_searches: u64,
    /// Total MRU-C entry comparisons.
    pub mruc_comparisons: u64,
    /// Page sets divided.
    pub divided_sets: u64,
}

impl HpeReport {
    fn from_policy(hpe: &Hpe) -> Self {
        let (mruc_searches, mruc_comparisons) = hpe.mruc_search_overhead();
        HpeReport {
            classification: hpe.classification().copied(),
            old_sets_at_full: hpe.old_sets_at_full(),
            timeline: hpe.strategy_timeline().to_vec(),
            jump_events: hpe.jump_events().to_vec(),
            mruc_searches,
            mruc_comparisons,
            divided_sets: hpe.divided_sets(),
        }
    }
}

/// One experiment's result.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Application abbreviation.
    pub app: &'static str,
    /// Policy label.
    pub policy: &'static str,
    /// Oversubscription rate.
    pub rate: Oversubscription,
    /// Simulator statistics.
    pub stats: SimStats,
    /// HPE-specific extras (None for baselines).
    pub hpe: Option<HpeReport>,
}

/// The RRIP configuration the paper assigns to `app` (Section V-B).
pub fn rrip_config_for(app: &App) -> RripConfig {
    if app.pattern() == PatternType::Thrashing {
        RripConfig::for_thrashing()
    } else {
        RripConfig::default()
    }
}

/// Runs `app` under `kind` at `rate` using simulator configuration `cfg`.
///
/// # Panics
///
/// Panics if `cfg` is invalid (the reproduction harness treats that as a
/// programming error).
pub fn run_policy(
    cfg: &SimConfig,
    app: &App,
    rate: Oversubscription,
    kind: PolicyKind,
) -> RunResult {
    let trace = trace_for(cfg, app);
    let capacity = rate.capacity_pages(app.footprint_pages());
    let (stats, hpe) = match kind {
        PolicyKind::Lru => (run_sim(cfg, &trace, Lru::new(), capacity), None),
        PolicyKind::Random => (
            run_sim(cfg, &trace, RandomPolicy::seeded(app.seed()), capacity),
            None,
        ),
        PolicyKind::Lfu => (run_sim(cfg, &trace, Lfu::new(), capacity), None),
        PolicyKind::Rrip => (
            run_sim(cfg, &trace, Rrip::new(rrip_config_for(app)), capacity),
            None,
        ),
        PolicyKind::ClockPro => (
            run_sim(
                cfg,
                &trace,
                ClockPro::new(ClockProConfig::default()),
                capacity,
            ),
            None,
        ),
        PolicyKind::Ideal => (run_sim(cfg, &trace, ideal_for(&trace), capacity), None),
        PolicyKind::Hpe => {
            let hpe = Hpe::new(HpeConfig::from_sim(cfg)).expect("valid HPE config");
            let outcome = Simulation::new(cfg.clone(), &trace, hpe, capacity)
                .expect("valid simulation")
                .run();
            let report = HpeReport::from_policy(&outcome.policy);
            (outcome.stats, Some(report))
        }
    };
    RunResult {
        app: app.abbr(),
        policy: kind.label(),
        rate,
        stats,
        hpe,
    }
}

/// Runs `app` under a *custom* HPE configuration (sensitivity studies).
pub fn run_hpe_with(
    cfg: &SimConfig,
    app: &App,
    rate: Oversubscription,
    hpe_cfg: HpeConfig,
) -> RunResult {
    let trace = trace_for(cfg, app);
    let capacity = rate.capacity_pages(app.footprint_pages());
    let hpe = Hpe::new(hpe_cfg).expect("valid HPE config");
    let outcome = Simulation::new(cfg.clone(), &trace, hpe, capacity)
        .expect("valid simulation")
        .run();
    let report = HpeReport::from_policy(&outcome.policy);
    RunResult {
        app: app.abbr(),
        policy: "HPE",
        rate,
        stats: outcome.stats,
        hpe: Some(report),
    }
}

fn run_sim<P: EvictionPolicy>(
    cfg: &SimConfig,
    trace: &uvm_workloads::Trace,
    policy: P,
    capacity: u64,
) -> SimStats {
    Simulation::new(cfg.clone(), trace, policy, capacity)
        .expect("valid simulation")
        .run()
        .stats
}

/// The strategy the paper manually assigns per application for the
/// sensitivity studies (applications that run LRU for their entire
/// execution per Section V-C vs. the MRU-C ones).
pub fn manual_strategy_for(app: &App) -> StrategyKind {
    match app.abbr() {
        "KMN" | "NW" | "B+T" | "HYB" | "SPV" | "MVT" | "HWL" => StrategyKind::Lru,
        _ => StrategyKind::MruC,
    }
}
