//! Shared experiment runner: one application x one policy x one
//! oversubscription rate, on the scaled reproduction configuration.

use std::cell::RefCell;
use std::rc::Rc;

use hpe_core::{Classification, Hpe, HpeConfig, StrategyKind};
use uvm_policies::{
    ClockPro, ClockProConfig, EvictionPolicy, Lfu, Lru, RandomPolicy, Rrip, RripConfig, Traced,
};
use uvm_sim::{
    ideal_for, trace_for, EventCounters, EventLog, FallbackVictim, FaultPlan, IntervalCollector,
    IntervalKey, MultiObserver, ProfileConfig, ProfileReport, Profiler, RetryPolicy, Sanitizer,
    SimObserver, Simulation, TraceHistograms,
};
use uvm_types::{Oversubscription, SimConfig, SimError, SimStats};
use uvm_util::{json, Json, ToJson};
use uvm_workloads::{App, PatternType};

/// The policies compared in the paper's evaluation (plus LFU from the
/// related-work discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Page-level LRU.
    Lru,
    /// Uniform random.
    Random,
    /// Least-frequently-used.
    Lfu,
    /// RRIP-FP with the delay enhancement; insertion mode chosen per
    /// application exactly as the paper does (distant + threshold 128 for
    /// type II, long + threshold 0 otherwise).
    Rrip,
    /// CLOCK-Pro with fixed `m_c = 128`.
    ClockPro,
    /// Offline Belady-MIN upper bound.
    Ideal,
    /// HPE with the paper-default configuration.
    Hpe,
}

impl Default for PolicyKind {
    /// HPE — the paper's own policy and the tenant engine's default.
    fn default() -> Self {
        PolicyKind::Hpe
    }
}

impl PolicyKind {
    /// All policy kinds in report order.
    pub const ALL: [PolicyKind; 7] = [
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Lfu,
        PolicyKind::Rrip,
        PolicyKind::ClockPro,
        PolicyKind::Ideal,
        PolicyKind::Hpe,
    ];

    /// Parses a display label case-insensitively ("hpe", "CLOCK-Pro", …).
    pub fn parse(text: &str) -> Option<PolicyKind> {
        PolicyKind::ALL
            .into_iter()
            .find(|k| k.label().eq_ignore_ascii_case(text))
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Random => "Random",
            PolicyKind::Lfu => "LFU",
            PolicyKind::Rrip => "RRIP",
            PolicyKind::ClockPro => "CLOCK-Pro",
            PolicyKind::Ideal => "Ideal",
            PolicyKind::Hpe => "HPE",
        }
    }
}

/// HPE-specific observations extracted after a run.
#[derive(Debug, Clone)]
pub struct HpeReport {
    /// Classification (ratios + category) at first memory-full.
    pub classification: Option<Classification>,
    /// Old-partition size (sets) at first memory-full.
    pub old_sets_at_full: Option<usize>,
    /// `(fault, strategy)` timeline.
    pub timeline: Vec<(u64, StrategyKind)>,
    /// `(fault, jump)` search-point adjustments.
    pub jump_events: Vec<(u64, u32)>,
    /// MRU-C searches performed.
    pub mruc_searches: u64,
    /// Total MRU-C entry comparisons.
    pub mruc_comparisons: u64,
    /// Page sets divided.
    pub divided_sets: u64,
}

impl HpeReport {
    fn from_policy(hpe: &Hpe) -> Self {
        let (mruc_searches, mruc_comparisons) = hpe.mruc_search_overhead();
        HpeReport {
            classification: hpe.classification().copied(),
            old_sets_at_full: hpe.old_sets_at_full(),
            timeline: hpe.strategy_timeline().to_vec(),
            jump_events: hpe.jump_events().to_vec(),
            mruc_searches,
            mruc_comparisons,
            divided_sets: hpe.divided_sets(),
        }
    }
}

/// One experiment's result.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Application abbreviation.
    pub app: &'static str,
    /// Policy label.
    pub policy: &'static str,
    /// Oversubscription rate.
    pub rate: Oversubscription,
    /// Simulator statistics.
    pub stats: SimStats,
    /// HPE-specific extras (None for baselines).
    pub hpe: Option<HpeReport>,
}

/// Recovery knobs applied to a run (chaos campaigns): the driver's
/// retry/backoff policy for lost completion signals and the fallback
/// victim selector used when the eviction policy cannot answer.
///
/// The default (`None` retry, min-page fallback) reproduces the
/// pre-recovery engine behavior exactly, so clean runs are unaffected.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryOptions {
    /// Exponential-backoff retry policy for lost completion signals.
    /// `None` keeps the fault plan's flat retry latency (and its
    /// livelock-to-`Stalled` semantics).
    pub retry: Option<RetryPolicy>,
    /// Victim selector used when the policy cannot produce a victim.
    pub fallback: FallbackVictim,
    /// Runtime invariant sanitizer cadence (events between sweeps).
    /// `None` disables the sanitizer entirely (zero cost).
    pub sanitize: Option<u64>,
    /// Cycle-attribution profiler metrics cadence (cycles between
    /// time-series samples). `None` disables the profiler entirely (zero
    /// cost); `Some` attaches it, which is observation-only — the run's
    /// [`SimStats`] stay byte-identical.
    pub profile: Option<u64>,
}

/// The RRIP configuration the paper assigns to `app` (Section V-B).
pub fn rrip_config_for(app: &App) -> RripConfig {
    if app.pattern() == PatternType::Thrashing {
        RripConfig::for_thrashing()
    } else {
        RripConfig::default()
    }
}

/// Runs `app` under `kind` at `rate` using simulator configuration `cfg`.
///
/// # Errors
///
/// Returns [`SimError`] if `cfg` is invalid or the run cannot complete
/// soundly.
pub fn run_policy(
    cfg: &SimConfig,
    app: &App,
    rate: Oversubscription,
    kind: PolicyKind,
) -> Result<RunResult, SimError> {
    run_policy_with_plan(cfg, app, rate, kind, None)
}

/// Like [`run_policy`], with an optional fault-injection plan applied to
/// the run (chaos campaigns).
///
/// # Errors
///
/// Returns [`SimError`] if `cfg` or the plan is invalid, or the run cannot
/// complete soundly — an injected unbounded livelock surfaces here as
/// [`SimError::Stalled`].
pub fn run_policy_with_plan(
    cfg: &SimConfig,
    app: &App,
    rate: Oversubscription,
    kind: PolicyKind,
    plan: Option<&FaultPlan>,
) -> Result<RunResult, SimError> {
    run_policy_recovering(cfg, app, rate, kind, plan, RecoveryOptions::default())
}

/// Like [`run_policy_with_plan`], with explicit [`RecoveryOptions`]
/// (driver retry/backoff and fallback victim selection).
///
/// # Errors
///
/// Returns [`SimError`] if any configuration is invalid or the run cannot
/// complete soundly. With a retry policy set, an unbounded injected
/// livelock surfaces as [`SimError::RetriesExhausted`] instead of
/// [`SimError::Stalled`].
pub fn run_policy_recovering(
    cfg: &SimConfig,
    app: &App,
    rate: Oversubscription,
    kind: PolicyKind,
    plan: Option<&FaultPlan>,
    recovery: RecoveryOptions,
) -> Result<RunResult, SimError> {
    run_policy_inner(cfg, app, rate, kind, plan, recovery).map(|(result, _)| result)
}

/// Runs `app` under `kind` at `rate` with the cycle-attribution profiler
/// attached, returning both the (byte-identical) result and the
/// [`ProfileReport`]: per-account cycle breakdown, fault-lifecycle span
/// histograms, and the metrics time series sampled every `cadence`
/// cycles.
///
/// # Errors
///
/// Returns [`SimError`] if `cfg` is invalid or the run cannot complete
/// soundly.
pub fn run_policy_profiled(
    cfg: &SimConfig,
    app: &App,
    rate: Oversubscription,
    kind: PolicyKind,
    cadence: u64,
) -> Result<(RunResult, ProfileReport), SimError> {
    let recovery = RecoveryOptions {
        profile: Some(cadence),
        ..RecoveryOptions::default()
    };
    let (result, profile) = run_policy_inner(cfg, app, rate, kind, None, recovery)?;
    Ok((result, profile.expect("profiler was attached")))
}

fn run_policy_inner(
    cfg: &SimConfig,
    app: &App,
    rate: Oversubscription,
    kind: PolicyKind,
    plan: Option<&FaultPlan>,
    recovery: RecoveryOptions,
) -> Result<(RunResult, Option<ProfileReport>), SimError> {
    let trace = trace_for(cfg, app);
    let capacity = rate.capacity_pages(app.footprint_pages());
    let rec = recovery;
    let (stats, hpe, profile) = match kind {
        PolicyKind::Lru => {
            let (s, p) = run_sim(cfg, &trace, Lru::new(), capacity, plan, rec)?;
            (s, None, p)
        }
        PolicyKind::Random => {
            let (s, p) = run_sim(
                cfg,
                &trace,
                RandomPolicy::seeded(app.seed()),
                capacity,
                plan,
                rec,
            )?;
            (s, None, p)
        }
        PolicyKind::Lfu => {
            let (s, p) = run_sim(cfg, &trace, Lfu::new(), capacity, plan, rec)?;
            (s, None, p)
        }
        PolicyKind::Rrip => {
            let (s, p) = run_sim(
                cfg,
                &trace,
                Rrip::new(rrip_config_for(app)),
                capacity,
                plan,
                rec,
            )?;
            (s, None, p)
        }
        PolicyKind::ClockPro => {
            let (s, p) = run_sim(
                cfg,
                &trace,
                ClockPro::new(ClockProConfig::default()),
                capacity,
                plan,
                rec,
            )?;
            (s, None, p)
        }
        PolicyKind::Ideal => {
            let (s, p) = run_sim(cfg, &trace, ideal_for(&trace), capacity, plan, rec)?;
            (s, None, p)
        }
        PolicyKind::Hpe => {
            let hpe = Hpe::new(HpeConfig::from_sim(cfg))?;
            let mut sim = Simulation::new(cfg.clone(), &trace, hpe, capacity)?;
            configure(&mut sim, plan, rec)?;
            let outcome = sim.run()?;
            let report = HpeReport::from_policy(&outcome.policy);
            (outcome.stats, Some(report), outcome.profile)
        }
    };
    Ok((
        RunResult {
            app: app.abbr(),
            policy: kind.label(),
            rate,
            stats,
            hpe,
        },
        profile,
    ))
}

fn configure<P: EvictionPolicy>(
    sim: &mut Simulation<P>,
    plan: Option<&FaultPlan>,
    recovery: RecoveryOptions,
) -> Result<(), SimError> {
    if let Some(p) = plan {
        sim.set_fault_plan(p.clone())?;
    }
    if let Some(rp) = recovery.retry {
        sim.set_retry_policy(rp)?;
    }
    sim.set_fallback_victim(recovery.fallback);
    if let Some(cadence) = recovery.sanitize {
        sim.set_sanitizer(Sanitizer::new(cadence));
    }
    if let Some(cadence) = recovery.profile {
        sim.set_profiler(Profiler::new(ProfileConfig::new(cadence)));
    }
    Ok(())
}

/// Runs `app` under a *custom* HPE configuration (sensitivity studies).
///
/// # Errors
///
/// Returns [`SimError`] if either configuration is invalid or the run
/// cannot complete soundly.
pub fn run_hpe_with(
    cfg: &SimConfig,
    app: &App,
    rate: Oversubscription,
    hpe_cfg: HpeConfig,
) -> Result<RunResult, SimError> {
    run_hpe_with_plan(cfg, app, rate, hpe_cfg, None)
}

/// Like [`run_hpe_with`], with an optional fault-injection plan — the
/// tenant engine uses this to run a shared-HIR (scaled-geometry) tenant
/// with a fault plan scoped to it.
///
/// # Errors
///
/// Returns [`SimError`] if either configuration or the plan is invalid,
/// or the run cannot complete soundly.
pub fn run_hpe_with_plan(
    cfg: &SimConfig,
    app: &App,
    rate: Oversubscription,
    hpe_cfg: HpeConfig,
    plan: Option<&FaultPlan>,
) -> Result<RunResult, SimError> {
    let trace = trace_for(cfg, app);
    let capacity = rate.capacity_pages(app.footprint_pages());
    let hpe = Hpe::new(hpe_cfg)?;
    let mut sim = Simulation::new(cfg.clone(), &trace, hpe, capacity)?;
    if let Some(p) = plan {
        sim.set_fault_plan(p.clone())?;
    }
    let outcome = sim.run()?;
    let report = HpeReport::from_policy(&outcome.policy);
    Ok(RunResult {
        app: app.abbr(),
        policy: "HPE",
        rate,
        stats: outcome.stats,
        hpe: Some(report),
    })
}

/// Cycle-window width used by [`run_policy_traced`]'s cycle-keyed series
/// (≈ 9 fault services on the Table I timing).
pub const TRACE_CYCLE_WINDOW: u64 = 1 << 18;

/// Everything the standard trace sinks collected during one
/// [`run_policy_traced`] run.
#[derive(Debug)]
pub struct TraceCapture {
    /// Event totals by kind.
    pub counters: EventCounters,
    /// Series bucketed by the policy interval clock (`cfg.interval_len`
    /// faults per window).
    pub by_fault: IntervalCollector,
    /// Series bucketed by [`TRACE_CYCLE_WINDOW`] simulated cycles.
    pub by_cycle: IntervalCollector,
    /// Distribution histograms.
    pub histograms: TraceHistograms,
    /// The full event log, in simulated-time order.
    pub log: EventLog,
}

impl TraceCapture {
    /// The capture as one JSON document (counters + both interval series
    /// + histograms; the raw log is exported separately as JSONL).
    pub fn summary_json(&self) -> Json {
        json!({
            "counters": self.counters,
            "intervals_by_fault": self.by_fault.to_json(),
            "intervals_by_cycle": self.by_cycle.to_json(),
            "histograms": self.histograms.to_json(),
        })
    }
}

/// Runs `app` under `kind` at `rate` with the full trace-sink stack
/// attached: counters, fault- and cycle-keyed interval series,
/// histograms, and a complete event log.
///
/// Baselines are wrapped in [`Traced`] so their victim selections are
/// observable; HPE emits its native decision events. Tracing is purely
/// observational — `RunResult.stats` is identical to [`run_policy`]'s.
///
/// # Errors
///
/// Returns [`SimError`] if `cfg` is invalid or the run cannot complete
/// soundly.
pub fn run_policy_traced(
    cfg: &SimConfig,
    app: &App,
    rate: Oversubscription,
    kind: PolicyKind,
) -> Result<(RunResult, TraceCapture), SimError> {
    let trace = trace_for(cfg, app);
    let capacity = rate.capacity_pages(app.footprint_pages());

    let counters = Rc::new(RefCell::new(EventCounters::default()));
    let by_fault = Rc::new(RefCell::new(IntervalCollector::new(IntervalKey::Faults(
        u64::from(cfg.interval_len),
    ))));
    let by_cycle = Rc::new(RefCell::new(IntervalCollector::new(IntervalKey::Cycles(
        TRACE_CYCLE_WINDOW,
    ))));
    let histograms = Rc::new(RefCell::new(TraceHistograms::new()));
    let log = Rc::new(RefCell::new(EventLog::new()));
    let mut multi = MultiObserver::new();
    multi.push(counters.clone());
    multi.push(by_fault.clone());
    multi.push(by_cycle.clone());
    multi.push(histograms.clone());
    multi.push(log.clone());
    let observer: Rc<RefCell<dyn SimObserver>> = Rc::new(RefCell::new(multi));

    let run_traced = |policy: Box<dyn EvictionPolicy>| -> Result<SimStats, SimError> {
        let mut sim = Simulation::new(cfg.clone(), &trace, Traced::new(policy), capacity)?;
        sim.set_observer(observer.clone());
        Ok(sim.run()?.stats)
    };
    let (stats, hpe) = match kind {
        PolicyKind::Lru => (run_traced(Box::new(Lru::new()))?, None),
        PolicyKind::Random => (
            run_traced(Box::new(RandomPolicy::seeded(app.seed())))?,
            None,
        ),
        PolicyKind::Lfu => (run_traced(Box::new(Lfu::new()))?, None),
        PolicyKind::Rrip => (run_traced(Box::new(Rrip::new(rrip_config_for(app))))?, None),
        PolicyKind::ClockPro => (
            run_traced(Box::new(ClockPro::new(ClockProConfig::default())))?,
            None,
        ),
        PolicyKind::Ideal => (run_traced(Box::new(ideal_for(&trace)))?, None),
        PolicyKind::Hpe => {
            let hpe = Hpe::new(HpeConfig::from_sim(cfg))?;
            let mut sim = Simulation::new(cfg.clone(), &trace, hpe, capacity)?;
            sim.set_observer(observer.clone());
            let outcome = sim.run()?;
            let report = HpeReport::from_policy(&outcome.policy);
            (outcome.stats, Some(report))
        }
    };

    // The simulation was consumed above, releasing its observer handle;
    // dropping ours releases the MultiObserver's clones of each sink.
    drop(observer);
    fn take<T>(rc: Rc<RefCell<T>>) -> T {
        match Rc::try_unwrap(rc) {
            Ok(cell) => cell.into_inner(),
            Err(_) => panic!("sink uniquely owned after the run"),
        }
    }
    let capture = TraceCapture {
        counters: take(counters),
        by_fault: take(by_fault),
        by_cycle: take(by_cycle),
        histograms: take(histograms),
        log: take(log),
    };
    let result = RunResult {
        app: app.abbr(),
        policy: kind.label(),
        rate,
        stats,
        hpe,
    };
    Ok((result, capture))
}

fn run_sim<P: EvictionPolicy>(
    cfg: &SimConfig,
    trace: &uvm_workloads::Trace,
    policy: P,
    capacity: u64,
    plan: Option<&FaultPlan>,
    recovery: RecoveryOptions,
) -> Result<(SimStats, Option<ProfileReport>), SimError> {
    let mut sim = Simulation::new(cfg.clone(), trace, policy, capacity)?;
    configure(&mut sim, plan, recovery)?;
    let outcome = sim.run()?;
    Ok((outcome.stats, outcome.profile))
}

/// The strategy the paper manually assigns per application for the
/// sensitivity studies (applications that run LRU for their entire
/// execution per Section V-C vs. the MRU-C ones).
pub fn manual_strategy_for(app: &App) -> StrategyKind {
    match app.abbr() {
        "KMN" | "NW" | "B+T" | "HYB" | "SPV" | "MVT" | "HWL" => StrategyKind::Lru,
        _ => StrategyKind::MruC,
    }
}
