//! Plain-text tables and JSON series for the figure/table benches.
//!
//! Every bench prints a human-readable table mirroring the paper's figure
//! and saves the same series as JSON under `target/paper-results/` so runs
//! are diffable.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are displayed as given).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:<width$}  ", c, width = widths[i]);
            }
            let _ = writeln!(out, "{}", s.trim_end());
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 3 decimals ("1.342").
pub fn f3(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.3}")
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    if x.is_infinite() {
        "inf".to_string()
    } else {
        format!("{x:.2}")
    }
}

/// Geometric mean (ignores non-positive values, which would poison it).
pub fn geomean(xs: &[f64]) -> f64 {
    let vals: Vec<f64> = xs.iter().copied().filter(|&x| x > 0.0).collect();
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|x| x.ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Directory where benches drop their JSON series.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/paper-results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Saves a JSON-serializable value as `target/paper-results/<name>.json`.
pub fn save_json<T: uvm_util::ToJson>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = value.to_json().pretty();
    if let Err(e) = fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[saved {}]", path.display());
    }
}

/// Directory where event traces (JSONL) are dropped:
/// `target/paper-results/traces/`.
pub fn traces_dir() -> PathBuf {
    let dir = results_dir().join("traces");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes `events` as JSONL to `path` (one compact object per line).
/// The output is byte-identical for identical event sequences.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_jsonl(path: &std::path::Path, events: &[uvm_sim::SimEvent]) -> std::io::Result<u64> {
    use std::io::Write as _;
    let file = fs::File::create(path)?;
    let mut writer = uvm_sim::JsonlWriter::new(std::io::BufWriter::new(file));
    for &e in events {
        uvm_sim::SimObserver::on_event(&mut writer, e);
    }
    let lines = writer.lines();
    writer.finish()?.flush()?;
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["app", "value"]);
        t.row(vec!["HSD".into(), "2.81".into()]);
        t.row(vec!["longname".into(), "1".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("HSD"));
        assert!(s.contains("longname"));
        // Header and rows align on the same column width.
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        assert!(lines.len() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        Table::new("x", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(geomean(&[2.0, 8.0]), 4.0);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[0.0, -1.0]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(f64::INFINITY), "inf");
    }
}
