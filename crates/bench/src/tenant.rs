//! Tenant execution engine: runs every admitted tenant of a
//! [`TenantMix`] through the policy zoo on a scoped worker pool and
//! merges the per-tenant results into a deterministic [`TenantReport`].
//!
//! The sim-side tenant layer (`uvm_sim::tenant`) resolves the admission
//! timeline without running a cycle; this module executes it. Each
//! admitted tenant becomes one independent simulation — its capacity is
//! its residency quota, its HIR geometry depends on the mix's
//! [`HirMode`], and a mix-level [`FaultPlan`] is applied **only** to the
//! tenant it is scoped to. Rejected tenants never run: their typed
//! [`uvm_types::SimError::AdmissionRejected`] is recorded on the report
//! row, counted, never a panic.
//!
//! The same three rules as the campaign engine make the merged report
//! byte-identical for any worker count:
//!
//! 1. each tenant run is a pure function of `(SimConfig, admission row,
//!    policy, scoped plan)` — workers share no simulation state,
//! 2. results merge by schedule index, never by arrival order, and
//! 3. the report serializes rows in schedule order with the
//!    deterministic insertion-ordered JSON writer.
//!
//! Tenant state (the per-slot results) is deliberately funneled through
//! the [`MixState`] accessors; the `tenant-isolation` lint rule flags
//! any code in this module that reaches into the slot vector directly,
//! so the blast-radius argument ("one tenant's result cannot clobber
//! another's") stays auditable.
//!
//! Long mixes checkpoint themselves at tenant boundaries: every
//! `snapshot_every` completions the collector writes a
//! [`TenantSnapshot`] (atomic write-then-rename) with every completed
//! row plus the mix fingerprint. A killed run relaunched with `resume`
//! skips the completed tenants; the merged report is byte-identical to
//! an uninterrupted run.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use hpe_core::HpeConfig;
use uvm_sim::{
    schedule, AdmissionOutcome, FaultPlan, HirMode, TenantAdmission, TenantMix, TenantReport,
    TenantSnapshot, TENANT_SNAPSHOT_SCHEMA,
};
use uvm_types::{HirGeometry, Oversubscription, SimConfig, TenantStats};
use uvm_util::{Json, ToJson};
use uvm_workloads::registry;

use crate::runner::{run_hpe_with_plan, run_policy_with_plan, PolicyKind};

/// Default completions between auto-snapshots.
pub const DEFAULT_TENANT_SNAPSHOT_EVERY: usize = 8;

/// A mix-level failure (distinct from per-tenant run failures, which are
/// contained on the tenant's report row).
#[derive(Debug)]
pub enum TenantRunError {
    /// The mix failed validation or the admission ledger caught an
    /// accounting bug.
    Sim(uvm_types::SimError),
    /// A resume snapshot belongs to a different mix.
    SnapshotMismatch {
        /// Fingerprint of the current mix.
        expected: String,
        /// Fingerprint recorded in the snapshot.
        found: String,
    },
    /// A resume snapshot failed to parse or validate.
    SnapshotMalformed(String),
    /// Snapshot I/O failed.
    Io(String),
}

impl fmt::Display for TenantRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantRunError::Sim(e) => e.fmt(f),
            TenantRunError::SnapshotMismatch { expected, found } => write!(
                f,
                "tenant snapshot fingerprint {found} does not match the mix ({expected})"
            ),
            TenantRunError::SnapshotMalformed(m) => write!(f, "malformed tenant snapshot: {m}"),
            TenantRunError::Io(m) => write!(f, "tenant snapshot I/O error: {m}"),
        }
    }
}

impl std::error::Error for TenantRunError {}

impl From<uvm_types::SimError> for TenantRunError {
    fn from(e: uvm_types::SimError) -> Self {
        TenantRunError::Sim(e)
    }
}

impl From<io::Error> for TenantRunError {
    fn from(e: io::Error) -> Self {
        TenantRunError::Io(e.to_string())
    }
}

/// How to run a mix: the policy, the (optionally tenant-scoped) fault
/// plan, and the worker-pool / checkpointing knobs. Pool knobs are never
/// part of the result by construction.
#[derive(Debug, Clone, Default)]
pub struct MixOptions {
    /// Eviction policy every tenant runs under.
    pub policy: PolicyKind,
    /// Fault plan applied to the tenant named by `fault_tenant` (`None`
    /// = fault-free mix).
    pub plan: Option<FaultPlan>,
    /// Report label of the plan ("" = fault-free).
    pub plan_name: String,
    /// Tenant id the plan is scoped to. A plan with no target is a spec
    /// error ([`TenantRunError::Sim`]), not a silent broadcast — the
    /// whole point of the tenant layer is that faults have an owner.
    pub fault_tenant: Option<u64>,
    /// Worker threads (0 and 1 both mean one worker).
    pub workers: usize,
    /// Auto-snapshot file. `None` disables checkpointing.
    pub snapshot_path: Option<PathBuf>,
    /// Completions between auto-snapshots
    /// (0 = [`DEFAULT_TENANT_SNAPSHOT_EVERY`]).
    pub snapshot_every: usize,
    /// Resume from `snapshot_path` if it exists (fingerprint-checked).
    pub resume: bool,
}

/// Per-slot tenant results, private to the collector. Every read and
/// write of the slot vector goes through these accessors — the
/// `tenant-isolation` lint rule flags direct `.slots` access anywhere
/// else, which keeps the "one tenant per slot, no cross-tenant writes"
/// argument auditable.
struct MixState {
    slots: Vec<Option<TenantStats>>,
}

impl MixState {
    fn new(total: usize) -> Self {
        MixState {
            slots: vec![None; total],
        }
    }

    /// Installs tenant `idx`'s result. Scoped: a slot belongs to exactly
    /// one tenant and is written exactly once.
    fn record(&mut self, idx: usize, row: TenantStats) {
        debug_assert!(self.slots[idx].is_none(), "tenant slot {idx} written twice");
        self.slots[idx] = Some(row);
    }

    /// Whether tenant `idx` already has a result (resume prefill).
    fn is_done(&self, idx: usize) -> bool {
        self.slots.get(idx).is_some_and(Option::is_some)
    }

    /// Completed rows in schedule order (skips pending slots).
    fn completed(&self) -> Vec<TenantStats> {
        self.slots.iter().flatten().cloned().collect()
    }

    fn total(&self) -> usize {
        self.slots.len()
    }
}

/// Runs one tenant's admission row to a report row. Pure: same row +
/// same options → same `TenantStats`, which is what makes the merged
/// report order-independent.
fn execute_tenant(
    cfg: &SimConfig,
    adm: &TenantAdmission,
    hir_mode: HirMode,
    policy: PolicyKind,
    plan: Option<&FaultPlan>,
    fault_tenant: Option<u64>,
) -> TenantStats {
    let spec = &adm.spec;
    let mut row = TenantStats {
        tenant: uvm_types::TenantId(spec.id),
        app: spec.app.clone(),
        quota_pages: spec.quota_pages,
        arrival: spec.arrival,
        admitted: adm.admitted_at,
        admission: adm.outcome.label().to_string(),
        ..TenantStats::default()
    };
    if adm.outcome == AdmissionOutcome::Rejected {
        row.error = adm.rejection().map(|e| e.to_string()).unwrap_or_default();
        return row;
    }
    let Some(app) = registry::by_abbr(&spec.app) else {
        // `TenantMix::validate` already rejected unknown apps; contained
        // anyway so a future code path cannot panic the mix.
        row.error = format!("unknown app '{}'", spec.app);
        return row;
    };
    let fraction =
        (spec.quota_pages as f64 / app.footprint_pages() as f64).clamp(f64::MIN_POSITIVE, 1.0);
    let rate = Oversubscription::Custom(fraction);
    let tenant_plan = match fault_tenant {
        Some(id) if id == spec.id => plan,
        _ => None,
    };
    let outcome = match (policy, hir_mode) {
        (PolicyKind::Hpe, HirMode::Shared) => {
            let mut hpe_cfg = HpeConfig::from_sim(cfg);
            hpe_cfg.hir = shared_hir_geometry(hpe_cfg.hir, adm.concurrent);
            run_hpe_with_plan(cfg, app, rate, hpe_cfg, tenant_plan)
        }
        _ => run_policy_with_plan(cfg, app, rate, policy, tenant_plan),
    };
    match outcome {
        Ok(r) => {
            row.ok = true;
            row.stats = r.stats;
        }
        Err(e) => {
            // Contained: the failure stays on this tenant's row.
            row.error = e.to_string();
        }
    }
    row
}

/// The shared-mode HIR geometry for a tenant admitted with `concurrent`
/// active leases: the set budget is divided by the lease concurrency
/// (contract-derived at admission, so deterministic and
/// containment-safe), floored at one set, keeping the way count so the
/// geometry still validates.
pub fn shared_hir_geometry(base: HirGeometry, concurrent: u64) -> HirGeometry {
    let sets = u64::from(base.entries / base.ways);
    let scaled_sets = (sets / concurrent.max(1)).max(1) as u32;
    HirGeometry {
        entries: scaled_sets * base.ways,
        ..base
    }
}

/// Runs the mix serially, in schedule order, with no pool and no
/// snapshots: the reference implementation the parallel-equivalence
/// suite compares the pool against.
///
/// # Errors
///
/// Returns [`TenantRunError`] if the mix is invalid or a plan has no
/// target tenant.
pub fn run_mix_serial(
    cfg: &SimConfig,
    mix: &TenantMix,
    opts: &MixOptions,
) -> Result<TenantReport, TenantRunError> {
    validate_options(mix, opts)?;
    let sched = schedule(mix)?;
    let rows: Vec<TenantStats> = sched
        .admissions
        .iter()
        .map(|adm| {
            execute_tenant(
                cfg,
                adm,
                mix.hir_mode,
                opts.policy,
                opts.plan.as_ref(),
                opts.fault_tenant,
            )
        })
        .collect();
    Ok(assemble_report(
        mix,
        opts,
        &sched.fingerprint,
        sched.rejected,
        sched.delayed,
        rows,
    ))
}

/// Runs the mix on a scoped worker pool: workers pull schedule indices
/// from an atomic cursor and push finished rows to the collector, which
/// merges by index and auto-snapshots at tenant boundaries.
///
/// # Errors
///
/// Returns [`TenantRunError`] if the mix is invalid, a plan has no
/// target tenant, a resume snapshot mismatches, or snapshot I/O fails.
/// Individual tenant failures do **not** abort the mix — they are
/// contained on the tenant's row (`ok = false`).
pub fn run_mix(
    cfg: &SimConfig,
    mix: &TenantMix,
    opts: &MixOptions,
) -> Result<TenantReport, TenantRunError> {
    validate_options(mix, opts)?;
    let sched = schedule(mix)?;
    let fingerprint = sched.fingerprint.clone();
    let total = sched.admissions.len();
    let snapshot_every = if opts.snapshot_every == 0 {
        DEFAULT_TENANT_SNAPSHOT_EVERY
    } else {
        opts.snapshot_every
    };

    // Resume: prefill completed slots from the snapshot, if any.
    let mut state = MixState::new(total);
    if opts.resume {
        if let Some(path) = &opts.snapshot_path {
            if path.exists() {
                let snap = load_snapshot(path)?;
                if snap.fingerprint != fingerprint {
                    return Err(TenantRunError::SnapshotMismatch {
                        expected: fingerprint,
                        found: snap.fingerprint,
                    });
                }
                if snap.total != total as u64 {
                    return Err(TenantRunError::SnapshotMalformed(format!(
                        "snapshot mix size {} != schedule size {total}",
                        snap.total
                    )));
                }
                for row in snap.completed {
                    let Some(idx) = sched
                        .admissions
                        .iter()
                        .position(|a| a.spec.id == row.tenant.0)
                    else {
                        return Err(TenantRunError::SnapshotMalformed(format!(
                            "snapshot row for unknown tenant {}",
                            row.tenant
                        )));
                    };
                    state.record(idx, row);
                }
            }
        }
    }

    let pending: Vec<usize> = (0..total).filter(|&i| !state.is_done(i)).collect();
    let workers = opts.workers.max(1);
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let mut executed = 0usize;
    let mut io_error: Option<TenantRunError> = None;

    thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<(usize, TenantStats)>();
        for _ in 0..workers {
            let tx = tx.clone();
            let (cursor, stop, pending, sched) = (&cursor, &stop, &pending, &sched);
            let opts = &*opts;
            s.spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let slot = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&idx) = pending.get(slot) else {
                    break;
                };
                let row = execute_tenant(
                    cfg,
                    &sched.admissions[idx],
                    mix.hir_mode,
                    opts.policy,
                    opts.plan.as_ref(),
                    opts.fault_tenant,
                );
                if tx.send((idx, row)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        for (idx, row) in rx.iter() {
            state.record(idx, row);
            executed += 1;
            if executed.is_multiple_of(snapshot_every) {
                if let Some(path) = &opts.snapshot_path {
                    if let Err(e) = write_snapshot(path, &fingerprint, &state) {
                        io_error.get_or_insert(e);
                        stop.store(true, Ordering::Relaxed);
                    }
                }
            }
        }
    });

    if let Some(e) = io_error {
        return Err(e);
    }
    if let Some(path) = &opts.snapshot_path {
        write_snapshot(path, &fingerprint, &state)?;
    }
    let rows = state.completed();
    Ok(assemble_report(
        mix,
        opts,
        &fingerprint,
        sched.rejected,
        sched.delayed,
        rows,
    ))
}

fn validate_options(mix: &TenantMix, opts: &MixOptions) -> Result<(), TenantRunError> {
    if let Some(plan) = &opts.plan {
        plan.validate().map_err(uvm_types::SimError::from)?;
        let Some(target) = opts.fault_tenant else {
            return Err(TenantRunError::Sim(uvm_types::SimError::Config(
                uvm_types::ConfigError::invalid(
                    "fault_tenant",
                    "a mix-level fault plan must be scoped to one tenant",
                ),
            )));
        };
        if !mix.resolved_tenants().iter().any(|t| t.id == target) {
            return Err(TenantRunError::Sim(uvm_types::SimError::Config(
                uvm_types::ConfigError::invalid(
                    "fault_tenant",
                    format!("tenant {target} is not part of the mix"),
                ),
            )));
        }
    }
    Ok(())
}

fn assemble_report(
    mix: &TenantMix,
    opts: &MixOptions,
    fingerprint: &str,
    rejected: u64,
    delayed: u64,
    rows: Vec<TenantStats>,
) -> TenantReport {
    let makespan = rows.iter().map(TenantStats::completion).max().unwrap_or(0);
    TenantReport {
        fingerprint: fingerprint.to_string(),
        policy: opts.policy.label().to_string(),
        hir_mode: mix.hir_mode.label().to_string(),
        plan: opts.plan_name.clone(),
        fault_tenant: opts.fault_tenant,
        rejected,
        delayed,
        makespan,
        tenants: rows,
    }
}

fn write_snapshot(path: &Path, fingerprint: &str, state: &MixState) -> Result<(), TenantRunError> {
    let snap = TenantSnapshot {
        schema: TENANT_SNAPSHOT_SCHEMA,
        fingerprint: fingerprint.to_string(),
        total: state.total() as u64,
        completed: state.completed(),
    };
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, snap.to_json().pretty())?;
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads and validates a tenant snapshot (strict: unknown fields are
/// rejected with an actionable message).
///
/// # Errors
///
/// Returns [`TenantRunError::Io`] if the file cannot be read and
/// [`TenantRunError::SnapshotMalformed`] if it fails to parse, has
/// unknown fields, or fails structural validation.
pub fn load_snapshot(path: &Path) -> Result<TenantSnapshot, TenantRunError> {
    let text = fs::read_to_string(path)?;
    let value = Json::parse(&text).map_err(|e| TenantRunError::SnapshotMalformed(e.to_string()))?;
    let snap = TenantSnapshot::from_json_strict(&value)
        .map_err(|e| TenantRunError::SnapshotMalformed(e.to_string()))?;
    snap.validate()
        .map_err(|e| TenantRunError::SnapshotMalformed(e.to_string()))?;
    Ok(snap)
}

// ---------------------------------------------------------------------------
// Containment
// ---------------------------------------------------------------------------

/// Apps the canonical containment mix cycles through — the three
/// smallest-footprint workloads, so the invariant stays cheap enough to
/// evaluate per explore case.
pub const CONTAINMENT_APPS: [&str; 3] = ["STN", "MVT", "CUT"];

/// The canonical mix the explore engine's `containment` invariant runs:
/// `tenants` tenants cycling through [`CONTAINMENT_APPS`], each with a
/// quota of `quota_pct`% of its footprint, arriving 1000 cycles apart.
/// The pool is sized to the quota sum and `max_active` to the tenant
/// count, so every tenant is admitted immediately — a plan scoped to
/// the target can therefore never hide behind an admission change.
pub fn containment_mix(tenants: u64, quota_pct: u64) -> TenantMix {
    let specs: Vec<uvm_sim::TenantSpec> = (0..tenants)
        .map(|i| {
            let abbr = CONTAINMENT_APPS[(i as usize) % CONTAINMENT_APPS.len()];
            let quota = registry::by_abbr(abbr)
                .map(|a| a.footprint_pages() * quota_pct / 100)
                .unwrap_or(0);
            uvm_sim::TenantSpec {
                id: i,
                app: abbr.to_string(),
                quota_pages: quota,
                arrival: i * 1_000,
                ..uvm_sim::TenantSpec::default()
            }
        })
        .collect();
    let pool = specs.iter().map(|t| t.quota_pages).sum::<u64>().max(1);
    let mut mix = TenantMix {
        pool_pages: pool,
        tenants: specs,
        ..TenantMix::default()
    };
    mix.admission.max_active = tenants.max(1);
    mix
}

/// Verifies blast-radius containment for a faulted mix run: every
/// tenant other than `faulted.fault_tenant` must have a row
/// byte-identical to its fault-free `baseline` counterpart.
///
/// Returns the first leaking tenant as an error message, or `Ok(())`.
///
/// # Errors
///
/// Returns a human-readable description of the first containment
/// violation: a missing counterpart row or a non-target tenant whose
/// statistics differ from its fault-free run.
pub fn check_containment(baseline: &TenantReport, faulted: &TenantReport) -> Result<(), String> {
    let Some(target) = faulted.fault_tenant else {
        return Err("faulted report has no fault_tenant; nothing to contain".to_string());
    };
    if baseline.fingerprint != faulted.fingerprint {
        return Err(format!(
            "reports come from different mixes ({} vs {})",
            baseline.fingerprint, faulted.fingerprint
        ));
    }
    for row in &faulted.tenants {
        if row.tenant.0 == target {
            continue;
        }
        let Some(base) = baseline.tenants.iter().find(|b| b.tenant == row.tenant) else {
            return Err(format!(
                "tenant {} missing from the fault-free baseline",
                row.tenant
            ));
        };
        let got = row.to_json().to_string();
        let want = base.to_json().to_string();
        if got != want {
            return Err(format!(
                "fault scoped to T{target} leaked into tenant {}: stats differ from the \
                 fault-free run",
                row.tenant
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Fairness grid
// ---------------------------------------------------------------------------

/// HIR shrink factor for the fairness grid, in the spirit of the TLB
/// scaling of [`SimConfig::scaled_default`](uvm_types::SimConfig):
/// 1024 entries → 64 (8 sets × 8 ways, covering 1024 pages), sized to
/// the reproduction's 768–2560-page footprints so the per-tenant vs
/// shared division actually contends the structure (at paper geometry
/// even a four-way-divided HIR never conflicts at these footprints and
/// the two modes coincide byte-for-byte).
pub const FAIRNESS_HIR_SCALE: u32 = 16;

/// One fairness-grid row: a mix × HIR-mode cell summarized by the two
/// metrics the fairness-vs-throughput trade-off is judged on.
#[derive(Debug, Clone)]
pub struct FairnessRow {
    /// Mix label (comma-joined app abbreviations).
    pub mix: String,
    /// Per-tenant quota percentage of footprint (the oversubscription
    /// rate of the row).
    pub quota_pct: u64,
    /// HIR sharing mode label.
    pub hir_mode: String,
    /// p99 of per-tenant queueing-inflated slowdown.
    pub p99_slowdown: f64,
    /// Execution-cycle ratio of the tenant most affected by HIR
    /// sharing, relative to the same mix under per-tenant HIR (1.0 for
    /// per-tenant rows by construction). Deviations go both ways at
    /// reproduction scale, so the farthest-from-1.0 ratio is reported:
    /// the noisy-neighbor effect on performance predictability.
    pub hir_impact: f64,
    /// Aggregate instructions per kilocycle of makespan.
    pub throughput: f64,
    /// Tenants shed by admission control.
    pub rejected: u64,
    /// Tenants admitted late.
    pub delayed: u64,
}

/// Runs the fairness grid: for each app mix and quota percentage, one
/// fault-free mix run under each HIR mode, summarized as
/// [`FairnessRow`]s (mix-major, then quota, then per-tenant before
/// shared — deterministic order).
///
/// The pool is sized to the sum of the quotas so all tenants run
/// concurrently — [`TenantMix::uniform`]'s max-quota pool would
/// serialize the leases, leaving every tenant's HIR undivided and the
/// two HIR modes trivially identical.
///
/// The HIR is shrunk by [`FAIRNESS_HIR_SCALE`] for the same reason the
/// scaled reproduction shrinks its TLBs: at reproduction-scale
/// footprints (768–2560 pages, 48–160 page-set tags) the paper's
/// 1024-entry HIR never fills, so dividing it between tenants would be
/// a behavioral no-op and both HIR modes would coincide.
///
/// # Errors
///
/// Returns [`TenantRunError`] if any mix is invalid.
pub fn fairness_grid(
    cfg: &SimConfig,
    mixes: &[Vec<&str>],
    quota_pcts: &[u64],
    seed: u64,
    workers: usize,
) -> Result<Vec<FairnessRow>, TenantRunError> {
    let mut cfg = cfg.clone();
    cfg.hir.entries = (cfg.hir.entries / FAIRNESS_HIR_SCALE).max(cfg.hir.ways);
    let cfg = &cfg;
    let mut rows = Vec::new();
    for apps in mixes {
        for &pct in quota_pcts {
            // Per-tenant first: the shared row's HIR penalty is measured
            // against it.
            let mut baseline: Option<TenantReport> = None;
            for hir_mode in [HirMode::PerTenant, HirMode::Shared] {
                let mut mix = TenantMix::uniform(apps, pct, 1_000, seed);
                mix.pool_pages = mix
                    .tenants
                    .iter()
                    .map(|t| t.quota_pages)
                    .sum::<u64>()
                    .max(1);
                mix.admission.max_active = mix.tenants.len().max(1) as u64;
                mix.hir_mode = hir_mode;
                let opts = MixOptions {
                    workers,
                    ..MixOptions::default()
                };
                let report = run_mix(cfg, &mix, &opts)?;
                rows.push(FairnessRow {
                    mix: apps.join(","),
                    quota_pct: pct,
                    hir_mode: hir_mode.label().to_string(),
                    p99_slowdown: report.p99_slowdown(),
                    hir_impact: hir_impact(baseline.as_ref(), &report),
                    throughput: report.throughput(),
                    rejected: report.rejected,
                    delayed: report.delayed,
                });
                if hir_mode == HirMode::PerTenant {
                    baseline = Some(report);
                }
            }
        }
    }
    Ok(rows)
}

/// Cycle ratio of the tenant most affected by the HIR mode: `report`'s
/// per-tenant cycles over the per-tenant-HIR `baseline`'s, picking the
/// ratio farthest from 1.0 (1.0 when `baseline` is `None` — the
/// baseline row itself — or when no tenant pair ran in both). Ratios
/// below 1.0 are real: conflict-evicted HIR records bias the policy
/// toward recency, which occasionally wins at reproduction scale — the
/// point is that a shared structure makes a tenant's performance depend
/// on its neighbors, in either direction.
fn hir_impact(baseline: Option<&TenantReport>, report: &TenantReport) -> f64 {
    let Some(base) = baseline else { return 1.0 };
    base.tenants
        .iter()
        .zip(&report.tenants)
        .filter(|(b, r)| b.tenant == r.tenant && b.stats.cycles > 0 && r.stats.cycles > 0)
        .map(|(b, r)| r.stats.cycles as f64 / b.stats.cycles as f64)
        .reduce(|a, b| {
            if (b.ln()).abs() > (a.ln()).abs() {
                b
            } else {
                a
            }
        })
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_config;

    fn small_mix() -> TenantMix {
        TenantMix::uniform(&["STN", "MVT"], 75, 1_000, 7)
    }

    #[test]
    fn serial_mix_runs_every_tenant() {
        let cfg = bench_config();
        let report = run_mix_serial(&cfg, &small_mix(), &MixOptions::default()).unwrap();
        assert_eq!(report.tenants.len(), 2);
        assert!(report.tenants.iter().all(|t| t.ok), "{report:?}");
        assert!(report.makespan > 0);
        assert!(report.p99_slowdown() >= 1.0);
        assert!(report.throughput() > 0.0);
    }

    #[test]
    fn pool_matches_serial_byte_identically() {
        let cfg = bench_config();
        let mix = small_mix();
        let serial = run_mix_serial(&cfg, &mix, &MixOptions::default()).unwrap();
        for workers in [1usize, 2, 8] {
            let opts = MixOptions {
                workers,
                ..MixOptions::default()
            };
            let pooled = run_mix(&cfg, &mix, &opts).unwrap();
            assert_eq!(
                pooled.to_json().to_string(),
                serial.to_json().to_string(),
                "worker count {workers} changed the merged report"
            );
        }
    }

    #[test]
    fn unscoped_plan_is_a_typed_error() {
        let cfg = bench_config();
        let opts = MixOptions {
            plan: Some(FaultPlan::latency_storm(3)),
            plan_name: "latency-storm".to_string(),
            ..MixOptions::default()
        };
        let err = run_mix_serial(&cfg, &small_mix(), &opts).unwrap_err();
        assert!(err.to_string().contains("fault_tenant"), "{err}");
        let opts = MixOptions {
            plan: Some(FaultPlan::latency_storm(3)),
            fault_tenant: Some(99),
            ..MixOptions::default()
        };
        let err = run_mix_serial(&cfg, &small_mix(), &opts).unwrap_err();
        assert!(err.to_string().contains("not part of the mix"), "{err}");
    }

    #[test]
    fn scoped_fault_degrades_only_the_target_tenant() {
        let cfg = bench_config();
        let mix = small_mix();
        let baseline = run_mix_serial(&cfg, &mix, &MixOptions::default()).unwrap();
        let opts = MixOptions {
            plan: Some(FaultPlan::latency_storm(3)),
            plan_name: "latency-storm".to_string(),
            fault_tenant: Some(0),
            ..MixOptions::default()
        };
        let faulted = run_mix_serial(&cfg, &mix, &opts).unwrap();
        check_containment(&baseline, &faulted).unwrap();
        // The targeted tenant did change (the plan is not a no-op).
        let base0 = &baseline.tenants[0];
        let fault0 = &faulted.tenants[0];
        assert_eq!(base0.tenant.0, 0);
        assert_ne!(
            base0.stats.to_json().to_string(),
            fault0.stats.to_json().to_string(),
            "latency storm left the target tenant untouched"
        );
    }

    #[test]
    fn containment_detects_a_leak() {
        let cfg = bench_config();
        let mix = small_mix();
        let baseline = run_mix_serial(&cfg, &mix, &MixOptions::default()).unwrap();
        let mut faulted = baseline.clone();
        faulted.fault_tenant = Some(0);
        faulted.tenants[1].stats.cycles += 1; // simulate a leak
        let err = check_containment(&baseline, &faulted).unwrap_err();
        assert!(err.contains("leaked into tenant T1"), "{err}");
    }

    #[test]
    fn shared_hir_geometry_scales_sets_not_ways() {
        let base = HirGeometry::paper_default();
        let g1 = shared_hir_geometry(base, 1);
        assert_eq!(g1, base);
        let g2 = shared_hir_geometry(base, 2);
        assert_eq!(g2.ways, base.ways);
        assert_eq!(g2.entries, base.entries / 2);
        g2.validate().unwrap();
        // Floor at one set even for absurd concurrency.
        let g_many = shared_hir_geometry(base, 10_000);
        assert_eq!(g_many.entries, base.ways);
        g_many.validate().unwrap();
    }

    #[test]
    fn shared_mode_changes_hpe_results() {
        let cfg = bench_config();
        let mut per_tenant = small_mix();
        per_tenant.hir_mode = HirMode::PerTenant;
        let mut shared = small_mix();
        shared.hir_mode = HirMode::Shared;
        let a = run_mix_serial(&cfg, &per_tenant, &MixOptions::default()).unwrap();
        let b = run_mix_serial(&cfg, &shared, &MixOptions::default()).unwrap();
        assert_eq!(a.hir_mode, "per-tenant");
        assert_eq!(b.hir_mode, "shared");
        // Tenant 0 is admitted alone (concurrent = 1) so its geometry is
        // unscaled either way; the reports differ at most on tenant 1.
        assert_eq!(
            a.tenants[0].stats.to_json().to_string(),
            b.tenants[0].stats.to_json().to_string()
        );
    }

    #[test]
    fn fairness_grid_rows_are_ordered_and_baseline_normalized() {
        let cfg = bench_config();
        let mixes = vec![vec!["STN", "MVT"]];
        let rows = fairness_grid(&cfg, &mixes, &[75], 7, 0).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].hir_mode, "per-tenant");
        assert_eq!(rows[1].hir_mode, "shared");
        // The per-tenant row is its own baseline.
        assert_eq!(rows[0].hir_impact, 1.0);
        assert!(rows[1].hir_impact > 0.0);
        for r in &rows {
            assert_eq!(r.mix, "STN,MVT");
            assert_eq!(r.quota_pct, 75);
            assert!(r.throughput > 0.0, "{r:?}");
            assert_eq!(r.rejected + r.delayed, 0, "{r:?}");
        }
    }

    #[test]
    fn snapshot_resume_is_byte_identical() {
        let cfg = bench_config();
        let mix = TenantMix::uniform(&["STN", "MVT", "CUT"], 75, 1_000, 7);
        let dir = std::env::temp_dir().join("hpe-tenant-snapshot-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let _ = fs::remove_file(&path);

        let straight = run_mix_serial(&cfg, &mix, &MixOptions::default()).unwrap();

        // First pass: snapshot after every tenant, then truncate the
        // snapshot to one completed row to simulate a mid-mix kill.
        let opts = MixOptions {
            snapshot_path: Some(path.clone()),
            snapshot_every: 1,
            ..MixOptions::default()
        };
        run_mix(&cfg, &mix, &opts).unwrap();
        let mut snap = load_snapshot(&path).unwrap();
        snap.completed.truncate(1);
        fs::write(&path, snap.to_json().pretty()).unwrap();

        // Resume completes the remaining tenants; the merged report is
        // byte-identical to the uninterrupted run.
        let opts = MixOptions {
            snapshot_path: Some(path.clone()),
            resume: true,
            ..MixOptions::default()
        };
        let resumed = run_mix(&cfg, &mix, &opts).unwrap();
        assert_eq!(
            resumed.to_json().to_string(),
            straight.to_json().to_string()
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn snapshot_fingerprint_mismatch_is_refused() {
        let cfg = bench_config();
        let mix = small_mix();
        let dir = std::env::temp_dir().join("hpe-tenant-snapshot-mismatch");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let opts = MixOptions {
            snapshot_path: Some(path.clone()),
            ..MixOptions::default()
        };
        run_mix(&cfg, &mix, &opts).unwrap();
        let mut other = small_mix();
        other.seed = 99;
        let opts = MixOptions {
            snapshot_path: Some(path.clone()),
            resume: true,
            ..MixOptions::default()
        };
        let err = run_mix(&cfg, &other, &opts).unwrap_err();
        assert!(
            matches!(err, TenantRunError::SnapshotMismatch { .. }),
            "{err}"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rejected_tenants_are_counted_not_run() {
        let cfg = bench_config();
        let mut mix = small_mix();
        mix.tenants[1].quota_pages = mix.pool_pages * 2; // can never fit
        let report = run_mix_serial(&cfg, &mix, &MixOptions::default()).unwrap();
        assert_eq!(report.rejected, 1);
        let row = &report.tenants[1];
        assert_eq!(row.admission, "rejected");
        assert!(!row.ok);
        assert!(row.error.contains("rejected at admission"), "{}", row.error);
        assert_eq!(row.stats.cycles, 0, "rejected tenant must not run");
    }
}
