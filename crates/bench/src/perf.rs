//! The pinned perf trajectory: `BENCH_*.json` snapshots and the
//! tolerance-based regression gate.
//!
//! Each snapshot records two kinds of numbers:
//!
//! * **Simulation metrics** — per-policy geomean slowdowns versus the
//!   offline Ideal (Belady-MIN) policy at both studied oversubscription
//!   rates, over the full 23-app grid. These are *deterministic*: any
//!   drift between snapshots means simulator or policy behavior changed,
//!   so the gate's tolerance is tight ([`SIM_TOLERANCE`]).
//! * **Wall-clocks** — median ns per run of pinned hot-path routines,
//!   measured with [`uvm_util::bench::Criterion::measure`]. These are
//!   noisy on shared CI hardware, so the tolerance is loose
//!   ([`WALL_TOLERANCE`]) and the gate is env-gated in `verify.sh`
//!   (`CHECK_BENCH=1`), like `CHECK_FIGURES`.
//!
//! Snapshots live in-repo under `benchmarks/BENCH_NNNN.json`, one per
//! PR (`hpe-lab bench-snapshot`); the gate (`hpe-lab bench-check`)
//! compares a fresh collection against the highest-numbered snapshot and
//! exits 0 (pass, warnings allowed), 1 (regression) or 2 (usage/IO) —
//! the same convention as `hpe-chaos` and `hpe-lint`.

use std::fs;
use std::path::{Path, PathBuf};

use uvm_types::Oversubscription;
use uvm_util::{FromJson, Json};
use uvm_workloads::registry;

use crate::report::geomean;
use crate::runner::{run_policy, PolicyKind};
use crate::{bench_config, campaign};

/// Version tag of the `BENCH_*.json` schema.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Seed recorded in (and used to collect) every snapshot, so two
/// snapshots are comparable by construction.
pub const BENCH_SEED: u64 = 2019;

/// Gate tolerance for the deterministic simulation metrics: fractional
/// increase over baseline at which the verdict turns Warn / Fail.
pub const SIM_TOLERANCE: Tolerance = Tolerance {
    warn: 0.005,
    fail: 0.02,
};

/// Gate tolerance for wall-clock metrics (noisy on shared hardware).
pub const WALL_TOLERANCE: Tolerance = Tolerance {
    warn: 0.50,
    fail: 3.0,
};

/// One policy's geomean slowdowns versus Ideal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicyPerf {
    /// Policy label ("LRU", "HPE", …).
    pub policy: String,
    /// Geomean of `cycles(policy) / cycles(Ideal)` over the app set at
    /// 75% oversubscription.
    pub slowdown_75: f64,
    /// Same at 50% oversubscription.
    pub slowdown_50: f64,
}

uvm_util::impl_json_struct!(PolicyPerf {
    policy = String::new(),
    slowdown_75 = 0.0,
    slowdown_50 = 0.0,
});

/// One pinned hot-path wall-clock measurement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WallClock {
    /// Routine name ("run/STN/HPE/75%", …).
    pub name: String,
    /// Median nanoseconds per run.
    pub median_ns: f64,
}

uvm_util::impl_json_struct!(WallClock {
    name = String::new(),
    median_ns = 0.0,
});

/// One point of the perf trajectory: the `BENCH_NNNN.json` document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchSnapshot {
    /// Schema version ([`BENCH_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Snapshot id ("BENCH_0001").
    pub id: String,
    /// Collection seed.
    pub seed: u64,
    /// Application abbreviations the slowdowns are geomeaned over.
    pub apps: Vec<String>,
    /// Per-policy geomean slowdowns versus Ideal.
    pub policies: Vec<PolicyPerf>,
    /// Pinned hot-path wall-clocks.
    pub wall_clocks: Vec<WallClock>,
}

uvm_util::impl_json_struct!(BenchSnapshot {
    schema = 0,
    id = String::new(),
    seed = 0,
    apps = Vec::new(),
    policies = Vec::new(),
    wall_clocks = Vec::new(),
});

impl BenchSnapshot {
    /// Structural validation beyond JSON well-formedness: schema version,
    /// id shape, non-empty metric sets, finite positive numbers.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "schema {} (expected {BENCH_SCHEMA_VERSION})",
                self.schema
            ));
        }
        if !self.id.starts_with("BENCH_") {
            return Err(format!("id '{}' does not start with BENCH_", self.id));
        }
        if self.apps.is_empty() {
            return Err("empty app set".into());
        }
        if self.policies.is_empty() {
            return Err("empty policy set".into());
        }
        for p in &self.policies {
            for (rate, v) in [("75%", p.slowdown_75), ("50%", p.slowdown_50)] {
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!(
                        "policy {} slowdown at {rate} is {v} (must be finite and positive)",
                        p.policy
                    ));
                }
            }
        }
        for w in &self.wall_clocks {
            if !w.median_ns.is_finite() || w.median_ns <= 0.0 {
                return Err(format!(
                    "wall-clock {} is {} ns (must be finite and positive)",
                    w.name, w.median_ns
                ));
            }
        }
        Ok(())
    }

    /// Parses and validates a snapshot from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a description of the parse or validation failure.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = Json::parse(text).map_err(|e| e.to_string())?;
        let snap = BenchSnapshot::from_json(&value).map_err(|e| e.to_string())?;
        snap.validate()?;
        Ok(snap)
    }

    /// Loads and validates a snapshot file.
    ///
    /// # Errors
    ///
    /// Returns a description of the I/O, parse or validation failure.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// The repo directory holding the pinned perf trajectory
/// (`benchmarks/`), created on first use.
pub fn bench_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Numbered `BENCH_NNNN.json` files in `dir`, sorted ascending by N.
fn snapshot_files(dir: &Path) -> Vec<(u64, PathBuf)> {
    let mut found = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return found;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(num) = name
            .strip_prefix("BENCH_")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            found.push((num, entry.path()));
        }
    }
    found.sort_by_key(|(n, _)| *n);
    found
}

/// The id the next snapshot in `dir` should carry ("BENCH_0001", …).
pub fn next_id(dir: &Path) -> String {
    let next = snapshot_files(dir).last().map_or(1, |(n, _)| n + 1);
    format!("BENCH_{next:04}")
}

/// The highest-numbered snapshot in `dir`, if any.
pub fn latest(dir: &Path) -> Option<PathBuf> {
    snapshot_files(dir).pop().map(|(_, p)| p)
}

/// The policies a snapshot records, versus the Ideal baseline.
fn measured_policies() -> Vec<PolicyKind> {
    PolicyKind::ALL
        .into_iter()
        .filter(|k| *k != PolicyKind::Ideal)
        .collect()
}

/// Collects a fresh snapshot: the clean full-grid campaign for the
/// simulation metrics (run on `workers` threads), plus the pinned
/// wall-clock measurements.
///
/// # Errors
///
/// Returns a description of the failure if the campaign cannot run or
/// any grid cell fails.
pub fn collect(id: &str, workers: usize) -> Result<BenchSnapshot, String> {
    let cfg = bench_config();
    let apps: Vec<String> = registry::all()
        .iter()
        .map(|a| a.abbr().to_string())
        .collect();
    let spec = campaign::CampaignSpec::clean_grid(apps.clone(), BENCH_SEED);
    let pool = campaign::PoolOptions {
        workers,
        ..campaign::PoolOptions::default()
    };
    let outcome = campaign::run_campaign(&cfg, &spec, &pool, None)
        .map_err(|e| format!("bench campaign: {e}"))?;
    let report = outcome
        .report()
        .map_err(|e| format!("bench campaign: {e}"))?;
    if let Some(bad) = report.runs.iter().find(|r| !r.ok) {
        return Err(format!(
            "bench campaign cell {} failed: {}",
            bad.key, bad.error
        ));
    }

    let mut policies = Vec::new();
    for kind in measured_policies() {
        let mut slow = [Vec::new(), Vec::new()];
        for (i, rate) in ["75%", "50%"].iter().enumerate() {
            for app in &apps {
                let key = |p: PolicyKind| campaign::grid_key(app, p.label(), rate, "clean");
                let run = report.find(&key(kind));
                let ideal = report.find(&key(PolicyKind::Ideal));
                if let (Some(run), Some(ideal)) = (run, ideal) {
                    if run.ok && ideal.ok && ideal.stats.cycles > 0 {
                        slow[i].push(run.stats.cycles as f64 / ideal.stats.cycles as f64);
                    }
                }
            }
        }
        policies.push(PolicyPerf {
            policy: kind.label().to_string(),
            slowdown_75: geomean(&slow[0]),
            slowdown_50: geomean(&slow[1]),
        });
    }

    let mut crit = uvm_util::bench::Criterion::default();
    let mut wall_clocks = Vec::new();
    for (name, app, kind) in [
        ("run/STN/HPE/75%", "STN", PolicyKind::Hpe),
        ("run/STN/LRU/75%", "STN", PolicyKind::Lru),
        ("run/SGM/HPE/75%", "SGM", PolicyKind::Hpe),
    ] {
        // lint:allow(panic-reachability) — a broken pin must abort the sweep
        let app = registry::by_abbr(app).expect("pinned app is registered");
        let m = crit.measure(|| {
            // lint:allow(panic-reachability) — a broken pin must abort the sweep
            run_policy(&cfg, app, Oversubscription::Rate75, kind).expect("pinned run completes")
        });
        wall_clocks.push(WallClock {
            name: name.to_string(),
            median_ns: m.median_ns(),
        });
    }

    Ok(BenchSnapshot {
        schema: BENCH_SCHEMA_VERSION,
        id: id.to_string(),
        seed: BENCH_SEED,
        apps,
        policies,
        wall_clocks,
    })
}

// ---------------------------------------------------------------------------
// Tolerance gate
// ---------------------------------------------------------------------------

/// Fractional-increase thresholds of the regression gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Increase over baseline above which the verdict is Warn.
    pub warn: f64,
    /// Increase over baseline above which the verdict is Fail.
    pub fail: f64,
}

/// Outcome of one metric comparison (ordered: Pass < Warn < Fail).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Within the warn tolerance (improvements always pass).
    Pass,
    /// Between the warn and fail tolerances.
    Warn,
    /// Above the fail tolerance, or the metric disappeared.
    Fail,
}

impl Verdict {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "pass",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
        }
    }
}

/// Classifies `current` against `baseline` under `tol`.
///
/// The ratio `current / baseline` passes up to `1 + warn`, warns up to
/// `1 + fail`, and fails above. A non-positive or non-finite baseline or
/// current value fails outright (validation should have caught it).
pub fn verdict(current: f64, baseline: f64, tol: Tolerance) -> Verdict {
    if !baseline.is_finite() || baseline <= 0.0 || !current.is_finite() || current <= 0.0 {
        return Verdict::Fail;
    }
    let ratio = current / baseline;
    if ratio <= 1.0 + tol.warn {
        Verdict::Pass
    } else if ratio <= 1.0 + tol.fail {
        Verdict::Warn
    } else {
        Verdict::Fail
    }
}

/// One row of a snapshot comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Metric name ("slowdown75/LRU", "wall/run/STN/HPE/75%", …).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// The verdict under the metric's tolerance.
    pub verdict: Verdict,
}

impl CompareRow {
    /// `current / baseline` (inf when the baseline is 0).
    pub fn ratio(&self) -> f64 {
        self.current / self.baseline
    }
}

/// Compares a fresh collection against a baseline snapshot, metric by
/// metric. A metric present in the baseline but missing from `current`
/// fails (a silently dropped measurement must not pass the gate);
/// metrics new in `current` are ignored so the schema can grow.
pub fn compare(current: &BenchSnapshot, baseline: &BenchSnapshot) -> Vec<CompareRow> {
    let mut rows = Vec::new();
    for base in &baseline.policies {
        let cur = current.policies.iter().find(|p| p.policy == base.policy);
        for (tag, get) in [
            (
                "slowdown75",
                &(|p: &PolicyPerf| p.slowdown_75) as &dyn Fn(&PolicyPerf) -> f64,
            ),
            ("slowdown50", &|p: &PolicyPerf| p.slowdown_50),
        ] {
            let metric = format!("{tag}/{}", base.policy);
            match cur {
                Some(cur) => rows.push(CompareRow {
                    metric,
                    baseline: get(base),
                    current: get(cur),
                    verdict: verdict(get(cur), get(base), SIM_TOLERANCE),
                }),
                None => rows.push(CompareRow {
                    metric,
                    baseline: get(base),
                    current: f64::NAN,
                    verdict: Verdict::Fail,
                }),
            }
        }
    }
    for base in &baseline.wall_clocks {
        let metric = format!("wall/{}", base.name);
        match current.wall_clocks.iter().find(|w| w.name == base.name) {
            Some(cur) => rows.push(CompareRow {
                metric,
                baseline: base.median_ns,
                current: cur.median_ns,
                verdict: verdict(cur.median_ns, base.median_ns, WALL_TOLERANCE),
            }),
            None => rows.push(CompareRow {
                metric,
                baseline: base.median_ns,
                current: f64::NAN,
                verdict: Verdict::Fail,
            }),
        }
    }
    rows
}

/// The worst verdict of a comparison (Pass for an empty one).
pub fn worst(rows: &[CompareRow]) -> Verdict {
    rows.iter()
        .map(|r| r.verdict)
        .max()
        .unwrap_or(Verdict::Pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_number_from_existing_files() {
        let dir = std::env::temp_dir().join(format!("hpe-perf-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_id(&dir), "BENCH_0001");
        assert!(latest(&dir).is_none());
        fs::write(dir.join("BENCH_0001.json"), "{}").unwrap();
        fs::write(dir.join("BENCH_0003.json"), "{}").unwrap();
        fs::write(dir.join("not-a-snapshot.json"), "{}").unwrap();
        assert_eq!(next_id(&dir), "BENCH_0004");
        assert!(latest(&dir).unwrap().ends_with("BENCH_0003.json"));
        let _ = fs::remove_dir_all(&dir);
    }
}
