//! `hpe-lint`: static analysis over the workspace source tree.
//!
//! Front end to the `uvm-lint` crate: walks the checkout, runs the
//! selected rule families, and reports violations as `file:line` lines
//! or machine-readable JSON. Replaces the old awk-based unwrap counter
//! in `scripts/verify.sh` — violations carry a rule id and an inline
//! `// lint:allow(rule-id)` escape hatch instead of a numeric baseline.
//!
//! ```sh
//! hpe-lint check                               # all rule families, repo root
//! hpe-lint check --rules error-discipline      # one family (CI unwrap gate)
//! hpe-lint check --rules determinism,hermeticity --json
//! hpe-lint check path/to/checkout              # explicit root
//! hpe-lint rules                               # list families and rules
//! ```
//!
//! Exit codes (the `hpe-chaos` convention): 0 clean, 1 violations
//! found, 2 usage or internal error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use uvm_lint::{check_workspace, report_json, RuleFamily};

fn usage() -> ExitCode {
    eprintln!(
        "usage: hpe-lint <command> [args]\n\
         \n\
         commands:\n\
         \x20 check [--rules FAMILY[,FAMILY..]] [--json] [ROOT]\n\
         \x20       lint the workspace at ROOT (default: the enclosing\n\
         \x20       checkout) with the selected rule families\n\
         \x20       (default: all of determinism, hermeticity,\n\
         \x20       error-discipline, paper-constants)\n\
         \x20 rules list rule families and the rules they contain\n\
         \n\
         exit codes: 0 clean, 1 violations, 2 usage/internal error"
    );
    ExitCode::from(2)
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when built in-tree,
/// else the current directory.
fn default_root() -> PathBuf {
    let compiled_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if compiled_root.join("Cargo.toml").is_file() {
        return compiled_root;
    }
    PathBuf::from(".")
}

fn parse_families(text: &str) -> Result<Vec<RuleFamily>, String> {
    let mut families = Vec::new();
    for part in text.split(',') {
        let part = part.trim();
        let fam = RuleFamily::parse(part).ok_or_else(|| format!("unknown rule family `{part}`"))?;
        if !families.contains(&fam) {
            families.push(fam);
        }
    }
    if families.is_empty() {
        return Err("empty --rules list".to_string());
    }
    Ok(families)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let mut families: Vec<RuleFamily> = RuleFamily::ALL.to_vec();
    let mut json_out = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rules" => {
                let spec = it.next().ok_or("--rules needs a value")?;
                families = parse_families(spec)?;
            }
            "--json" => json_out = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path => {
                if root.replace(PathBuf::from(path)).is_some() {
                    return Err("more than one ROOT argument".to_string());
                }
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    if !root.join("Cargo.toml").is_file() {
        return Err(format!("{} is not a workspace root", root.display()));
    }
    let diags = check_workspace(&root, &families).map_err(|e| e.to_string())?;
    if json_out {
        println!("{}", report_json(&diags).pretty());
    } else {
        for d in &diags {
            println!("{d}");
        }
        let labels: Vec<&str> = families.iter().map(|f| f.label()).collect();
        eprintln!(
            "hpe-lint: {} violation(s) [{}] under {}",
            diags.len(),
            labels.join(","),
            root.display()
        );
    }
    Ok(if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_rules() -> ExitCode {
    println!(
        "determinism        wall-clock, hash-iteration, randomness\n\
         \x20                  (crates/{{sim,core,policies,workloads}}/src)\n\
         hermeticity        external-import (every .rs file)\n\
         error-discipline   unwrap (.unwrap()/.expect(/panic! outside tests;\n\
         \x20                  crates/{{sim,core,policies}}/src),\n\
         \x20                  profile-guard (profiler accumulation outside\n\
         \x20                  the opt-in guard; crates/sim/src except\n\
         \x20                  profile.rs)\n\
         paper-constants    paper-constants (config constructors vs the\n\
         \x20                  declared manifest)\n\
         \n\
         suppress a single line with: // lint:allow(rule-id)"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => match cmd_check(&args[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("hpe-lint: {msg}");
                ExitCode::from(2)
            }
        },
        Some("rules") => cmd_rules(),
        _ => usage(),
    }
}
