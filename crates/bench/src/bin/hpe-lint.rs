//! `hpe-lint`: static analysis over the workspace source tree.
//!
//! Front end to the `uvm-lint` crate: walks the checkout, runs the
//! selected rule families, and reports violations as `file:line` lines
//! or machine-readable JSON. Replaces the old awk-based unwrap counter
//! in `scripts/verify.sh` — violations carry a rule id and an inline
//! `// lint:allow(rule-id)` escape hatch instead of a numeric baseline.
//!
//! ```sh
//! hpe-lint check                               # all rule families, repo root
//! hpe-lint check --rules error-discipline      # one family (CI unwrap gate)
//! hpe-lint check --rules determinism,hermeticity --json
//! hpe-lint check path/to/checkout              # explicit root
//! hpe-lint rules                               # list families and rules
//! ```
//!
//! Exit codes (the `hpe-chaos` convention): 0 clean, 1 violations
//! found, 2 usage or internal error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use uvm_lint::{check_workspace, report_json, Diagnostic, RuleFamily};
use uvm_sim::ExploreSpec;
use uvm_util::{FromJson, Json};

fn usage() -> ExitCode {
    eprintln!(
        "usage: hpe-lint <command> [args]\n\
         \n\
         commands:\n\
         \x20 check [--rules FAMILY[,FAMILY..]] [--json] [ROOT]\n\
         \x20       lint the workspace at ROOT (default: the enclosing\n\
         \x20       checkout) with the selected rule families\n\
         \x20       (default: all of determinism, hermeticity,\n\
         \x20       error-discipline, paper-constants, tenant-isolation,\n\
         \x20       explore-specs)\n\
         \x20 rules list rule families and the rules they contain\n\
         \n\
         exit codes: 0 clean, 1 violations, 2 usage/internal error"
    );
    ExitCode::from(2)
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when built in-tree,
/// else the current directory.
fn default_root() -> PathBuf {
    let compiled_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if compiled_root.join("Cargo.toml").is_file() {
        return compiled_root;
    }
    PathBuf::from(".")
}

/// The selected rule families: the source-tree families `uvm-lint`
/// knows, plus the binary-level `explore-specs` pseudo-family (it needs
/// the simulator's `ExploreSpec` parser, which `uvm-lint` cannot depend
/// on).
struct Selection {
    families: Vec<RuleFamily>,
    explore_specs: bool,
}

impl Selection {
    fn all() -> Self {
        Selection {
            families: RuleFamily::ALL.to_vec(),
            explore_specs: true,
        }
    }

    fn labels(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = self.families.iter().map(|f| f.label()).collect();
        if self.explore_specs {
            labels.push("explore-specs");
        }
        labels
    }
}

fn parse_families(text: &str) -> Result<Selection, String> {
    let mut sel = Selection {
        families: Vec::new(),
        explore_specs: false,
    };
    for part in text.split(',') {
        let part = part.trim();
        if part == "explore-specs" {
            sel.explore_specs = true;
            continue;
        }
        let fam = RuleFamily::parse(part).ok_or_else(|| format!("unknown rule family `{part}`"))?;
        if !sel.families.contains(&fam) {
            sel.families.push(fam);
        }
    }
    if sel.families.is_empty() && !sel.explore_specs {
        return Err("empty --rules list".to_string());
    }
    Ok(sel)
}

/// `explore-specs` rule: every JSON fixture under `fixtures/explore/`
/// must parse as an [`ExploreSpec`] and pass its validation — a broken
/// fixture would otherwise only surface when someone runs it.
fn check_explore_specs(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let dir = root.join("fixtures/explore");
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut diags = Vec::new();
    for path in paths {
        let rel = format!(
            "fixtures/explore/{}",
            path.file_name().unwrap_or_default().to_string_lossy()
        );
        let problem = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()))
            .and_then(|json| ExploreSpec::from_json(&json).map_err(|e| e.to_string()))
            .and_then(|spec| spec.validate().map_err(|e| e.to_string()));
        if let Err(msg) = problem {
            diags.push(Diagnostic::new(rel, 1, "explore-spec", msg));
        }
    }
    Ok(diags)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let mut sel = Selection::all();
    let mut json_out = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rules" => {
                let spec = it.next().ok_or("--rules needs a value")?;
                sel = parse_families(spec)?;
            }
            "--json" => json_out = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path => {
                if root.replace(PathBuf::from(path)).is_some() {
                    return Err("more than one ROOT argument".to_string());
                }
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    if !root.join("Cargo.toml").is_file() {
        return Err(format!("{} is not a workspace root", root.display()));
    }
    let mut diags = if sel.explore_specs {
        check_explore_specs(&root)?
    } else {
        Vec::new()
    };
    if !sel.families.is_empty() {
        diags.extend(check_workspace(&root, &sel.families).map_err(|e| e.to_string())?);
    }
    if json_out {
        println!("{}", report_json(&diags).pretty());
    } else {
        for d in &diags {
            println!("{d}");
        }
        eprintln!(
            "hpe-lint: {} violation(s) [{}] under {}",
            diags.len(),
            sel.labels().join(","),
            root.display()
        );
    }
    Ok(if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_rules() -> ExitCode {
    println!(
        "determinism        wall-clock, hash-iteration, randomness\n\
         \x20                  (crates/{{sim,core,policies,workloads}}/src)\n\
         hermeticity        external-import (every .rs file)\n\
         error-discipline   unwrap (.unwrap()/.expect(/panic! outside tests;\n\
         \x20                  crates/{{sim,core,policies}}/src),\n\
         \x20                  profile-guard (profiler accumulation outside\n\
         \x20                  the opt-in guard; crates/sim/src except\n\
         \x20                  profile.rs)\n\
         paper-constants    paper-constants (config constructors vs the\n\
         \x20                  declared manifest)\n\
         tenant-isolation   tenant-isolation (direct tenant slot-state\n\
         \x20                  access bypassing the MixState accessors;\n\
         \x20                  crates/{{sim,bench}}/src/tenant*.rs)\n\
         explore-specs      explore-spec (fixtures/explore/*.json must\n\
         \x20                  parse as ExploreSpec and validate)\n\
         \n\
         suppress a single line with: // lint:allow(rule-id)"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => match cmd_check(&args[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("hpe-lint: {msg}");
                ExitCode::from(2)
            }
        },
        Some("rules") => cmd_rules(),
        _ => usage(),
    }
}
