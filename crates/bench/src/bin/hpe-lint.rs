//! `hpe-lint`: static analysis over the workspace source tree.
//!
//! Front end to the `uvm-lint` crate: walks the checkout, runs the
//! selected rule families, and reports violations as `file:line` lines
//! or machine-readable JSON. Replaces the old awk-based unwrap counter
//! in `scripts/verify.sh` — violations carry a rule id and an inline
//! `// lint:allow(rule-id)` escape hatch instead of a numeric baseline.
//!
//! ```sh
//! hpe-lint check                               # all rule families, repo root
//! hpe-lint check --rules error-discipline      # one family (CI unwrap gate)
//! hpe-lint check --rules determinism,hermeticity --json
//! hpe-lint check path/to/checkout              # explicit root
//! hpe-lint rules                               # list families and rules
//! hpe-lint graph                               # call-graph summary from the roots
//! hpe-lint graph MixState::record              # one symbol: trail + callees
//! hpe-lint explain panic-reachability          # what a rule means and how to fix
//! ```
//!
//! Exit codes (the `hpe-chaos` convention): 0 clean, 1 violations
//! found, 2 usage or internal error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use uvm_lint::callgraph::CallGraph;
use uvm_lint::{check_workspace, load_workspace_index, report_json, Diagnostic, RuleFamily};
use uvm_sim::ExploreSpec;
use uvm_util::{FromJson, Json};

fn usage() -> ExitCode {
    eprintln!(
        "usage: hpe-lint <command> [args]\n\
         \n\
         commands:\n\
         \x20 check [--rules FAMILY[,FAMILY..]] [--json] [ROOT]\n\
         \x20       lint the workspace at ROOT (default: the enclosing\n\
         \x20       checkout) with the selected rule families\n\
         \x20       (default: all of determinism, hermeticity,\n\
         \x20       error-discipline, paper-constants, tenant-isolation,\n\
         \x20       panic-reachability, determinism-taint, stale-allow,\n\
         \x20       explore-specs)\n\
         \x20 graph [SYMBOL] [--json] [ROOT]\n\
         \x20       call-graph view: without SYMBOL the roots, every\n\
         \x20       reachable panic site (annotated or not) with its\n\
         \x20       call trail, and slice-indexing counts in reachable\n\
         \x20       fns; with SYMBOL (qualified `Type::name` or bare\n\
         \x20       name) that symbol's reachability, trail, and callees\n\
         \x20 explain RULE-ID\n\
         \x20       what a rule id checks, why, and how to fix or\n\
         \x20       suppress a finding\n\
         \x20 rules list rule families and the rules they contain\n\
         \n\
         exit codes: 0 clean, 1 violations, 2 usage/internal error"
    );
    ExitCode::from(2)
}

/// The workspace root: `CARGO_MANIFEST_DIR/../..` when built in-tree,
/// else the current directory.
fn default_root() -> PathBuf {
    let compiled_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if compiled_root.join("Cargo.toml").is_file() {
        return compiled_root;
    }
    PathBuf::from(".")
}

/// The selected rule families: the source-tree families `uvm-lint`
/// knows, plus the binary-level `explore-specs` pseudo-family (it needs
/// the simulator's `ExploreSpec` parser, which `uvm-lint` cannot depend
/// on).
struct Selection {
    families: Vec<RuleFamily>,
    explore_specs: bool,
}

impl Selection {
    fn all() -> Self {
        Selection {
            families: RuleFamily::ALL.to_vec(),
            explore_specs: true,
        }
    }

    fn labels(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = self.families.iter().map(|f| f.label()).collect();
        if self.explore_specs {
            labels.push("explore-specs");
        }
        labels
    }
}

fn parse_families(text: &str) -> Result<Selection, String> {
    let mut sel = Selection {
        families: Vec::new(),
        explore_specs: false,
    };
    for part in text.split(',') {
        let part = part.trim();
        if part == "explore-specs" {
            sel.explore_specs = true;
            continue;
        }
        let fam = RuleFamily::parse(part).ok_or_else(|| format!("unknown rule family `{part}`"))?;
        if !sel.families.contains(&fam) {
            sel.families.push(fam);
        }
    }
    if sel.families.is_empty() && !sel.explore_specs {
        return Err("empty --rules list".to_string());
    }
    Ok(sel)
}

/// `explore-specs` rule: every JSON fixture under `fixtures/explore/`
/// must parse as an [`ExploreSpec`] and pass its validation — a broken
/// fixture would otherwise only surface when someone runs it.
fn check_explore_specs(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let dir = root.join("fixtures/explore");
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut diags = Vec::new();
    for path in paths {
        let rel = format!(
            "fixtures/explore/{}",
            path.file_name().unwrap_or_default().to_string_lossy()
        );
        let problem = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text).map_err(|e| e.to_string()))
            .and_then(|json| ExploreSpec::from_json(&json).map_err(|e| e.to_string()))
            .and_then(|spec| spec.validate().map_err(|e| e.to_string()));
        if let Err(msg) = problem {
            diags.push(Diagnostic::new(rel, 1, "explore-spec", msg));
        }
    }
    Ok(diags)
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let mut sel = Selection::all();
    let mut json_out = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rules" => {
                let spec = it.next().ok_or("--rules needs a value")?;
                sel = parse_families(spec)?;
            }
            "--json" => json_out = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`"));
            }
            path => {
                if root.replace(PathBuf::from(path)).is_some() {
                    return Err("more than one ROOT argument".to_string());
                }
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    if !root.join("Cargo.toml").is_file() {
        return Err(format!("{} is not a workspace root", root.display()));
    }
    let mut diags = if sel.explore_specs {
        check_explore_specs(&root)?
    } else {
        Vec::new()
    };
    if !sel.families.is_empty() {
        diags.extend(check_workspace(&root, &sel.families).map_err(|e| e.to_string())?);
    }
    if json_out {
        println!("{}", report_json(&diags).pretty());
    } else {
        for d in &diags {
            println!("{d}");
        }
        eprintln!(
            "hpe-lint: {} violation(s) [{}] under {}",
            diags.len(),
            sel.labels().join(","),
            root.display()
        );
    }
    Ok(if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// Splits `graph` positionals: a path that contains a `Cargo.toml` is
/// the workspace ROOT, anything else is the SYMBOL to look up.
fn cmd_graph(args: &[String]) -> Result<ExitCode, String> {
    let mut json_out = false;
    let mut positionals: Vec<&str> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--json" => json_out = true,
            flag if flag.starts_with("--") => return Err(format!("unknown flag `{flag}`")),
            val => positionals.push(val),
        }
    }
    let mut symbol: Option<&str> = None;
    let mut root: Option<PathBuf> = None;
    for pos in positionals {
        if Path::new(pos).join("Cargo.toml").is_file() {
            if root.replace(PathBuf::from(pos)).is_some() {
                return Err("more than one ROOT argument".to_string());
            }
        } else if symbol.replace(pos).is_some() {
            return Err(format!("more than one SYMBOL argument (`{pos}`)"));
        }
    }
    let root = root.unwrap_or_else(default_root);
    if !root.join("Cargo.toml").is_file() {
        return Err(format!("{} is not a workspace root", root.display()));
    }
    let idx = load_workspace_index(&root).map_err(|e| e.to_string())?;
    let graph = CallGraph::build(&idx);
    match symbol {
        Some(sym) => graph_symbol(&graph, sym, json_out),
        None => {
            graph_summary(&graph, json_out);
            Ok(ExitCode::SUCCESS)
        }
    }
}

fn trail_text(trail: &[String]) -> String {
    trail.join(" -> ")
}

fn graph_summary(graph: &CallGraph, json_out: bool) {
    let findings = graph.panic_findings();
    let index_ops = graph.reachable_index_ops();
    if json_out {
        let mut out = Json::object();
        out.insert(
            "roots",
            Json::Array(
                graph
                    .roots()
                    .iter()
                    .map(|&i| {
                        let f = graph.fn_item(i);
                        let mut r = Json::object();
                        r.insert("symbol", Json::Str(f.qualified()));
                        r.insert("file", Json::Str(f.file.clone()));
                        r.insert("line", Json::UInt(u64::from(f.line)));
                        r
                    })
                    .collect(),
            ),
        );
        out.insert(
            "panic_sites",
            Json::Array(
                findings
                    .iter()
                    .map(|p| {
                        let mut r = Json::object();
                        r.insert("file", Json::Str(p.file.clone()));
                        r.insert("line", Json::UInt(u64::from(p.line)));
                        r.insert("what", Json::Str(p.what.to_string()));
                        r.insert("in", Json::Str(graph.fn_item(p.fn_idx).qualified()));
                        r.insert(
                            "trail",
                            Json::Array(p.trail.iter().map(|s| Json::Str(s.clone())).collect()),
                        );
                        r
                    })
                    .collect(),
            ),
        );
        out.insert(
            "index_ops",
            Json::Array(
                index_ops
                    .iter()
                    .map(|&(i, count)| {
                        let f = graph.fn_item(i);
                        let mut r = Json::object();
                        r.insert("symbol", Json::Str(f.qualified()));
                        r.insert("file", Json::Str(f.file.clone()));
                        r.insert("line", Json::UInt(u64::from(f.line)));
                        r.insert("count", Json::UInt(u64::from(count)));
                        r
                    })
                    .collect(),
            ),
        );
        println!("{}", out.pretty());
        return;
    }
    println!("roots:");
    for &i in graph.roots() {
        let f = graph.fn_item(i);
        println!("  {}  ({}:{})", f.qualified(), f.file, f.line);
    }
    println!(
        "\nreachable panic sites ({}, including `lint:allow`ed):",
        findings.len()
    );
    for p in &findings {
        println!(
            "  {}:{}: `{}` in `{}` (trail: {})",
            p.file,
            p.line,
            p.what,
            graph.fn_item(p.fn_idx).qualified(),
            trail_text(&p.trail)
        );
    }
    let total_ops: u32 = index_ops.iter().map(|&(_, c)| c).sum();
    println!(
        "\nweak sites: {} slice-indexing expression(s) across {} reachable fn(s)",
        total_ops,
        index_ops.len()
    );
    for &(i, count) in &index_ops {
        let f = graph.fn_item(i);
        println!("  {}  ({}:{}): {}", f.qualified(), f.file, f.line, count);
    }
}

fn graph_symbol(graph: &CallGraph, symbol: &str, json_out: bool) -> Result<ExitCode, String> {
    let matches = graph.find_symbol(symbol);
    if matches.is_empty() {
        return Err(format!("symbol `{symbol}` not found in the item index"));
    }
    if json_out {
        let mut out = Json::object();
        out.insert("symbol", Json::Str(symbol.to_string()));
        out.insert(
            "matches",
            Json::Array(
                matches
                    .iter()
                    .map(|&i| {
                        let f = graph.fn_item(i);
                        let mut r = Json::object();
                        r.insert("symbol", Json::Str(f.qualified()));
                        r.insert("file", Json::Str(f.file.clone()));
                        r.insert("line", Json::UInt(u64::from(f.line)));
                        r.insert("reachable", Json::Bool(graph.is_reachable(i)));
                        r.insert(
                            "trail",
                            Json::Array(
                                graph
                                    .trail_to(i)
                                    .iter()
                                    .map(|s| Json::Str(s.clone()))
                                    .collect(),
                            ),
                        );
                        r.insert(
                            "calls",
                            Json::Array(
                                graph
                                    .callees(i)
                                    .iter()
                                    .map(|&c| Json::Str(graph.fn_item(c).qualified()))
                                    .collect(),
                            ),
                        );
                        r
                    })
                    .collect(),
            ),
        );
        println!("{}", out.pretty());
        return Ok(ExitCode::SUCCESS);
    }
    for &i in &matches {
        let f = graph.fn_item(i);
        println!("{}  ({}:{})", f.qualified(), f.file, f.line);
        if graph.is_reachable(i) {
            println!(
                "  reachable from roots: yes (trail: {})",
                trail_text(&graph.trail_to(i))
            );
        } else {
            println!("  reachable from roots: no");
        }
        let callees = graph.callees(i);
        if callees.is_empty() {
            println!("  calls: (none resolved)");
        } else {
            let names: Vec<String> = callees
                .iter()
                .map(|&c| graph.fn_item(c).qualified())
                .collect();
            println!("  calls: {}", names.join(", "));
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Rule-id explanations for `hpe-lint explain`. One entry per concrete
/// rule id (not per family).
const EXPLANATIONS: &[(&str, &str)] = &[
    (
        "wall-clock",
        "Simulated time must come from the event loop, never the host\n\
         clock: `std::time::Instant`/`SystemTime` reads make runs\n\
         irreproducible. Fix: thread the simulation clock through; there\n\
         is no allow escape for this rule.",
    ),
    (
        "randomness",
        "All randomness must flow through the seeded `uvm_util::rng`\n\
         generator. `thread_rng`, `rand::`, or OS entropy break replay.\n\
         Fix: take an `Rng` (or a seed) as an argument.",
    ),
    (
        "hash-iteration",
        "Iterating a `HashMap`/`HashSet` visits entries in hash order,\n\
         which varies across runs and platforms. Fix: sort keys first,\n\
         or annotate a provably order-insensitive use (a sum, a max)\n\
         with `// lint:allow(hash-iteration)` and say why.",
    ),
    (
        "external-import",
        "The workspace is hermetic: no external crates. An import of one\n\
         would quietly pull untracked behaviour into the reproduction.\n\
         Fix: implement the needed slice in `crates/util`.",
    ),
    (
        "unwrap",
        "`.unwrap()`, `.expect(`, and `panic!` in non-test simulator\n\
         code turn recoverable conditions into aborts. Scope:\n\
         crates/{sim,core,policies}/src. Fix: return a typed error, or\n\
         annotate an audited invariant with `// lint:allow(unwrap)`.",
    ),
    (
        "profile-guard",
        "Profiler accumulation must sit behind the opt-in guard\n\
         (`if let Some(prof) = self.profiler.as_mut()`) so the hot path\n\
         pays nothing when profiling is off. Scope: crates/sim/src\n\
         except profile.rs.",
    ),
    (
        "paper-constants",
        "Config constructors named in the lint manifest must keep the\n\
         paper's pinned literals (epoch lengths, thresholds, geometry).\n\
         Drift would silently change every downstream number. Fix:\n\
         restore the constant, or update the manifest in the same\n\
         change that re-derives the dependent results.",
    ),
    (
        "tenant-isolation",
        "Per-tenant slot state (`.slots`) may only be touched inside the\n\
         `impl MixState` block; everything else goes through the\n\
         accessors. Since v2 the rule is symbol-aware and workspace-wide:\n\
         code inside the impl block is exempt by position (no\n\
         annotations needed), code outside it is flagged wherever it\n\
         lives.",
    ),
    (
        "panic-reachability",
        "A panic site (`panic!`, `unreachable!`, `todo!`,\n\
         `unimplemented!`, `.unwrap()`, `.expect(`) that the call graph\n\
         can reach from a simulation root — `Simulation::run`,\n\
         `Simulation::run_until`, `run_campaign`, `run_mix`, or any\n\
         `MixState` accessor — can abort a campaign mid-flight. The\n\
         finding carries the call trail (`hpe-lint graph` shows all of\n\
         them). Resolution is name-based and deliberately\n\
         over-approximate: a common method name may pull in an\n\
         unrelated fn; annotate such a site with\n\
         `// lint:allow(panic-reachability)` and say why. Existing\n\
         `lint:allow(unwrap)` annotations also suppress it.",
    ),
    (
        "rng-taint",
        "Every `Rng::seed_from_u64` call must derive its seed from a\n\
         parameter or config field of the enclosing fn — a literal or\n\
         free-floating constant forks an untracked stream that ignores\n\
         the campaign seed. Fix: thread the seed through, or annotate a\n\
         deliberate fixed stream with `// lint:allow(rng-taint)`.",
    ),
    (
        "stale-allow",
        "A `// lint:allow(rule-id)` that no longer suppresses anything\n\
         (the violation moved or was fixed, or the id is unknown) is\n\
         itself flagged, so the escape hatch cannot rot. Only judged\n\
         when every family that could consume the id is selected. Fix:\n\
         delete the annotation.",
    ),
    (
        "explore-spec",
        "Every JSON fixture under fixtures/explore/ must parse as an\n\
         `ExploreSpec` and pass validation, so a broken fixture fails in\n\
         CI rather than at campaign launch.",
    ),
];

fn cmd_explain(args: &[String]) -> Result<ExitCode, String> {
    let [id] = args else {
        return Err("explain takes exactly one RULE-ID".to_string());
    };
    match EXPLANATIONS.iter().find(|(rule, _)| rule == id) {
        Some((rule, text)) => {
            println!("{rule}\n\n{text}");
            Ok(ExitCode::SUCCESS)
        }
        None => {
            let known: Vec<&str> = EXPLANATIONS.iter().map(|(rule, _)| *rule).collect();
            Err(format!(
                "unknown rule id `{id}`; known: {}",
                known.join(", ")
            ))
        }
    }
}

fn cmd_rules() -> ExitCode {
    println!(
        "determinism        wall-clock, hash-iteration, randomness\n\
         \x20                  (crates/{{sim,core,policies,workloads}}/src)\n\
         hermeticity        external-import (every .rs file)\n\
         error-discipline   unwrap (.unwrap()/.expect(/panic! outside tests;\n\
         \x20                  crates/{{sim,core,policies}}/src),\n\
         \x20                  profile-guard (profiler accumulation outside\n\
         \x20                  the opt-in guard; crates/sim/src except\n\
         \x20                  profile.rs)\n\
         paper-constants    paper-constants (config constructors vs the\n\
         \x20                  declared manifest)\n\
         tenant-isolation   tenant-isolation (symbol-aware since v2:\n\
         \x20                  `.slots` access outside the `impl MixState`\n\
         \x20                  block, workspace-wide; the impl block is\n\
         \x20                  exempt by position)\n\
         panic-reachability panic-reachability (panic sites the call\n\
         \x20                  graph reaches from Simulation::run,\n\
         \x20                  run_campaign, run_mix, or the MixState\n\
         \x20                  accessors; findings carry a call trail)\n\
         determinism-taint  rng-taint (Rng::seed_from_u64 must derive\n\
         \x20                  its seed from a parameter or config field)\n\
         stale-allow        stale-allow (lint:allow annotations that no\n\
         \x20                  longer suppress anything)\n\
         explore-specs      explore-spec (fixtures/explore/*.json must\n\
         \x20                  parse as ExploreSpec and validate)\n\
         \n\
         suppress a single line with: // lint:allow(rule-id)\n\
         `hpe-lint explain RULE-ID` has the full story for each rule"
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => match cmd_check(&args[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("hpe-lint: {msg}");
                ExitCode::from(2)
            }
        },
        Some("graph") => match cmd_graph(&args[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("hpe-lint: {msg}");
                ExitCode::from(2)
            }
        },
        Some("explain") => match cmd_explain(&args[1..]) {
            Ok(code) => code,
            Err(msg) => {
                eprintln!("hpe-lint: {msg}");
                ExitCode::from(2)
            }
        },
        Some("rules") => cmd_rules(),
        _ => usage(),
    }
}
