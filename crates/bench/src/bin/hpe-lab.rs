//! `hpe-lab` — command-line front end for the HPE reproduction stack.
//!
//! ```text
//! hpe-lab list
//! hpe-lab run <APP> [--policy lru|random|lfu|rrip|clockpro|ideal|hpe]
//!                   [--rate 75|50|<percent>] [--json]
//! hpe-lab compare <APP> [--rate ...]        # all policies side by side
//! hpe-lab sweep <APP> [--policy ...]        # capacity sweep 95%..40%
//! hpe-lab profile <APP>                     # access-pattern profile
//! ```
//!
//! Run via `cargo run --release -p hpe-bench --bin hpe-lab -- <args>`.

use hpe_bench::{bench_config, run_policy, PolicyKind, Table};
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "lru" => PolicyKind::Lru,
        "random" => PolicyKind::Random,
        "lfu" => PolicyKind::Lfu,
        "rrip" => PolicyKind::Rrip,
        "clockpro" | "clock-pro" => PolicyKind::ClockPro,
        "ideal" | "belady" | "min" => PolicyKind::Ideal,
        "hpe" => PolicyKind::Hpe,
        other => return Err(format!("unknown policy {other:?}")),
    })
}

fn parse_rate(s: &str) -> Result<Oversubscription, String> {
    match s {
        "75" => Ok(Oversubscription::Rate75),
        "50" => Ok(Oversubscription::Rate50),
        other => {
            let pct: f64 = other
                .trim_end_matches('%')
                .parse()
                .map_err(|_| format!("bad rate {other:?}"))?;
            if !(0.0..=100.0).contains(&pct) || pct == 0.0 {
                return Err(format!("rate {pct} out of range (0, 100]"));
            }
            Ok(Oversubscription::Custom(pct / 100.0))
        }
    }
}

struct Opts {
    policy: PolicyKind,
    rate: Oversubscription,
    json: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        policy: PolicyKind::Hpe,
        rate: Oversubscription::Rate75,
        json: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                opts.policy = parse_policy(v)?;
            }
            "--rate" => {
                let v = it.next().ok_or("--rate needs a value")?;
                opts.rate = parse_rate(v)?;
            }
            "--json" => opts.json = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn cmd_list() {
    let mut t = Table::new(
        "registered applications",
        &["abbr", "name", "suite", "type", "pages"],
    );
    for app in registry::all() {
        t.row(vec![
            app.abbr().to_string(),
            app.name().to_string(),
            app.suite().to_string(),
            app.pattern().roman().to_string(),
            app.footprint_pages().to_string(),
        ]);
    }
    t.print();
}

fn cmd_run(abbr: &str, opts: &Opts) -> Result<(), String> {
    let app = registry::by_abbr(abbr).ok_or_else(|| format!("unknown app {abbr:?}"))?;
    let cfg = bench_config();
    let r = run_policy(&cfg, app, opts.rate, opts.policy).expect("run completes");
    if opts.json {
        let mut v = json!({
            "app": r.app,
            "policy": r.policy,
            "rate": r.rate.label(),
            "faults": r.stats.faults(),
            "evictions": r.stats.evictions(),
            "cycles": r.stats.cycles,
            "ipc": r.stats.ipc(),
            "driver_core_load": r.stats.driver.core_load(r.stats.cycles),
        });
        if let Some(h) = &r.hpe {
            v["hpe"] = json!({
                "category": h.classification.map(|c| c.category.to_string()),
                "ratio1": h.classification.map(|c| c.ratio1),
                "ratio2": h.classification.map(|c| c.ratio2),
                "divided_sets": h.divided_sets,
                "strategy_switches": h.timeline.len() - 1,
            });
        }
        println!("{}", v.pretty());
    } else {
        println!(
            "{} under {} at {}: {} faults, {} evictions, {} cycles, IPC {:.5}",
            r.app,
            r.policy,
            r.rate.label(),
            r.stats.faults(),
            r.stats.evictions(),
            r.stats.cycles,
            r.stats.ipc()
        );
        if let Some(h) = &r.hpe {
            if let Some(c) = h.classification {
                println!(
                    "  classified {} (ratio1 {:.2}, ratio2 {:.2}); {} divided sets",
                    c.category, c.ratio1, c.ratio2, h.divided_sets
                );
            }
        }
    }
    Ok(())
}

fn cmd_compare(abbr: &str, opts: &Opts) -> Result<(), String> {
    let app = registry::by_abbr(abbr).ok_or_else(|| format!("unknown app {abbr:?}"))?;
    let cfg = bench_config();
    let mut t = Table::new(
        format!("{abbr} at {}", opts.rate.label()),
        &["policy", "faults", "evictions", "cycles", "IPC"],
    );
    for kind in PolicyKind::ALL {
        let r = run_policy(&cfg, app, opts.rate, kind).expect("run completes");
        t.row(vec![
            r.policy.to_string(),
            r.stats.faults().to_string(),
            r.stats.evictions().to_string(),
            r.stats.cycles.to_string(),
            format!("{:.5}", r.stats.ipc()),
        ]);
    }
    t.print();
    Ok(())
}

fn cmd_sweep(abbr: &str, opts: &Opts) -> Result<(), String> {
    let app = registry::by_abbr(abbr).ok_or_else(|| format!("unknown app {abbr:?}"))?;
    let cfg = bench_config();
    let mut t = Table::new(
        format!("{abbr} capacity sweep under {}", opts.policy.label()),
        &["memory", "capacity(pages)", "faults", "evictions", "IPC"],
    );
    for pct in [95, 90, 85, 75, 60, 50, 40] {
        let rate = Oversubscription::Custom(pct as f64 / 100.0);
        let r = run_policy(&cfg, app, rate, opts.policy).expect("run completes");
        t.row(vec![
            format!("{pct}%"),
            rate.capacity_pages(app.footprint_pages()).to_string(),
            r.stats.faults().to_string(),
            r.stats.evictions().to_string(),
            format!("{:.5}", r.stats.ipc()),
        ]);
    }
    t.print();
    Ok(())
}

fn cmd_profile(abbr: &str) -> Result<(), String> {
    use uvm_workloads::analysis;
    let app = registry::by_abbr(abbr).ok_or_else(|| format!("unknown app {abbr:?}"))?;
    let seq = app.global_sequence();
    let p = analysis::profile(&seq);
    println!("{app} ({}):", app.pattern());
    println!("  references        {}", p.refs);
    println!("  distinct pages    {}", p.distinct);
    println!("  compulsory        {:.0}%", 100.0 * p.compulsory_fraction);
    println!(
        "  median reuse      {}",
        p.median_reuse.map_or("-".to_string(), |d| d.to_string())
    );
    println!(
        "  p90 reuse         {}",
        p.p90_reuse.map_or("-".to_string(), |d| d.to_string())
    );
    println!("  max refs/page     {}", p.max_refs_per_page);
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "list" => {
                cmd_list();
                Ok(())
            }
            "profile" => match rest.first() {
                Some(abbr) => cmd_profile(abbr),
                None => Err("profile needs an application abbreviation".to_string()),
            },
            "run" | "compare" | "sweep" => match rest.split_first() {
                Some((abbr, flags)) => parse_opts(flags).and_then(|opts| match cmd.as_str() {
                    "run" => cmd_run(abbr, &opts),
                    "compare" => cmd_compare(abbr, &opts),
                    _ => cmd_sweep(abbr, &opts),
                }),
                None => Err(format!("{cmd} needs an application abbreviation")),
            },
            other => Err(format!("unknown command {other:?}")),
        },
        None => Err("usage: hpe-lab <list|run|compare|sweep|profile> [APP] [options]".to_string()),
    };
    if let Err(msg) = result {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
}
