//! `hpe-lab` — command-line front end for the HPE reproduction stack.
//!
//! ```text
//! hpe-lab list
//! hpe-lab run <APP> [--policy lru|random|lfu|rrip|clockpro|ideal|hpe]
//!                   [--rate 75|50|<percent>] [--json]
//! hpe-lab compare <APP> [--rate ...]        # all policies side by side
//! hpe-lab sweep <APP> [--policy ...]        # capacity sweep 95%..40%
//! hpe-lab profile <APP>                     # access-pattern profile
//! hpe-lab campaign [APP ...] [--workers N] [--chaos] [--snapshot FILE]
//!                  [--resume] [--progress FILE]   # parallel grid sweep
//! hpe-lab bench-snapshot [--workers N]      # record the next BENCH_*.json
//! hpe-lab bench-check [--workers N]         # regression gate vs the last one
//! hpe-lab fairness [--workers N] [--seed N] # per-tenant vs shared HIR:
//!                                           # fairness-vs-throughput grid
//! ```
//!
//! Run via `cargo run --release -p hpe-bench --bin hpe-lab -- <args>`.
//!
//! Exit codes: 0 success, 1 a run failed or the bench gate found a
//! regression, 2 usage error — the same convention as `hpe-chaos` and
//! `hpe-lint`.

use std::fs;
use std::path::PathBuf;

use hpe_bench::{
    bench_config, campaign, f2, f3, fairness_grid, geomean, perf, run_policy, save_json,
    PolicyKind, Table,
};
use uvm_types::Oversubscription;
use uvm_util::{json, Json, ToJson};
use uvm_workloads::registry;

fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "lru" => PolicyKind::Lru,
        "random" => PolicyKind::Random,
        "lfu" => PolicyKind::Lfu,
        "rrip" => PolicyKind::Rrip,
        "clockpro" | "clock-pro" => PolicyKind::ClockPro,
        "ideal" | "belady" | "min" => PolicyKind::Ideal,
        "hpe" => PolicyKind::Hpe,
        other => return Err(format!("unknown policy {other:?}")),
    })
}

fn parse_rate(s: &str) -> Result<Oversubscription, String> {
    match s {
        "75" => Ok(Oversubscription::Rate75),
        "50" => Ok(Oversubscription::Rate50),
        other => {
            let pct: f64 = other
                .trim_end_matches('%')
                .parse()
                .map_err(|_| format!("bad rate {other:?}"))?;
            if !(0.0..=100.0).contains(&pct) || pct == 0.0 {
                return Err(format!("rate {pct} out of range (0, 100]"));
            }
            Ok(Oversubscription::Custom(pct / 100.0))
        }
    }
}

struct Opts {
    policy: PolicyKind,
    rate: Oversubscription,
    json: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        policy: PolicyKind::Hpe,
        rate: Oversubscription::Rate75,
        json: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--policy" => {
                let v = it.next().ok_or("--policy needs a value")?;
                opts.policy = parse_policy(v)?;
            }
            "--rate" => {
                let v = it.next().ok_or("--rate needs a value")?;
                opts.rate = parse_rate(v)?;
            }
            "--json" => opts.json = true,
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn cmd_list() {
    let mut t = Table::new(
        "registered applications",
        &["abbr", "name", "suite", "type", "pages"],
    );
    for app in registry::all() {
        t.row(vec![
            app.abbr().to_string(),
            app.name().to_string(),
            app.suite().to_string(),
            app.pattern().roman().to_string(),
            app.footprint_pages().to_string(),
        ]);
    }
    t.print();
}

fn cmd_run(abbr: &str, opts: &Opts) -> Result<(), CliError> {
    let app =
        registry::by_abbr(abbr).ok_or_else(|| CliError::Usage(format!("unknown app {abbr:?}")))?;
    let cfg = bench_config();
    let r = run_policy(&cfg, app, opts.rate, opts.policy)
        .map_err(|e| CliError::Run(format!("{abbr} run failed: {e}")))?;
    if opts.json {
        let mut v = json!({
            "app": r.app,
            "policy": r.policy,
            "rate": r.rate.label(),
            "faults": r.stats.faults(),
            "evictions": r.stats.evictions(),
            "cycles": r.stats.cycles,
            "ipc": r.stats.ipc(),
            "driver_core_load": r.stats.driver.core_load(r.stats.cycles),
        });
        if let Some(h) = &r.hpe {
            v["hpe"] = json!({
                "category": h.classification.map(|c| c.category.to_string()),
                "ratio1": h.classification.map(|c| c.ratio1),
                "ratio2": h.classification.map(|c| c.ratio2),
                "divided_sets": h.divided_sets,
                "strategy_switches": h.timeline.len() - 1,
            });
        }
        println!("{}", v.pretty());
    } else {
        println!(
            "{} under {} at {}: {} faults, {} evictions, {} cycles, IPC {:.5}",
            r.app,
            r.policy,
            r.rate.label(),
            r.stats.faults(),
            r.stats.evictions(),
            r.stats.cycles,
            r.stats.ipc()
        );
        if let Some(h) = &r.hpe {
            if let Some(c) = h.classification {
                println!(
                    "  classified {} (ratio1 {:.2}, ratio2 {:.2}); {} divided sets",
                    c.category, c.ratio1, c.ratio2, h.divided_sets
                );
            }
        }
    }
    Ok(())
}

fn cmd_compare(abbr: &str, opts: &Opts) -> Result<(), CliError> {
    let app =
        registry::by_abbr(abbr).ok_or_else(|| CliError::Usage(format!("unknown app {abbr:?}")))?;
    let cfg = bench_config();
    let mut t = Table::new(
        format!("{abbr} at {}", opts.rate.label()),
        &["policy", "faults", "evictions", "cycles", "IPC"],
    );
    for kind in PolicyKind::ALL {
        let r = run_policy(&cfg, app, opts.rate, kind)
            .map_err(|e| CliError::Run(format!("{abbr}/{} run failed: {e}", kind.label())))?;
        t.row(vec![
            r.policy.to_string(),
            r.stats.faults().to_string(),
            r.stats.evictions().to_string(),
            r.stats.cycles.to_string(),
            format!("{:.5}", r.stats.ipc()),
        ]);
    }
    t.print();
    Ok(())
}

fn cmd_sweep(abbr: &str, opts: &Opts) -> Result<(), CliError> {
    let app =
        registry::by_abbr(abbr).ok_or_else(|| CliError::Usage(format!("unknown app {abbr:?}")))?;
    let cfg = bench_config();
    let mut t = Table::new(
        format!("{abbr} capacity sweep under {}", opts.policy.label()),
        &["memory", "capacity(pages)", "faults", "evictions", "IPC"],
    );
    for pct in [95, 90, 85, 75, 60, 50, 40] {
        let rate = Oversubscription::Custom(pct as f64 / 100.0);
        let r = run_policy(&cfg, app, rate, opts.policy)
            .map_err(|e| CliError::Run(format!("{abbr} at {pct}% failed: {e}")))?;
        t.row(vec![
            format!("{pct}%"),
            rate.capacity_pages(app.footprint_pages()).to_string(),
            r.stats.faults().to_string(),
            r.stats.evictions().to_string(),
            format!("{:.5}", r.stats.ipc()),
        ]);
    }
    t.print();
    Ok(())
}

fn cmd_profile(abbr: &str) -> Result<(), String> {
    use uvm_workloads::analysis;
    let app = registry::by_abbr(abbr).ok_or_else(|| format!("unknown app {abbr:?}"))?;
    let seq = app.global_sequence();
    let p = analysis::profile(&seq);
    println!("{app} ({}):", app.pattern());
    println!("  references        {}", p.refs);
    println!("  distinct pages    {}", p.distinct);
    println!("  compulsory        {:.0}%", 100.0 * p.compulsory_fraction);
    println!(
        "  median reuse      {}",
        p.median_reuse.map_or("-".to_string(), |d| d.to_string())
    );
    println!(
        "  p90 reuse         {}",
        p.p90_reuse.map_or("-".to_string(), |d| d.to_string())
    );
    println!("  max refs/page     {}", p.max_refs_per_page);
    Ok(())
}

/// Flags of the `campaign` subcommand.
struct CampaignOpts {
    apps: Vec<String>,
    workers: usize,
    seed: u64,
    chaos: bool,
    rate: Option<Oversubscription>,
    progress: Option<PathBuf>,
    snapshot: Option<PathBuf>,
    snapshot_every: usize,
    resume: bool,
    limit: Option<usize>,
}

fn parse_campaign_opts(args: &[String]) -> Result<CampaignOpts, String> {
    let mut opts = CampaignOpts {
        apps: Vec::new(),
        workers: 1,
        seed: 2019,
        chaos: false,
        rate: None,
        progress: None,
        snapshot: None,
        snapshot_every: 0,
        resume: false,
        limit: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workers" => {
                let v = value("--workers")?;
                opts.workers = v.parse().map_err(|_| format!("bad --workers {v:?}"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
            }
            "--chaos" => opts.chaos = true,
            "--rate" => {
                let v = value("--rate")?;
                if v == "both" {
                    opts.rate = None;
                } else {
                    opts.rate = Some(parse_rate(&v)?);
                }
            }
            "--progress" => opts.progress = Some(PathBuf::from(value("--progress")?)),
            "--snapshot" => opts.snapshot = Some(PathBuf::from(value("--snapshot")?)),
            "--snapshot-every" => {
                let v = value("--snapshot-every")?;
                opts.snapshot_every = v
                    .parse()
                    .map_err(|_| format!("bad --snapshot-every {v:?}"))?;
            }
            "--resume" => opts.resume = true,
            "--limit" => {
                let v = value("--limit")?;
                opts.limit = Some(v.parse().map_err(|_| format!("bad --limit {v:?}"))?);
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other:?}")),
            other => opts.apps.push(other.to_string()),
        }
    }
    Ok(opts)
}

/// `campaign`: run a (sub)grid on the parallel engine and summarize the
/// deterministically merged report.
fn cmd_campaign(opts: &CampaignOpts) -> Result<(), CliError> {
    let apps: Vec<String> = if opts.apps.is_empty() {
        registry::all()
            .iter()
            .map(|a| a.abbr().to_string())
            .collect()
    } else {
        opts.apps.clone()
    };
    let mut spec = campaign::CampaignSpec::clean_grid(apps, opts.seed);
    if opts.chaos {
        spec.plans = campaign::chaos_plan_set(opts.seed);
    }
    if let Some(rate) = opts.rate {
        spec.rates = vec![rate];
    }
    let pool = campaign::PoolOptions {
        workers: opts.workers,
        shuffle: None,
        snapshot_path: opts.snapshot.clone(),
        snapshot_every: opts.snapshot_every,
        resume: opts.resume,
        limit: opts.limit,
    };
    eprintln!(
        "[campaign: {} apps x {} policies x {} rates x {} plans = {} cells, {} worker(s), seed {}]",
        spec.apps.len(),
        spec.policies.len(),
        spec.rates.len(),
        spec.plans.len(),
        spec.grid_len(),
        pool.workers.max(1),
        spec.seed,
    );

    let mut progress_file = match &opts.progress {
        Some(path) => {
            Some(fs::File::create(path).map_err(|e| CliError::Usage(format!("--progress: {e}")))?)
        }
        None => None,
    };
    let progress = progress_file.as_mut().map(|f| f as &mut dyn std::io::Write);

    let outcome = campaign::run_campaign(&bench_config(), &spec, &pool, progress)
        .map_err(|e| CliError::Run(e.to_string()))?;
    if !outcome.is_complete() {
        println!(
            "campaign stopped at --limit: {}/{} cells done ({} resumed, {} executed); \
             snapshot holds the completed cells",
            outcome.runs.len(),
            outcome.total,
            outcome.resumed,
            outcome.executed
        );
        return Ok(());
    }
    let report = outcome.report().map_err(|e| CliError::Run(e.to_string()))?;

    // Per (policy, rate): totals and, where the clean Ideal run exists,
    // the geomean slowdown versus Ideal.
    let mut t = Table::new(
        format!(
            "campaign ({} cells, fingerprint {})",
            report.runs.len(),
            report.fingerprint
        ),
        &[
            "policy",
            "rate",
            "runs",
            "failed",
            "faults",
            "slowdown-vs-ideal",
        ],
    );
    for &policy in &spec.policies {
        for &rate in &spec.rates {
            let rate_label = rate.label();
            let rows: Vec<_> = report
                .runs
                .iter()
                .filter(|r| r.policy == policy.label() && r.rate == rate_label)
                .collect();
            let failed = rows.iter().filter(|r| !r.ok).count();
            let faults: u64 = rows.iter().map(|r| r.stats.faults()).sum();
            let mut slowdowns = Vec::new();
            for app in &spec.apps {
                let key = |p: PolicyKind| campaign::grid_key(app, p.label(), &rate_label, "clean");
                if let (Some(run), Some(ideal)) = (
                    report.find(&key(policy)),
                    report.find(&key(PolicyKind::Ideal)),
                ) {
                    if run.ok && ideal.ok && ideal.stats.cycles > 0 {
                        slowdowns.push(run.stats.cycles as f64 / ideal.stats.cycles as f64);
                    }
                }
            }
            t.row(vec![
                policy.label().to_string(),
                rate_label,
                rows.len().to_string(),
                failed.to_string(),
                faults.to_string(),
                if slowdowns.is_empty() {
                    "-".to_string()
                } else {
                    f3(geomean(&slowdowns))
                },
            ]);
        }
    }
    t.print();
    let totals = report.totals();
    println!(
        "merged: {} runs ({} resumed from snapshot), {} failed, {} faults, {} evictions",
        totals.runs, outcome.resumed, totals.failed, totals.faults, totals.evictions
    );
    save_json("campaign", &report.to_json());
    if totals.failed > 0 {
        return Err(CliError::Run(format!(
            "{} campaign cell(s) failed; see the merged report",
            totals.failed
        )));
    }
    Ok(())
}

/// Flags shared by `bench-snapshot` / `bench-check` / `fairness`.
struct BenchOpts {
    workers: usize,
    dir: PathBuf,
    seed: u64,
}

fn parse_bench_opts(args: &[String]) -> Result<BenchOpts, String> {
    let mut opts = BenchOpts {
        workers: 1,
        dir: perf::bench_dir(),
        seed: 2019,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--workers" => {
                let v = value("--workers")?;
                opts.workers = v.parse().map_err(|_| format!("bad --workers {v:?}"))?;
            }
            "--dir" => opts.dir = PathBuf::from(value("--dir")?),
            "--seed" => {
                let v = value("--seed")?;
                opts.seed = v.parse().map_err(|_| format!("bad --seed {v:?}"))?;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    Ok(opts)
}

fn print_snapshot(snap: &perf::BenchSnapshot) {
    let mut t = Table::new(
        format!("{} (seed {}, {} apps)", snap.id, snap.seed, snap.apps.len()),
        &["policy", "slowdown@75%", "slowdown@50%"],
    );
    for p in &snap.policies {
        t.row(vec![p.policy.clone(), f3(p.slowdown_75), f3(p.slowdown_50)]);
    }
    t.print();
    let mut w = Table::new("wall-clocks", &["routine", "median"]);
    for wc in &snap.wall_clocks {
        w.row(vec![
            wc.name.clone(),
            format!("{:.3} ms", wc.median_ns / 1e6),
        ]);
    }
    w.print();
}

/// `bench-snapshot`: collect and record the next `BENCH_NNNN.json`.
fn cmd_bench_snapshot(opts: &BenchOpts) -> Result<(), CliError> {
    fs::create_dir_all(&opts.dir).map_err(|e| CliError::Run(e.to_string()))?;
    let id = perf::next_id(&opts.dir);
    eprintln!("[collecting {} over the clean full grid ...]", id);
    let snap = perf::collect(&id, opts.workers).map_err(CliError::Run)?;
    snap.validate().map_err(CliError::Run)?;
    let path = opts.dir.join(format!("{id}.json"));
    fs::write(&path, snap.to_json().pretty()).map_err(|e| CliError::Run(e.to_string()))?;
    print_snapshot(&snap);
    println!("[saved {}]", path.display());
    Ok(())
}

/// `bench-check`: the regression gate — collect fresh numbers and compare
/// them against the highest-numbered snapshot under tolerance.
fn cmd_bench_check(opts: &BenchOpts) -> Result<(), CliError> {
    let Some(baseline_path) = perf::latest(&opts.dir) else {
        return Err(CliError::Usage(format!(
            "no BENCH_*.json under {} — record one with `hpe-lab bench-snapshot`",
            opts.dir.display()
        )));
    };
    let baseline = perf::BenchSnapshot::load(&baseline_path).map_err(CliError::Run)?;
    eprintln!(
        "[bench gate: current run vs {} ({})]",
        baseline.id,
        baseline_path.display()
    );
    let current = perf::collect("BENCH_current", opts.workers).map_err(CliError::Run)?;
    let rows = perf::compare(&current, &baseline);
    let mut t = Table::new(
        format!("bench gate vs {}", baseline.id),
        &["metric", "baseline", "current", "ratio", "verdict"],
    );
    for r in &rows {
        let fmt = |v: f64| {
            if r.metric.starts_with("wall/") {
                format!("{:.3} ms", v / 1e6)
            } else {
                f3(v)
            }
        };
        t.row(vec![
            r.metric.clone(),
            fmt(r.baseline),
            fmt(r.current),
            f2(r.ratio()),
            r.verdict.label().to_string(),
        ]);
    }
    t.print();
    match perf::worst(&rows) {
        perf::Verdict::Pass => {
            println!("bench gate: pass ({} metrics)", rows.len());
            Ok(())
        }
        perf::Verdict::Warn => {
            println!(
                "bench gate: pass with warnings ({} warn of {} metrics)",
                rows.iter()
                    .filter(|r| r.verdict == perf::Verdict::Warn)
                    .count(),
                rows.len()
            );
            Ok(())
        }
        perf::Verdict::Fail => Err(CliError::Run(format!(
            "bench gate: REGRESSION — {} metric(s) over the fail tolerance vs {}",
            rows.iter()
                .filter(|r| r.verdict == perf::Verdict::Fail)
                .count(),
            baseline.id
        ))),
    }
}

/// The fairness grid's app mixes: a heterogeneous trio, a homogeneous
/// mix, and a larger skewed mix anchored by GEM (the largest-footprint
/// app, hence the most HIR-sensitive tenant in the grid) arriving
/// last, where lease concurrency divides the shared HIR deepest.
const FAIRNESS_MIXES: [&[&str]; 3] = [
    &["STN", "MVT", "CUT"],
    &["STN", "STN", "STN"],
    &["MVT", "CUT", "STN", "GEM"],
];

/// Quota percentages the fairness grid sweeps (per-tenant residency as a
/// fraction of footprint — the mix-level oversubscription knob).
const FAIRNESS_QUOTAS: [u64; 2] = [50, 75];

/// `fairness`: the per-tenant vs shared HIR trade-off table — p99
/// per-tenant slowdown against aggregate throughput over several app
/// mixes and quota rates (the data behind the EXPERIMENTS.md fairness
/// table).
fn cmd_fairness(opts: &BenchOpts) -> Result<(), CliError> {
    let mixes: Vec<Vec<&str>> = FAIRNESS_MIXES.iter().map(|m| m.to_vec()).collect();
    eprintln!(
        "[fairness grid: {} mixes x {} quotas x 2 HIR modes, seed {}, {} worker(s)]",
        mixes.len(),
        FAIRNESS_QUOTAS.len(),
        opts.seed,
        opts.workers.max(1),
    );
    let rows = fairness_grid(
        &bench_config(),
        &mixes,
        &FAIRNESS_QUOTAS,
        opts.seed,
        opts.workers,
    )
    .map_err(|e| CliError::Run(e.to_string()))?;
    let mut t = Table::new(
        "fairness vs throughput (HPE, fault-free mixes)",
        &[
            "mix",
            "quota",
            "hir",
            "p99-slowdown",
            "hir-impact",
            "throughput",
            "rejected",
            "delayed",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.mix.clone(),
            format!("{}%", r.quota_pct),
            r.hir_mode.clone(),
            f2(r.p99_slowdown),
            f3(r.hir_impact),
            f2(r.throughput),
            r.rejected.to_string(),
            r.delayed.to_string(),
        ]);
    }
    t.print();
    let json_rows: Vec<Json> = rows
        .iter()
        .map(|r| {
            json!({
                "mix": r.mix.as_str(),
                "quota_pct": r.quota_pct,
                "hir_mode": r.hir_mode.as_str(),
                "p99_slowdown": r.p99_slowdown,
                "hir_impact": r.hir_impact,
                "throughput": r.throughput,
                "rejected": r.rejected,
                "delayed": r.delayed,
            })
        })
        .collect();
    save_json("tenant-fairness", &json_rows.to_json());
    Ok(())
}

/// How a command failed, mapped onto the process exit code (1 run
/// failure / regression, 2 usage).
enum CliError {
    Usage(String),
    Run(String),
}

fn usage() -> String {
    "usage: hpe-lab <list|run|compare|sweep|profile|campaign|bench-snapshot|bench-check|fairness> \
     [APP ...] [options]\n\
     exit codes: 0 ok, 1 run failure or regression, 2 usage error"
        .to_string()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<(), CliError> = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "list" => {
                cmd_list();
                Ok(())
            }
            "profile" => match rest.first() {
                Some(abbr) => cmd_profile(abbr).map_err(CliError::Usage),
                None => Err(CliError::Usage(
                    "profile needs an application abbreviation".to_string(),
                )),
            },
            "run" | "compare" | "sweep" => match rest.split_first() {
                Some((abbr, flags)) => {
                    parse_opts(flags)
                        .map_err(CliError::Usage)
                        .and_then(|opts| match cmd.as_str() {
                            "run" => cmd_run(abbr, &opts),
                            "compare" => cmd_compare(abbr, &opts),
                            _ => cmd_sweep(abbr, &opts),
                        })
                }
                None => Err(CliError::Usage(format!(
                    "{cmd} needs an application abbreviation"
                ))),
            },
            "campaign" => parse_campaign_opts(rest)
                .map_err(CliError::Usage)
                .and_then(|opts| cmd_campaign(&opts)),
            "bench-snapshot" => parse_bench_opts(rest)
                .map_err(CliError::Usage)
                .and_then(|opts| cmd_bench_snapshot(&opts)),
            "bench-check" => parse_bench_opts(rest)
                .map_err(CliError::Usage)
                .and_then(|opts| cmd_bench_check(&opts)),
            "fairness" => parse_bench_opts(rest)
                .map_err(CliError::Usage)
                .and_then(|opts| cmd_fairness(&opts)),
            other => Err(CliError::Usage(format!("unknown command {other:?}"))),
        },
        None => Err(CliError::Usage(usage())),
    };
    match result {
        Ok(()) => {}
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
        Err(CliError::Run(msg)) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
