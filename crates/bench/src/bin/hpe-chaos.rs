//! `hpe-chaos`: seeded fault-injection campaigns over the simulator.
//!
//! Runs every eviction policy under a set of replayable fault plans and
//! reports resilience metrics against the clean (no-injection) run of the
//! same configuration: slowdown, extra cycles to completion, injected
//! perturbation counters, and HPE's degraded-mode residency.
//!
//! ```sh
//! hpe-chaos campaign                       # all policies x all fault kinds (STN, 75%)
//! hpe-chaos campaign BFS --seed 7          # another app / another seed
//! hpe-chaos livelock                       # watchdog demo: injected livelock -> Stalled
//! hpe-chaos smoke                          # fast panic-free subset for CI
//! ```
//!
//! Campaign results are saved as JSON under `target/paper-results/`
//! (`chaos-campaign.json`) for machine consumption; identical seeds
//! reproduce identical campaigns.

use std::process::ExitCode;

use hpe_bench::{bench_config, f2, run_policy, run_policy_with_plan, save_json, PolicyKind, Table};
use uvm_sim::FaultPlan;
use uvm_types::{Oversubscription, SimError};
use uvm_util::{json, Json, ToJson};
use uvm_workloads::{registry, App};

/// Default campaign seed (the paper's publication year, for no deeper
/// reason than reproducibility needs *some* pinned value).
const DEFAULT_SEED: u64 = 2019;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hpe-chaos <command> [args]\n\
         \n\
         commands:\n\
         \x20 campaign [APP ...] [--seed N] [--rate 75|50]\n\
         \x20          run every policy under every fault plan and report\n\
         \x20          resilience metrics vs the clean run (default app STN)\n\
         \x20 livelock [--seed N] [--rate 75|50]\n\
         \x20          inject an unbounded completion-loss livelock and show\n\
         \x20          the watchdog converting it into SimError::Stalled\n\
         \x20 smoke    [--seed N]\n\
         \x20          fast panic-free campaign subset (CI gate)"
    );
    ExitCode::from(2)
}

fn parse_rate(text: &str) -> Option<Oversubscription> {
    match text.trim_end_matches('%') {
        "75" => Some(Oversubscription::Rate75),
        "50" => Some(Oversubscription::Rate50),
        _ => None,
    }
}

struct Flags {
    seed: u64,
    rate: Oversubscription,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        seed: DEFAULT_SEED,
        rate: Oversubscription::Rate75,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                flags.seed = v.parse().map_err(|_| format!("bad --seed '{v}'"))?;
            }
            "--rate" => {
                let v = value("--rate")?;
                flags.rate = parse_rate(&v).ok_or_else(|| format!("unknown rate '{v}'"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            other => flags.positional.push(other.to_string()),
        }
    }
    Ok(flags)
}

/// The named fault plans a campaign sweeps. Each derives its RNG stream
/// from the campaign seed so the whole sweep replays from one number.
fn campaign_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("latency-storm", FaultPlan::latency_storm(seed)),
        ("congestion", FaultPlan::congestion(seed.wrapping_add(1))),
        (
            "completion-loss",
            FaultPlan::completion_loss(seed.wrapping_add(2)),
        ),
        (
            "signal-chaos",
            FaultPlan::signal_chaos(seed.wrapping_add(3)),
        ),
    ]
}

/// One (policy, plan) cell of a campaign: the chaos run compared against
/// the policy's clean run.
struct CampaignRow {
    app: &'static str,
    policy: &'static str,
    plan: &'static str,
    faults: u64,
    clean_cycles: u64,
    chaos_cycles: u64,
    injected_delay_cycles: u64,
    tail_latency_events: u64,
    congested_services: u64,
    completions_lost: u64,
    fallback_victims: u64,
    spurious_wrong_evictions: u64,
    faults_during_hir_outage: u64,
    degraded_entries: u64,
    degraded_faults: u64,
}

impl CampaignRow {
    /// Wall-clock inflation of the chaos run relative to the clean run.
    fn slowdown(&self) -> f64 {
        self.chaos_cycles as f64 / self.clean_cycles as f64
    }

    /// Cycles the chaos run needed beyond the clean run (recovery cost).
    fn recovery_cycles(&self) -> u64 {
        self.chaos_cycles.saturating_sub(self.clean_cycles)
    }

    /// Fraction of all faults handled in HPE's degraded fallback mode.
    fn degraded_residency(&self) -> f64 {
        if self.faults == 0 {
            0.0
        } else {
            self.degraded_faults as f64 / self.faults as f64
        }
    }

    fn to_json(&self) -> Json {
        json!({
            "app": self.app,
            "policy": self.policy,
            "plan": self.plan,
            "faults": self.faults,
            "clean_cycles": self.clean_cycles,
            "chaos_cycles": self.chaos_cycles,
            "slowdown": self.slowdown(),
            "recovery_cycles": self.recovery_cycles(),
            "injected_delay_cycles": self.injected_delay_cycles,
            "tail_latency_events": self.tail_latency_events,
            "congested_services": self.congested_services,
            "completions_lost": self.completions_lost,
            "fallback_victims": self.fallback_victims,
            "spurious_wrong_evictions": self.spurious_wrong_evictions,
            "faults_during_hir_outage": self.faults_during_hir_outage,
            "degraded_entries": self.degraded_entries,
            "degraded_faults": self.degraded_faults,
            "degraded_residency": self.degraded_residency(),
        })
    }
}

/// Runs `policies` x `plans` on `app` and collects one row per chaos run.
fn run_campaign(
    app: &App,
    rate: Oversubscription,
    policies: &[PolicyKind],
    plans: &[(&'static str, FaultPlan)],
) -> Result<Vec<CampaignRow>, SimError> {
    let cfg = bench_config();
    let mut rows = Vec::new();
    for &kind in policies {
        let clean = run_policy(&cfg, app, rate, kind)?;
        debug_assert!(
            !clean.stats.resilience.any(),
            "clean run must not record injection"
        );
        for (plan_name, plan) in plans {
            let chaos = run_policy_with_plan(&cfg, app, rate, kind, Some(plan))?;
            let res = &chaos.stats.resilience;
            rows.push(CampaignRow {
                app: clean.app,
                policy: clean.policy,
                plan: plan_name,
                faults: chaos.stats.faults(),
                clean_cycles: clean.stats.cycles,
                chaos_cycles: chaos.stats.cycles,
                injected_delay_cycles: res.injected_delay_cycles,
                tail_latency_events: res.tail_latency_events,
                congested_services: res.congested_services,
                completions_lost: res.completions_lost,
                fallback_victims: res.fallback_victims,
                spurious_wrong_evictions: res.spurious_wrong_evictions,
                faults_during_hir_outage: res.faults_during_hir_outage,
                degraded_entries: chaos.stats.policy.degraded_entries,
                degraded_faults: chaos.stats.policy.degraded_faults,
            });
        }
    }
    Ok(rows)
}

fn print_campaign(title: &str, rows: &[CampaignRow]) {
    let mut t = Table::new(
        title,
        &[
            "app",
            "policy",
            "plan",
            "faults",
            "slowdown",
            "recovery",
            "inj.delay",
            "tails",
            "congested",
            "lost",
            "fallback",
            "spurious",
            "degraded",
        ],
    );
    for r in rows {
        t.row(vec![
            r.app.to_string(),
            r.policy.to_string(),
            r.plan.to_string(),
            r.faults.to_string(),
            f2(r.slowdown()),
            r.recovery_cycles().to_string(),
            r.injected_delay_cycles.to_string(),
            r.tail_latency_events.to_string(),
            r.congested_services.to_string(),
            r.completions_lost.to_string(),
            r.fallback_victims.to_string(),
            r.spurious_wrong_evictions.to_string(),
            format!("{:.1}%", 100.0 * r.degraded_residency()),
        ]);
    }
    t.print();
}

fn cmd_campaign(flags: &Flags) -> Result<(), String> {
    let apps: Vec<&App> = if flags.positional.is_empty() {
        vec![registry::by_abbr("STN").expect("STN is registered")]
    } else {
        flags
            .positional
            .iter()
            .map(|abbr| registry::by_abbr(abbr).ok_or_else(|| format!("unknown app '{abbr}'")))
            .collect::<Result<_, _>>()?
    };
    let plans = campaign_plans(flags.seed);
    let mut rows = Vec::new();
    for app in &apps {
        eprintln!(
            "[campaign: {} at {}, seed {}, {} policies x {} plans]",
            app.abbr(),
            flags.rate.label(),
            flags.seed,
            PolicyKind::ALL.len(),
            plans.len()
        );
        rows.extend(
            run_campaign(app, flags.rate, &PolicyKind::ALL, &plans).map_err(|e| e.to_string())?,
        );
    }
    let total_faults: u64 = rows.iter().map(|r| r.faults).sum();
    print_campaign(
        format!(
            "chaos campaign (seed {}, {}, {} chaos runs, {} faults total)",
            flags.seed,
            flags.rate.label(),
            rows.len(),
            total_faults
        )
        .as_str(),
        &rows,
    );
    let json_rows: Vec<Json> = rows.iter().map(CampaignRow::to_json).collect();
    save_json("chaos-campaign", &json_rows.to_json());
    Ok(())
}

fn cmd_livelock(flags: &Flags) -> Result<(), String> {
    let app = registry::by_abbr("STN").expect("STN is registered");
    let cfg = bench_config();
    let plan = FaultPlan::livelock(flags.seed);
    eprintln!(
        "[injecting unbounded completion loss into {} under LRU at {}]",
        app.abbr(),
        flags.rate.label()
    );
    match run_policy_with_plan(&cfg, app, flags.rate, PolicyKind::Lru, Some(&plan)) {
        Err(SimError::Stalled { cycle, in_flight }) => {
            println!(
                "watchdog fired: SimError::Stalled at cycle {cycle} with {in_flight} \
                 in-flight faults (no forward progress)"
            );
            Ok(())
        }
        Err(other) => Err(format!("expected Stalled, got: {other}")),
        Ok(_) => Err("expected the injected livelock to stall the run".into()),
    }
}

fn cmd_smoke(flags: &Flags) -> Result<(), String> {
    let app = registry::by_abbr("STN").expect("STN is registered");
    let policies = [PolicyKind::Lru, PolicyKind::Rrip, PolicyKind::Hpe];
    let plans = campaign_plans(flags.seed);
    let rows = run_campaign(app, Oversubscription::Rate75, &policies, &plans)
        .map_err(|e| e.to_string())?;
    let mut injected = 0usize;
    for r in &rows {
        if r.injected_delay_cycles > 0
            || r.completions_lost > 0
            || r.faults_during_hir_outage > 0
            || r.spurious_wrong_evictions > 0
        {
            injected += 1;
        }
    }
    if injected == 0 {
        return Err("no chaos run recorded any injection; plans are inert".into());
    }
    let hpe_degraded = rows
        .iter()
        .any(|r| r.policy == "HPE" && r.plan == "signal-chaos" && r.degraded_faults > 0);
    if !hpe_degraded {
        return Err("HPE did not enter degraded mode under signal-chaos".into());
    }
    println!(
        "chaos smoke: {} runs, {} with injection, HPE degraded-mode exercised; no panics",
        rows.len(),
        injected
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let outcome = match cmd.as_str() {
        "campaign" => cmd_campaign(&flags),
        "livelock" => cmd_livelock(&flags),
        "smoke" => cmd_smoke(&flags),
        _ => {
            eprintln!("error: unknown command '{cmd}'");
            return usage();
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
