//! `hpe-chaos`: seeded fault-injection campaigns over the simulator.
//!
//! Runs every eviction policy under a set of replayable fault plans and
//! reports resilience metrics against the clean (no-injection) run of the
//! same configuration: slowdown, extra cycles to completion, injected
//! perturbation counters, and HPE's degraded-mode residency.
//!
//! ```sh
//! hpe-chaos campaign                       # all policies x all fault kinds (STN, 75%)
//! hpe-chaos campaign BFS --seed 7          # another app / another seed
//! hpe-chaos campaign --workers 8           # same cells fanned over 8 threads;
//!                                          # the merged report is byte-identical
//! hpe-chaos campaign --retry --fallback lru-shadow   # recovery machinery on
//! hpe-chaos livelock                       # watchdog demo: injected livelock -> Stalled
//! hpe-chaos livelock --retry               # same, with backoff -> RetriesExhausted
//! hpe-chaos resume                         # checkpoint mid-run, resume, verify equality
//! hpe-chaos smoke                          # fast panic-free subset for CI (sanitizer on)
//! hpe-chaos sanitize                       # invariant sanitizer zero-perturbation proof
//! hpe-chaos explore spec.json --workers 4  # fault-space exploration: enumerate fault
//!                                          # windows + seed batches, check invariants,
//!                                          # shrink failures to minimal repro files
//! hpe-chaos replay repro.json              # one-command deterministic counterexample replay
//! hpe-chaos tenants --tenants 4 --workers 2 # multi-tenant mix: quotas, admission control,
//!                                          # and (with --plan) fault blast-radius containment
//! ```
//!
//! Campaign results are saved as JSON under `target/paper-results/`
//! (`chaos-campaign.json`, `chaos-checkpoint.json`) for machine
//! consumption; identical seeds reproduce identical campaigns.
//!
//! Exit codes: 0 success, 1 a simulation failed (CI can gate on this),
//! 2 usage error.

use std::process::ExitCode;

use hpe_bench::{
    bench_config, campaign, check_containment, f2, replay_repro, repro_for, run_explore, run_mix,
    run_policy, run_policy_profiled, run_policy_recovering, save_json, MixOptions, PolicyKind,
    RecoveryOptions, Table, CONTAINMENT_APPS,
};
use hpe_core::{Hpe, HpeConfig};
use uvm_sim::{
    trace_for, ExploreSpec, FallbackVictim, FaultPlan, HirMode, ReproCase, RetryPolicy, Simulation,
    TenantMix, DEFAULT_PROFILE_CADENCE, DEFAULT_SANITIZER_CADENCE,
};
use uvm_types::{Oversubscription, SimError};
use uvm_util::{json, Json, JsonError, ToJson};
use uvm_workloads::{registry, App};

/// Default campaign seed (the paper's publication year, for no deeper
/// reason than reproducibility needs *some* pinned value).
const DEFAULT_SEED: u64 = 2019;

/// Default pause cycle for `resume` (well inside every campaign run).
const DEFAULT_RESUME_AT: u64 = 10_000_000;

/// How a command failed, mapped onto the process exit code.
enum CmdError {
    /// Bad arguments: exit 2, after printing usage.
    Usage(String),
    /// A simulation failed or an expectation did not hold: exit 1.
    Run(String),
}

impl From<SimError> for CmdError {
    fn from(e: SimError) -> Self {
        CmdError::Run(e.to_string())
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: hpe-chaos <command> [args]\n\
         \n\
         commands:\n\
         \x20 campaign [APP ...] [--seed N] [--rate 75|50] [--retry]\n\
         \x20          [--fallback min-page|lru-shadow] [--workers N]\n\
         \x20          run every policy under every fault plan and report\n\
         \x20          resilience metrics vs the clean run (default app STN);\n\
         \x20          --workers fans the cells over N threads with a\n\
         \x20          deterministic merge (same output for any N)\n\
         \x20 livelock [--seed N] [--rate 75|50] [--retry]\n\
         \x20          inject an unbounded completion-loss livelock and show\n\
         \x20          the watchdog converting it into SimError::Stalled\n\
         \x20          (or, with --retry, into SimError::RetriesExhausted)\n\
         \x20 resume   [APP] [--seed N] [--rate 75|50] [--plan NAME]\n\
         \x20          [--at CYCLE] [--retry] [--fallback min-page|lru-shadow]\n\
         \x20          run HPE under a fault plan, checkpoint at CYCLE,\n\
         \x20          resume from the checkpoint in a fresh simulation and\n\
         \x20          verify the stats match the uninterrupted run\n\
         \x20 smoke    [--seed N]\n\
         \x20          fast panic-free campaign subset with the runtime\n\
         \x20          invariant sanitizer enabled (CI gate)\n\
         \x20 sanitize [APP ...] [--rate 75|50] [--sanitize CADENCE]\n\
         \x20          run HPE with the invariant sanitizer on and off\n\
         \x20          (default apps STN SGM) and verify the sanitizer\n\
         \x20          leaves SimStats byte-identical\n\
         \x20 profile  [APP ...] [--rate 75|50]\n\
         \x20          run HPE with the cycle-attribution profiler on and\n\
         \x20          off (default apps STN SGM) and verify the profiler\n\
         \x20          leaves SimStats byte-identical and its timeline\n\
         \x20          accounts conserve total cycles\n\
         \x20 explore  SPEC.json [--workers N]\n\
         \x20          fault-space exploration: enumerate fault-window\n\
         \x20          placements and seeded plan batches from the spec,\n\
         \x20          check every invariant on every run, shrink failures\n\
         \x20          to minimal counterexamples and save replayable repro\n\
         \x20          files; the merged coverage report is byte-identical\n\
         \x20          for any worker count (exit 1 if counterexamples)\n\
         \x20 replay   REPRO.json\n\
         \x20          re-run a shrunk counterexample deterministically and\n\
         \x20          verify it reproduces the recorded violation verbatim\n\
         \x20 tenants  [APP ...] [--tenants N] [--quota PCT] [--hir per-tenant|shared]\n\
         \x20          [--policy NAME] [--seed N] [--workers N]\n\
         \x20          [--plan NAME [--target TENANT]]\n\
         \x20          run N tenants (cycling the listed apps; default\n\
         \x20          STN/MVT/CUT) through admission control against a\n\
         \x20          shared residency pool and print per-tenant outcomes\n\
         \x20          and fairness metrics; with --plan, scope the fault\n\
         \x20          plan to --target (default tenant 0) and verify the\n\
         \x20          blast radius: every other tenant's stats must be\n\
         \x20          byte-identical to the fault-free mix (exit 1 on leak)\n\
         \n\
         common flags: --adaptive makes --retry use the loss-adaptive\n\
         backoff policy (tunes delay online from the observed\n\
         completion-loss rate) instead of fixed exponential backoff\n\
         \n\
         exit codes: 0 ok, 1 simulation failure, 2 usage error"
    );
    ExitCode::from(2)
}

fn parse_rate(text: &str) -> Option<Oversubscription> {
    match text.trim_end_matches('%') {
        "75" => Some(Oversubscription::Rate75),
        "50" => Some(Oversubscription::Rate50),
        _ => None,
    }
}

struct Flags {
    seed: u64,
    rate: Oversubscription,
    retry: bool,
    adaptive: bool,
    fallback: FallbackVictim,
    plan: Option<String>,
    at: u64,
    sanitize: Option<u64>,
    workers: usize,
    tenants: u64,
    quota: u64,
    hir: HirMode,
    policy: Option<String>,
    target: Option<u64>,
    positional: Vec<String>,
}

impl Flags {
    fn retry_policy(&self) -> RetryPolicy {
        if self.adaptive {
            RetryPolicy::adaptive()
        } else {
            RetryPolicy::default()
        }
    }

    fn recovery(&self) -> RecoveryOptions {
        RecoveryOptions {
            retry: self.retry.then(|| self.retry_policy()),
            fallback: self.fallback,
            sanitize: self.sanitize,
            profile: None,
        }
    }
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        seed: DEFAULT_SEED,
        rate: Oversubscription::Rate75,
        retry: false,
        adaptive: false,
        fallback: FallbackVictim::MinPage,
        plan: None,
        at: DEFAULT_RESUME_AT,
        sanitize: None,
        workers: 1,
        tenants: 4,
        quota: 75,
        hir: HirMode::PerTenant,
        policy: None,
        target: None,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                flags.seed = v.parse().map_err(|_| format!("bad --seed '{v}'"))?;
            }
            "--rate" => {
                let v = value("--rate")?;
                flags.rate = parse_rate(&v).ok_or_else(|| format!("unknown rate '{v}'"))?;
            }
            "--retry" => flags.retry = true,
            // --adaptive implies --retry: there is no backoff to adapt
            // without the retry machinery on.
            "--adaptive" => {
                flags.retry = true;
                flags.adaptive = true;
            }
            "--fallback" => {
                let v = value("--fallback")?;
                flags.fallback = FallbackVictim::parse(&v).ok_or_else(|| {
                    format!("unknown fallback '{v}' (expected min-page or lru-shadow)")
                })?;
            }
            "--plan" => flags.plan = Some(value("--plan")?),
            "--sanitize" => {
                let v = value("--sanitize")?;
                let cadence: u64 = v.parse().map_err(|_| format!("bad --sanitize '{v}'"))?;
                flags.sanitize = Some(cadence);
            }
            "--at" => {
                let v = value("--at")?;
                flags.at = v.parse().map_err(|_| format!("bad --at '{v}'"))?;
            }
            "--workers" => {
                let v = value("--workers")?;
                flags.workers = v.parse().map_err(|_| format!("bad --workers '{v}'"))?;
            }
            "--tenants" => {
                let v = value("--tenants")?;
                flags.tenants = v.parse().map_err(|_| format!("bad --tenants '{v}'"))?;
            }
            "--quota" => {
                let v = value("--quota")?;
                flags.quota = v
                    .trim_end_matches('%')
                    .parse()
                    .map_err(|_| format!("bad --quota '{v}'"))?;
            }
            "--hir" => {
                let v = value("--hir")?;
                flags.hir = HirMode::parse(&v)
                    .ok_or_else(|| format!("unknown HIR mode '{v}' (per-tenant or shared)"))?;
            }
            "--policy" => flags.policy = Some(value("--policy")?),
            "--target" => {
                let v = value("--target")?;
                flags.target = Some(v.parse().map_err(|_| format!("bad --target '{v}'"))?);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            other => flags.positional.push(other.to_string()),
        }
    }
    Ok(flags)
}

/// The named fault plans a campaign sweeps, shared with the parallel
/// engine's [`campaign::chaos_plan_set`] (minus its clean control cell).
/// Each derives its RNG stream from the campaign seed so the whole sweep
/// replays from one number.
fn campaign_plans(seed: u64) -> Vec<(String, FaultPlan)> {
    campaign::chaos_plan_set(seed)
        .into_iter()
        .filter_map(|spec| spec.plan.clone().map(|plan| (spec.name, plan)))
        .collect()
}

/// Resolves a `--plan` name against the campaign plan set.
fn plan_by_name(name: &str, seed: u64) -> Option<FaultPlan> {
    campaign_plans(seed)
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, p)| p)
}

/// One (policy, plan) cell of a campaign: the chaos run compared against
/// the policy's clean run.
struct CampaignRow {
    app: String,
    policy: String,
    plan: String,
    faults: u64,
    clean_cycles: u64,
    chaos_cycles: u64,
    injected_delay_cycles: u64,
    tail_latency_events: u64,
    congested_services: u64,
    completions_lost: u64,
    fallback_victims: u64,
    spurious_wrong_evictions: u64,
    faults_during_hir_outage: u64,
    degraded_entries: u64,
    degraded_faults: u64,
    victims_dropped: u64,
    delayed_hir_flushes: u64,
    hir_flushes_lost: u64,
    circuit_breaker_trips: u64,
    retry_attempts: u64,
    retry_backoff_cycles: u64,
}

impl CampaignRow {
    /// Wall-clock inflation of the chaos run relative to the clean run.
    fn slowdown(&self) -> f64 {
        self.chaos_cycles as f64 / self.clean_cycles as f64
    }

    /// Cycles the chaos run needed beyond the clean run (recovery cost).
    fn recovery_cycles(&self) -> u64 {
        self.chaos_cycles.saturating_sub(self.clean_cycles)
    }

    /// Fraction of all faults handled in HPE's degraded fallback mode.
    fn degraded_residency(&self) -> f64 {
        if self.faults == 0 {
            0.0
        } else {
            self.degraded_faults as f64 / self.faults as f64
        }
    }

    fn to_json(&self) -> Json {
        json!({
            "app": self.app.as_str(),
            "policy": self.policy.as_str(),
            "plan": self.plan.as_str(),
            "faults": self.faults,
            "clean_cycles": self.clean_cycles,
            "chaos_cycles": self.chaos_cycles,
            "slowdown": self.slowdown(),
            "recovery_cycles": self.recovery_cycles(),
            "injected_delay_cycles": self.injected_delay_cycles,
            "tail_latency_events": self.tail_latency_events,
            "congested_services": self.congested_services,
            "completions_lost": self.completions_lost,
            "fallback_victims": self.fallback_victims,
            "spurious_wrong_evictions": self.spurious_wrong_evictions,
            "faults_during_hir_outage": self.faults_during_hir_outage,
            "degraded_entries": self.degraded_entries,
            "degraded_faults": self.degraded_faults,
            "degraded_residency": self.degraded_residency(),
            "victims_dropped": self.victims_dropped,
            "delayed_hir_flushes": self.delayed_hir_flushes,
            "hir_flushes_lost": self.hir_flushes_lost,
            "circuit_breaker_trips": self.circuit_breaker_trips,
            "retry_attempts": self.retry_attempts,
            "retry_backoff_cycles": self.retry_backoff_cycles,
        })
    }
}

/// Runs `policies` x `plans` on `app` and collects one row per chaos run.
/// This is the single-threaded path `smoke` uses; `campaign` itself goes
/// through the parallel engine (`campaign::run_campaign`).
fn run_campaign(
    app: &App,
    rate: Oversubscription,
    policies: &[PolicyKind],
    plans: &[(String, FaultPlan)],
    recovery: RecoveryOptions,
) -> Result<Vec<CampaignRow>, SimError> {
    let cfg = bench_config();
    let mut rows = Vec::new();
    for &kind in policies {
        let clean = run_policy(&cfg, app, rate, kind)?;
        debug_assert!(
            !clean.stats.resilience.any(),
            "clean run must not record injection"
        );
        for (plan_name, plan) in plans {
            let chaos = run_policy_recovering(&cfg, app, rate, kind, Some(plan), recovery)?;
            let res = &chaos.stats.resilience;
            rows.push(CampaignRow {
                app: clean.app.to_string(),
                policy: clean.policy.to_string(),
                plan: plan_name.clone(),
                faults: chaos.stats.faults(),
                clean_cycles: clean.stats.cycles,
                chaos_cycles: chaos.stats.cycles,
                injected_delay_cycles: res.injected_delay_cycles,
                tail_latency_events: res.tail_latency_events,
                congested_services: res.congested_services,
                completions_lost: res.completions_lost,
                fallback_victims: res.fallback_victims,
                spurious_wrong_evictions: res.spurious_wrong_evictions,
                faults_during_hir_outage: res.faults_during_hir_outage,
                degraded_entries: chaos.stats.policy.degraded_entries,
                degraded_faults: chaos.stats.policy.degraded_faults,
                victims_dropped: res.victims_dropped,
                delayed_hir_flushes: res.delayed_hir_flushes,
                hir_flushes_lost: res.hir_flushes_lost,
                circuit_breaker_trips: res.circuit_breaker_trips,
                retry_attempts: res.retry_attempts,
                retry_backoff_cycles: res.retry_backoff_cycles,
            });
        }
    }
    Ok(rows)
}

fn print_campaign(title: &str, rows: &[CampaignRow]) {
    let mut t = Table::new(
        title,
        &[
            "app",
            "policy",
            "plan",
            "faults",
            "slowdown",
            "recovery",
            "inj.delay",
            "tails",
            "congested",
            "lost",
            "fallback",
            "spurious",
            "dropped",
            "delayed",
            "retried",
            "degraded",
        ],
    );
    for r in rows {
        t.row(vec![
            r.app.to_string(),
            r.policy.to_string(),
            r.plan.to_string(),
            r.faults.to_string(),
            f2(r.slowdown()),
            r.recovery_cycles().to_string(),
            r.injected_delay_cycles.to_string(),
            r.tail_latency_events.to_string(),
            r.congested_services.to_string(),
            r.completions_lost.to_string(),
            r.fallback_victims.to_string(),
            r.spurious_wrong_evictions.to_string(),
            r.victims_dropped.to_string(),
            r.delayed_hir_flushes.to_string(),
            r.retry_attempts.to_string(),
            format!("{:.1}%", 100.0 * r.degraded_residency()),
        ]);
    }
    t.print();
}

fn cmd_campaign(flags: &Flags) -> Result<(), CmdError> {
    let apps: Vec<String> = if flags.positional.is_empty() {
        vec!["STN".to_string()]
    } else {
        flags.positional.clone()
    };
    // The engine's plan set keeps the clean control cell in the grid, so
    // every chaos row's baseline comes out of the same merged report.
    let spec = campaign::CampaignSpec {
        apps,
        policies: PolicyKind::ALL.to_vec(),
        rates: vec![flags.rate],
        plans: campaign::chaos_plan_set(flags.seed),
        recovery: flags.recovery(),
        seed: flags.seed,
    };
    eprintln!(
        "[campaign: {} app(s) at {}, seed {}, {} policies x {} plans, retry {}, \
         fallback {}, {} worker(s)]",
        spec.apps.len(),
        flags.rate.label(),
        flags.seed,
        spec.policies.len(),
        spec.plans.len(),
        if flags.retry { "on" } else { "off" },
        flags.fallback.label(),
        flags.workers.max(1),
    );
    let pool = campaign::PoolOptions {
        workers: flags.workers,
        ..campaign::PoolOptions::default()
    };
    let outcome = campaign::run_campaign(&bench_config(), &spec, &pool, None)
        .map_err(|e| CmdError::Run(e.to_string()))?;
    let report = outcome.report().map_err(|e| CmdError::Run(e.to_string()))?;

    let rate_label = flags.rate.label();
    let mut rows = Vec::new();
    for abbr in &spec.apps {
        for &kind in &spec.policies {
            let clean = report
                .find(&campaign::grid_key(
                    abbr,
                    kind.label(),
                    &rate_label,
                    "clean",
                ))
                .ok_or_else(|| CmdError::Run(format!("missing clean cell for {abbr}")))?;
            if !clean.ok {
                return Err(CmdError::Run(format!(
                    "clean run failed for {abbr}/{}: {}",
                    kind.label(),
                    clean.error
                )));
            }
            debug_assert!(
                !clean.stats.resilience.any(),
                "clean run must not record injection"
            );
            for plan in spec.plans.iter().filter(|p| p.plan.is_some()) {
                let chaos = report
                    .find(&campaign::grid_key(
                        abbr,
                        kind.label(),
                        &rate_label,
                        &plan.name,
                    ))
                    .ok_or_else(|| {
                        CmdError::Run(format!("missing {} cell for {abbr}", plan.name))
                    })?;
                if !chaos.ok {
                    return Err(CmdError::Run(format!(
                        "chaos run failed for {}: {}",
                        chaos.key, chaos.error
                    )));
                }
                let res = &chaos.stats.resilience;
                rows.push(CampaignRow {
                    app: chaos.app.clone(),
                    policy: chaos.policy.clone(),
                    plan: plan.name.clone(),
                    faults: chaos.stats.faults(),
                    clean_cycles: clean.stats.cycles,
                    chaos_cycles: chaos.stats.cycles,
                    injected_delay_cycles: res.injected_delay_cycles,
                    tail_latency_events: res.tail_latency_events,
                    congested_services: res.congested_services,
                    completions_lost: res.completions_lost,
                    fallback_victims: res.fallback_victims,
                    spurious_wrong_evictions: res.spurious_wrong_evictions,
                    faults_during_hir_outage: res.faults_during_hir_outage,
                    degraded_entries: chaos.stats.policy.degraded_entries,
                    degraded_faults: chaos.stats.policy.degraded_faults,
                    victims_dropped: res.victims_dropped,
                    delayed_hir_flushes: res.delayed_hir_flushes,
                    hir_flushes_lost: res.hir_flushes_lost,
                    circuit_breaker_trips: res.circuit_breaker_trips,
                    retry_attempts: res.retry_attempts,
                    retry_backoff_cycles: res.retry_backoff_cycles,
                });
            }
        }
    }
    let total_faults: u64 = rows.iter().map(|r| r.faults).sum();
    print_campaign(
        format!(
            "chaos campaign (seed {}, {}, {} chaos runs, {} faults total, fingerprint {})",
            flags.seed,
            flags.rate.label(),
            rows.len(),
            total_faults,
            report.fingerprint
        )
        .as_str(),
        &rows,
    );
    let json_rows: Vec<Json> = rows.iter().map(CampaignRow::to_json).collect();
    save_json("chaos-campaign", &json_rows.to_json());
    Ok(())
}

fn cmd_livelock(flags: &Flags) -> Result<(), CmdError> {
    let app = registry::by_abbr("STN").expect("STN is registered");
    let cfg = bench_config();
    let plan = FaultPlan::livelock(flags.seed);
    eprintln!(
        "[injecting unbounded completion loss into {} under LRU at {}{}]",
        app.abbr(),
        flags.rate.label(),
        if flags.retry { ", retry policy on" } else { "" }
    );
    let outcome = run_policy_recovering(
        &cfg,
        app,
        flags.rate,
        PolicyKind::Lru,
        Some(&plan),
        flags.recovery(),
    );
    match (flags.retry, outcome) {
        (false, Err(SimError::Stalled { cycle, in_flight })) => {
            println!(
                "watchdog fired: SimError::Stalled at cycle {cycle} with {in_flight} \
                 in-flight faults (no forward progress)"
            );
            Ok(())
        }
        (
            true,
            Err(SimError::RetriesExhausted {
                page,
                cycle,
                attempts,
            }),
        ) => {
            println!(
                "retry policy gave up: SimError::RetriesExhausted for page {page} at \
                 cycle {cycle} after {attempts} attempts (backoff capped, driver freed)"
            );
            Ok(())
        }
        (false, Err(other)) => Err(CmdError::Run(format!("expected Stalled, got: {other}"))),
        (true, Err(other)) => Err(CmdError::Run(format!(
            "expected RetriesExhausted, got: {other}"
        ))),
        (_, Ok(_)) => Err(CmdError::Run(
            "expected the injected livelock to abort the run".into(),
        )),
    }
}

/// `resume`: run HPE under a fault plan three ways — straight through,
/// paused at `--at` to take a checkpoint, and a fresh simulation resumed
/// from that checkpoint — then verify the resumed stats are byte-identical
/// to the straight run's.
fn cmd_resume(flags: &Flags) -> Result<(), CmdError> {
    let abbr = flags.positional.first().map_or("STN", String::as_str);
    let app =
        registry::by_abbr(abbr).ok_or_else(|| CmdError::Usage(format!("unknown app '{abbr}'")))?;
    let plan_name = flags.plan.as_deref().unwrap_or("signal-chaos");
    let plan = plan_by_name(plan_name, flags.seed).ok_or_else(|| {
        CmdError::Usage(format!(
            "unknown plan '{plan_name}' (expected one of: {})",
            campaign_plans(0)
                .iter()
                .map(|(n, _)| n.clone())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })?;

    let cfg = bench_config();
    let trace = trace_for(&cfg, app);
    let capacity = flags.rate.capacity_pages(app.footprint_pages());
    let build = || -> Result<Simulation<Hpe>, SimError> {
        let hpe = Hpe::new(HpeConfig::from_sim(&cfg))?;
        let mut sim = Simulation::new(cfg.clone(), &trace, hpe, capacity)?;
        sim.set_fault_plan(plan.clone())?;
        if let Some(rp) = flags.recovery().retry {
            sim.set_retry_policy(rp)?;
        }
        sim.set_fallback_victim(flags.fallback);
        Ok(sim)
    };

    eprintln!(
        "[resume: HPE on {} at {} under {plan_name} (seed {}), checkpoint at cycle {}]",
        app.abbr(),
        flags.rate.label(),
        flags.seed,
        flags.at
    );
    let straight = build()?.run()?.stats;

    let mut paused = build()?;
    let done = paused.run_until(flags.at)?;
    let ckpt = paused.checkpoint();
    save_json("chaos-checkpoint", &ckpt);
    if done {
        eprintln!(
            "note: the run completed before cycle {}; the checkpoint captures its final state",
            flags.at
        );
    }
    println!(
        "checkpointed at cycle {} ({} faults serviced, {} cycles simulated)",
        ckpt.cycle, ckpt.stats.driver.faults_serviced, ckpt.stats.cycles
    );

    let mut resumed = build()?;
    resumed.resume(&ckpt)?;
    let stats = resumed.finish()?.stats;

    let (a, b) = (stats.to_json().to_string(), straight.to_json().to_string());
    if a != b {
        return Err(CmdError::Run(format!(
            "resumed stats diverged from the uninterrupted run\nresumed:  {a}\nstraight: {b}"
        )));
    }
    println!(
        "resume verified: {} cycles, {} faults — byte-identical to the uninterrupted run",
        stats.cycles,
        stats.faults()
    );
    Ok(())
}

fn cmd_smoke(flags: &Flags) -> Result<(), CmdError> {
    let app = registry::by_abbr("STN").expect("STN is registered");
    let policies = [PolicyKind::Lru, PolicyKind::Rrip, PolicyKind::Hpe];
    let plans = campaign_plans(flags.seed);
    // The smoke gate runs with the invariant sanitizer on: a corrupted
    // residency count or broken policy structure under injection fails
    // CI as a typed InvariantViolated, not a wrong number downstream.
    let recovery = RecoveryOptions {
        sanitize: Some(flags.sanitize.unwrap_or(DEFAULT_SANITIZER_CADENCE)),
        ..RecoveryOptions::default()
    };
    let rows = run_campaign(app, Oversubscription::Rate75, &policies, &plans, recovery)?;
    let mut injected = 0usize;
    for r in &rows {
        if r.injected_delay_cycles > 0
            || r.completions_lost > 0
            || r.faults_during_hir_outage > 0
            || r.spurious_wrong_evictions > 0
            || r.victims_dropped > 0
            || r.delayed_hir_flushes > 0
        {
            injected += 1;
        }
    }
    if injected == 0 {
        return Err(CmdError::Run(
            "no chaos run recorded any injection; plans are inert".into(),
        ));
    }
    let hpe_degraded = rows
        .iter()
        .any(|r| r.policy == "HPE" && r.plan == "signal-chaos" && r.degraded_faults > 0);
    if !hpe_degraded {
        return Err(CmdError::Run(
            "HPE did not enter degraded mode under signal-chaos".into(),
        ));
    }
    let fallback_exercised = rows
        .iter()
        .any(|r| r.plan == "victim-drop" && r.victims_dropped > 0 && r.fallback_victims > 0);
    if !fallback_exercised {
        return Err(CmdError::Run(
            "victim-drop did not exercise the fallback victim path".into(),
        ));
    }
    let delay_exercised = rows
        .iter()
        .any(|r| r.policy == "HPE" && r.plan == "partial-outage" && r.delayed_hir_flushes > 0);
    if !delay_exercised {
        return Err(CmdError::Run(
            "partial-outage did not delay any HIR flush".into(),
        ));
    }
    println!(
        "chaos smoke: {} runs, {} with injection, HPE degraded-mode, fallback-victim \
         and delayed-flush paths exercised; sanitizer on, no panics",
        rows.len(),
        injected
    );
    Ok(())
}

/// `sanitize`: prove the runtime invariant sanitizer is observation-only.
/// For each app, run HPE once with the sanitizer off and once with it on
/// (at `--sanitize` cadence) and require byte-identical `SimStats` JSON.
fn cmd_sanitize(flags: &Flags) -> Result<(), CmdError> {
    let cfg = bench_config();
    let cadence = flags.sanitize.unwrap_or(DEFAULT_SANITIZER_CADENCE);
    let abbrs: Vec<&str> = if flags.positional.is_empty() {
        vec!["STN", "SGM"]
    } else {
        flags.positional.iter().map(String::as_str).collect()
    };
    for abbr in abbrs {
        let app = registry::by_abbr(abbr)
            .ok_or_else(|| CmdError::Usage(format!("unknown app '{abbr}'")))?;
        let off = run_policy(&cfg, app, flags.rate, PolicyKind::Hpe)?;
        let on = run_policy_recovering(
            &cfg,
            app,
            flags.rate,
            PolicyKind::Hpe,
            None,
            RecoveryOptions {
                sanitize: Some(cadence),
                ..RecoveryOptions::default()
            },
        )?;
        let (a, b) = (
            on.stats.to_json().to_string(),
            off.stats.to_json().to_string(),
        );
        if a != b {
            return Err(CmdError::Run(format!(
                "sanitizer perturbed {abbr}: stats diverged\nsanitized: {a}\nplain:     {b}"
            )));
        }
        println!(
            "{abbr}: {} cycles, {} faults — sanitizer (cadence {cadence}) left \
             SimStats byte-identical",
            on.stats.cycles,
            on.stats.faults()
        );
    }
    Ok(())
}

/// `profile`: prove the cycle-attribution profiler is observation-only.
///
/// Runs HPE with the profiler off, then on, and requires (a) byte-identical
/// `SimStats` JSON and (b) the profiler's timeline accounts to sum exactly
/// to the run's total cycles (the conservation law the breakdown rests on).
fn cmd_profile(flags: &Flags) -> Result<(), CmdError> {
    let cfg = bench_config();
    let abbrs: Vec<&str> = if flags.positional.is_empty() {
        vec!["STN", "SGM"]
    } else {
        flags.positional.iter().map(String::as_str).collect()
    };
    for abbr in abbrs {
        let app = registry::by_abbr(abbr)
            .ok_or_else(|| CmdError::Usage(format!("unknown app '{abbr}'")))?;
        let off = run_policy(&cfg, app, flags.rate, PolicyKind::Hpe)?;
        let (on, profile) = run_policy_profiled(
            &cfg,
            app,
            flags.rate,
            PolicyKind::Hpe,
            DEFAULT_PROFILE_CADENCE,
        )?;
        let (a, b) = (
            on.stats.to_json().to_string(),
            off.stats.to_json().to_string(),
        );
        if a != b {
            return Err(CmdError::Run(format!(
                "profiler perturbed {abbr}: stats diverged\nprofiled: {a}\nplain:    {b}"
            )));
        }
        if profile.timeline_sum() != profile.total_cycles {
            return Err(CmdError::Run(format!(
                "profiler accounts for {abbr} do not conserve: timeline sum {} vs {} total cycles",
                profile.timeline_sum(),
                profile.total_cycles
            )));
        }
        println!(
            "{abbr}: {} cycles, {} faults — profiler left SimStats byte-identical; \
             timeline accounts conserve ({} driver-idle cycles skippable)",
            on.stats.cycles,
            on.stats.faults(),
            profile.driver_idle()
        );
    }
    Ok(())
}

/// Loads a JSON document from `path` through a strict decoder — unknown
/// or misspelled fields come back as actionable usage errors, never as
/// silently-ignored keys.
fn load_json<T>(
    path: &str,
    what: &str,
    parse: impl FnOnce(&Json) -> Result<T, JsonError>,
) -> Result<T, CmdError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CmdError::Usage(format!("cannot read {what} '{path}': {e}")))?;
    let json = Json::parse(&text)
        .map_err(|e| CmdError::Usage(format!("{what} '{path}' is not valid JSON: {e}")))?;
    parse(&json).map_err(|e| CmdError::Usage(format!("bad {what} '{path}': {e}")))
}

/// `explore`: run the fault-space exploration engine over a spec file,
/// shrink any failures, and save the coverage report plus one replayable
/// repro file per counterexample.
fn cmd_explore(flags: &Flags) -> Result<(), CmdError> {
    let Some(path) = flags.positional.first() else {
        return Err(CmdError::Usage("explore needs a SPEC.json path".into()));
    };
    let spec: ExploreSpec = load_json(path, "explore spec", ExploreSpec::from_json_strict)?;
    eprintln!(
        "[explore: {} under {} at {}%, invariants [{}], {} worker(s)]",
        spec.app,
        spec.policy,
        spec.rate,
        spec.invariant_set().join(", "),
        flags.workers.max(1),
    );
    let mut progress = std::io::stderr();
    let report = run_explore(
        &bench_config(),
        &spec,
        flags.workers,
        Some(&mut progress as &mut dyn std::io::Write),
    )
    .map_err(|e| CmdError::Run(e.to_string()))?;
    save_json("explore-report", &report);
    println!(
        "explored {} case(s) ({} fixture, {} window, {} batch; {} invalid placements \
         skipped) with {} run(s), {} invariant check(s), {} shrink probe(s)",
        report.cases,
        report.fixture_cases,
        report.window_cases,
        report.batch_cases,
        report.skipped_invalid,
        report.runs,
        report.invariant_checks,
        report.shrink_probes,
    );
    if report.counterexamples.is_empty() {
        println!("no counterexamples: every run upheld every selected invariant");
        return Ok(());
    }
    for (i, cx) in report.counterexamples.iter().enumerate() {
        let repro = repro_for(&spec, cx);
        let name = format!("explore-repro-{i}");
        save_json(&name, &repro);
        println!(
            "counterexample {i} ({}): invariant `{}` violated — {}\n\
             \x20 shrunk to {} window(s) in {} probe(s); replay with:\n\
             \x20   hpe-chaos replay target/paper-results/{name}.json",
            cx.label,
            cx.invariant,
            cx.error,
            cx.plan.windows.len(),
            cx.probes,
        );
    }
    Err(CmdError::Run(format!(
        "{} counterexample(s) found",
        report.counterexamples.len()
    )))
}

/// `replay`: re-run a shrunk counterexample and verify it reproduces the
/// recorded violation byte-for-byte.
fn cmd_replay(flags: &Flags) -> Result<(), CmdError> {
    let Some(path) = flags.positional.first() else {
        return Err(CmdError::Usage("replay needs a REPRO.json path".into()));
    };
    let repro: ReproCase = load_json(path, "repro case", ReproCase::from_json_strict)?;
    eprintln!(
        "[replay: {} under {} at {}%, expecting `{}` violation]",
        repro.app, repro.policy, repro.rate, repro.invariant
    );
    match replay_repro(&bench_config(), &repro).map_err(|e| CmdError::Run(e.to_string()))? {
        Some((invariant, error)) if invariant == repro.invariant && error == repro.error => {
            println!("reproduced: invariant `{invariant}` violated — {error}");
            Ok(())
        }
        Some((invariant, error)) => Err(CmdError::Run(format!(
            "violation differs from the recorded one\ngot:      `{invariant}`: {error}\n\
             recorded: `{}`: {}",
            repro.invariant, repro.error
        ))),
        None => Err(CmdError::Run(format!(
            "the run came back clean; recorded `{}` violation did not reproduce",
            repro.invariant
        ))),
    }
}

/// `tenants`: run a multi-tenant mix through admission control and print
/// per-tenant outcomes plus fairness metrics. With `--plan`, the fault
/// plan is scoped to `--target` and the blast radius is verified: every
/// non-target tenant's stats must be byte-identical to the fault-free mix.
fn cmd_tenants(flags: &Flags) -> Result<(), CmdError> {
    let pool: Vec<&str> = if flags.positional.is_empty() {
        CONTAINMENT_APPS.to_vec()
    } else {
        flags.positional.iter().map(String::as_str).collect()
    };
    for abbr in &pool {
        registry::by_abbr(abbr).ok_or_else(|| CmdError::Usage(format!("unknown app '{abbr}'")))?;
    }
    let apps: Vec<&str> = (0..flags.tenants)
        .map(|i| pool[(i as usize) % pool.len()])
        .collect();
    let mut mix = TenantMix::uniform(&apps, flags.quota, 1_000, flags.seed);
    mix.hir_mode = flags.hir;
    mix.validate().map_err(|e| CmdError::Usage(e.to_string()))?;
    let policy = match flags.policy.as_deref() {
        None => PolicyKind::Hpe,
        Some(name) => PolicyKind::parse(name)
            .ok_or_else(|| CmdError::Usage(format!("unknown policy '{name}'")))?,
    };

    let plan = match &flags.plan {
        None => None,
        Some(name) => Some((
            name.clone(),
            plan_by_name(name, flags.seed).ok_or_else(|| {
                CmdError::Usage(format!(
                    "unknown plan '{name}' (expected one of: {})",
                    campaign_plans(0)
                        .iter()
                        .map(|(n, _)| n.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })?,
        )),
    };
    let target = flags.target.unwrap_or(0);

    eprintln!(
        "[tenants: {} tenant(s) over {{{}}} at {}% quota, {} HIR, policy {}, seed {}, \
         {} worker(s){}]",
        flags.tenants,
        pool.join(", "),
        flags.quota,
        flags.hir.label(),
        policy.label(),
        flags.seed,
        flags.workers.max(1),
        match &plan {
            Some((name, _)) => format!(", plan {name} scoped to T{target}"),
            None => String::new(),
        },
    );

    let cfg = bench_config();
    let baseline_opts = MixOptions {
        policy,
        workers: flags.workers,
        ..MixOptions::default()
    };
    let baseline = run_mix(&cfg, &mix, &baseline_opts).map_err(|e| CmdError::Run(e.to_string()))?;

    let mut t = Table::new(
        format!(
            "tenant mix (fingerprint {}, makespan {}, {} rejected, {} delayed)",
            baseline.fingerprint, baseline.makespan, baseline.rejected, baseline.delayed
        )
        .as_str(),
        &[
            "tenant", "app", "quota", "arrival", "admitted", "outcome", "ok", "cycles", "slowdown",
        ],
    );
    for row in &baseline.tenants {
        t.row(vec![
            row.tenant.to_string(),
            row.app.clone(),
            row.quota_pages.to_string(),
            row.arrival.to_string(),
            row.admitted.to_string(),
            row.admission.clone(),
            if row.ok {
                "yes".into()
            } else {
                format!("no: {}", row.error)
            },
            row.stats.cycles.to_string(),
            f2(row.slowdown()),
        ]);
    }
    t.print();
    println!(
        "fairness: p99 slowdown {}, aggregate throughput {} instr/kcycle",
        f2(baseline.p99_slowdown()),
        f2(baseline.throughput()),
    );
    save_json("tenant-mix", &baseline);

    let Some((plan_name, plan)) = plan else {
        return Ok(());
    };
    if !mix.tenants.iter().any(|t| t.id == target) {
        return Err(CmdError::Usage(format!(
            "--target {target} is not part of the mix (tenants 0..{})",
            flags.tenants
        )));
    }
    let faulted_opts = MixOptions {
        policy,
        plan: Some(plan),
        plan_name: plan_name.clone(),
        fault_tenant: Some(target),
        workers: flags.workers,
        ..MixOptions::default()
    };
    let faulted = run_mix(&cfg, &mix, &faulted_opts).map_err(|e| CmdError::Run(e.to_string()))?;
    save_json("tenant-mix-faulted", &faulted);
    check_containment(&baseline, &faulted).map_err(CmdError::Run)?;
    let degraded = faulted
        .tenants
        .iter()
        .find(|r| r.tenant.0 == target)
        .map(|r| {
            let clean = baseline
                .tenants
                .iter()
                .find(|b| b.tenant.0 == target)
                .map(|b| b.stats.cycles)
                .unwrap_or(0);
            (r.stats.cycles, clean)
        });
    match degraded {
        Some((chaos, clean)) if chaos != clean => println!(
            "containment verified: {plan_name} scoped to T{target} ({clean} -> {chaos} \
             cycles); every other tenant byte-identical to the fault-free mix"
        ),
        _ => println!(
            "containment verified: every non-target tenant byte-identical to the \
             fault-free mix ({plan_name} left T{target} unperturbed this seed)"
        ),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let outcome = match cmd.as_str() {
        "campaign" => cmd_campaign(&flags),
        "livelock" => cmd_livelock(&flags),
        "resume" => cmd_resume(&flags),
        "smoke" => cmd_smoke(&flags),
        "sanitize" => cmd_sanitize(&flags),
        "profile" => cmd_profile(&flags),
        "explore" => cmd_explore(&flags),
        "replay" => cmd_replay(&flags),
        "tenants" => cmd_tenants(&flags),
        _ => {
            eprintln!("error: unknown command '{cmd}'");
            return usage();
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(CmdError::Usage(e)) => {
            eprintln!("error: {e}");
            usage()
        }
        Err(CmdError::Run(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
