//! Diagnostic: per-application counter histogram at first memory-full.
//!
//! ```sh
//! cargo run --release -p hpe-bench --bin diag -- SPV B+T LEU
//! ```

use std::collections::BTreeMap;

use hpe_bench::bench_config;
use hpe_core::{Hpe, HpeConfig};
use uvm_sim::{trace_for, Simulation};
use uvm_types::Oversubscription;
use uvm_workloads::registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let abbrs: Vec<&str> = if args.is_empty() {
        vec!["SPV", "B+T", "LEU", "HSD"]
    } else {
        args.iter().map(String::as_str).collect()
    };
    let cfg = bench_config();
    for abbr in abbrs {
        let Some(app) = registry::by_abbr(abbr) else {
            eprintln!("unknown app {abbr}");
            continue;
        };
        let trace = trace_for(&cfg, app);
        let capacity = Oversubscription::Rate75.capacity_pages(app.footprint_pages());
        let hpe = Hpe::new(HpeConfig::from_sim(&cfg)).unwrap();
        let outcome = Simulation::new(cfg.clone(), &trace, hpe, capacity)
            .unwrap()
            .run()
            .expect("run completes");
        println!("\n=== {abbr} (capacity {capacity}) ===");
        match outcome.policy.counters_at_full() {
            Some(counters) => {
                let mut hist: BTreeMap<u32, u32> = BTreeMap::new();
                for &c in counters {
                    *hist.entry(c).or_insert(0) += 1;
                }
                let total = counters.len();
                println!("{total} sets at memory-full; counter histogram:");
                for (c, n) in hist {
                    let tag = if c % 16 == 0 { "regular" } else { "" };
                    println!("  counter {c:>3}: {n:>4} sets {tag}");
                }
                if let Some(cl) = outcome.policy.classification() {
                    println!(
                        "ratio1 {:.2}, ratio2 {:.2} -> {}",
                        cl.ratio1, cl.ratio2, cl.category
                    );
                }
            }
            None => println!("memory never filled"),
        }
    }
}
