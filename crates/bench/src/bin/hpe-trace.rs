//! `hpe-trace`: inspect simulation event traces.
//!
//! Operates on JSONL event streams written by the tracing layer (one
//! compact JSON object per line, see `uvm_sim::JsonlWriter`), or runs an
//! application live when given a registered abbreviation instead of a
//! file.
//!
//! ```sh
//! hpe-trace record STN --out stn.jsonl     # run + dump the event stream
//! hpe-trace summarize stn.jsonl            # counters + intervals + histograms
//! hpe-trace summarize STN                  # same, running STN live (HPE, 75%)
//! hpe-trace timeline stn.jsonl             # windowed series + marker events
//! hpe-trace diff a.jsonl b.jsonl           # first divergence of two streams
//! hpe-trace shape fig13.json               # stable shape of a figure series
//! hpe-trace campaign progress.jsonl        # summarize a campaign progress stream
//! hpe-trace explore explore-report.json    # fault-space exploration coverage report
//! hpe-trace tenants tenant-mix.json        # per-tenant summary of a multi-tenant mix report
//! ```
//!
//! Exit codes: 0 success, 1 a run failed or a check did not hold (diff
//! divergence, failed campaign runs, counterexamples, conservation
//! violation, failed tenants), 2 usage error (bad arguments or input
//! files).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hpe_bench::{
    bench_config, run_policy_profiled, run_policy_traced, traces_dir, write_jsonl, PolicyKind,
    Table,
};
use uvm_sim::{
    parse_jsonl, EventCounters, IntervalCollector, IntervalKey, ProfileReport, SimEvent,
    SimObserver, TenantReport, TraceHistograms, DEFAULT_PROFILE_CADENCE,
};
use uvm_types::Oversubscription;
use uvm_util::{FromJson, Json, ToJson};
use uvm_workloads::registry;

/// How a command failed, mapped onto the process exit code (the same
/// 0/1/2 convention `hpe-chaos`, `hpe-lab` and `hpe-lint` use).
enum CmdError {
    /// Bad arguments or unreadable/malformed input files: exit 2.
    Usage(String),
    /// A live run failed: exit 1.
    Run(String),
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: hpe-trace <command> [args]\n\
         \n\
         commands:\n\
         \x20 record    <APP> [--policy P] [--rate 75|50] [--out FILE]\n\
         \x20           run APP and write its event stream as JSONL\n\
         \x20           (default: target/paper-results/traces/<app>-<policy>-<rate>.jsonl)\n\
         \x20 summarize <FILE|APP> [--policy P] [--rate 75|50]\n\
         \x20           event counters, interval series and histograms\n\
         \x20 timeline  <FILE|APP> [--window N] [--policy P] [--rate 75|50]\n\
         \x20           fault-windowed series plus marker events\n\
         \x20 diff      <FILE> <FILE>\n\
         \x20           compare two streams; exit 1 if they differ\n\
         \x20 shape     <FIG.json>\n\
         \x20           stable shape of a figure's JSON series\n\
         \x20 campaign  <FILE.jsonl>\n\
         \x20           summarize a campaign progress stream (written by\n\
         \x20           `hpe-lab campaign --progress FILE`); exit 1 if any\n\
         \x20           recorded run failed\n\
         \x20 profile   <APP> [--policy P] [--rate 75|50] [--cadence N] [--out FILE]\n\
         \x20           cycle-attribution breakdown + metrics time series;\n\
         \x20           --out writes the series (.csv/.jsonl) or the full\n\
         \x20           report (.json); exit 1 if the timeline accounts\n\
         \x20           fail to conserve total cycles\n\
         \x20 spans     <APP> [--policy P] [--rate 75|50]\n\
         \x20           fault-lifecycle span summary + stage latency\n\
         \x20           percentiles (queue/service/total/retry)\n\
         \x20 flame     <APP> [--policy P] [--rate 75|50] [--out FILE]\n\
         \x20           folded-stack (component;account cycles) output for\n\
         \x20           flamegraph tools\n\
         \x20 explore   <REPORT.json>\n\
         \x20           summarize a fault-space exploration coverage report\n\
         \x20           (written by `hpe-chaos explore`); exit 1 if it\n\
         \x20           recorded any counterexample\n\
         \x20 tenants   <REPORT.json>\n\
         \x20           per-tenant summary of a multi-tenant mix report\n\
         \x20           (written by `hpe-chaos tenants`): admission\n\
         \x20           outcomes, per-tenant slowdowns and fairness\n\
         \x20           metrics; exit 1 if any tenant failed\n\
         \n\
         policies: LRU, Random, LFU, RRIP, CLOCK-Pro, Ideal, HPE (default HPE)\n\
         exit codes: 0 ok, 1 run failure or failed check, 2 usage error"
    );
    ExitCode::from(2)
}

fn parse_policy(name: &str) -> Option<PolicyKind> {
    PolicyKind::parse(name)
}

fn parse_rate(text: &str) -> Option<Oversubscription> {
    match text.trim_end_matches('%') {
        "75" => Some(Oversubscription::Rate75),
        "50" => Some(Oversubscription::Rate50),
        _ => None,
    }
}

/// Common `--policy` / `--rate` / `--out` / `--window` / `--cadence`
/// flags.
struct Flags {
    policy: PolicyKind,
    rate: Oversubscription,
    out: Option<PathBuf>,
    window: Option<u64>,
    cadence: Option<u64>,
    positional: Vec<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut flags = Flags {
        policy: PolicyKind::Hpe,
        rate: Oversubscription::Rate75,
        out: None,
        window: None,
        cadence: None,
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--policy" => {
                let v = value("--policy")?;
                flags.policy = parse_policy(&v).ok_or_else(|| format!("unknown policy '{v}'"))?;
            }
            "--rate" => {
                let v = value("--rate")?;
                flags.rate = parse_rate(&v).ok_or_else(|| format!("unknown rate '{v}'"))?;
            }
            "--out" => flags.out = Some(PathBuf::from(value("--out")?)),
            "--window" => {
                let v = value("--window")?;
                let w: u64 = v.parse().map_err(|_| format!("bad --window '{v}'"))?;
                if w == 0 {
                    return Err("--window must be nonzero".into());
                }
                flags.window = Some(w);
            }
            "--cadence" => {
                let v = value("--cadence")?;
                let c: u64 = v.parse().map_err(|_| format!("bad --cadence '{v}'"))?;
                if c == 0 {
                    return Err("--cadence must be nonzero".into());
                }
                flags.cadence = Some(c);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            other => flags.positional.push(other.to_string()),
        }
    }
    Ok(flags)
}

/// Loads events from a JSONL file, or by running a registered app live.
fn load_events(spec: &str, flags: &Flags) -> Result<Vec<SimEvent>, CmdError> {
    let path = Path::new(spec);
    if path.exists() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CmdError::Usage(format!("cannot read {spec}: {e}")))?;
        return parse_jsonl(&text).map_err(|e| CmdError::Usage(format!("{spec}: {e}")));
    }
    let Some(app) = registry::by_abbr(spec) else {
        return Err(CmdError::Usage(format!(
            "'{spec}' is neither a readable file nor a registered app"
        )));
    };
    eprintln!(
        "[running {} under {} at {} ...]",
        app.abbr(),
        flags.policy.label(),
        flags.rate.label()
    );
    let (_, capture) = run_policy_traced(&bench_config(), app, flags.rate, flags.policy)
        .map_err(|e| CmdError::Run(format!("{} run failed: {e}", app.abbr())))?;
    Ok(capture.log.events().to_vec())
}

fn cmd_record(flags: &Flags) -> Result<(), CmdError> {
    let [spec] = flags.positional.as_slice() else {
        return Err(CmdError::Usage("record needs exactly one APP".into()));
    };
    let Some(app) = registry::by_abbr(spec) else {
        return Err(CmdError::Usage(format!("unknown app '{spec}'")));
    };
    let (result, capture) = run_policy_traced(&bench_config(), app, flags.rate, flags.policy)
        .map_err(|e| CmdError::Run(format!("{} run failed: {e}", app.abbr())))?;
    let path = flags.out.clone().unwrap_or_else(|| {
        traces_dir().join(format!(
            "{}-{}-{}.jsonl",
            app.abbr().to_lowercase().replace('+', "p"),
            flags.policy.label().to_lowercase(),
            flags.rate.label().trim_end_matches('%')
        ))
    });
    let lines =
        write_jsonl(&path, capture.log.events()).map_err(|e| CmdError::Run(e.to_string()))?;
    println!(
        "{} under {} at {}: {} faults, {} evictions, {} events -> {}",
        result.app,
        result.policy,
        result.rate.label(),
        result.stats.faults(),
        result.stats.evictions(),
        lines,
        path.display()
    );
    Ok(())
}

fn replay<S: SimObserver>(sink: &mut S, events: &[SimEvent]) {
    for &e in events {
        sink.on_event(e);
    }
}

fn cmd_summarize(flags: &Flags) -> Result<(), CmdError> {
    let [spec] = flags.positional.as_slice() else {
        return Err(CmdError::Usage(
            "summarize needs exactly one FILE or APP".into(),
        ));
    };
    let events = load_events(spec, flags)?;
    let mut counters = EventCounters::default();
    replay(&mut counters, &events);
    let mut t = Table::new(format!("event counters ({spec})"), &["event", "count"]);
    for (name, n) in [
        ("FaultRaised", counters.faults_raised),
        ("FaultServiced", counters.faults_serviced),
        ("Eviction", counters.evictions),
        ("WrongEviction", counters.wrong_evictions),
        ("PageWalk", counters.page_walks),
        ("  walk hits", counters.walk_hits),
        ("PrefetchIssued", counters.prefetches),
        ("VictimSelected", counters.victims_selected),
        ("StrategySwitch", counters.strategy_switches),
        ("HirFlush", counters.hir_flushes),
        ("  entries", counters.hir_entries),
        ("  dropped", counters.hir_dropped),
        ("MemoryFull", counters.memory_full),
    ] {
        t.row(vec![name.to_string(), n.to_string()]);
    }
    t.print();

    print_timeline_table(spec, &events, flags.window.unwrap_or(256));

    let mut hists = TraceHistograms::new();
    replay(&mut hists, &events);
    for h in [
        hists.inter_fault(),
        hists.residency(),
        hists.victim_age(),
        hists.search_comparisons(),
        hists.hir_flush_entries(),
    ] {
        println!("{}", h.render());
    }
    Ok(())
}

fn print_timeline_table(spec: &str, events: &[SimEvent], window: u64) {
    let mut iv = IntervalCollector::new(IntervalKey::Faults(window));
    replay(&mut iv, events);
    let mut t = Table::new(
        format!("interval series ({spec}, {window} faults per window)"),
        &[
            "window", "faults", "serviced", "evict", "wrong", "prefetch", "walks", "hits", "hir",
            "switch",
        ],
    );
    for (i, row) in iv.rows().iter().enumerate() {
        t.row(vec![
            i.to_string(),
            row.faults.to_string(),
            row.serviced.to_string(),
            row.evictions.to_string(),
            row.wrong_evictions.to_string(),
            row.prefetches.to_string(),
            row.walks.to_string(),
            row.walk_hits.to_string(),
            row.hir_entries.to_string(),
            row.strategy_switches.to_string(),
        ]);
    }
    t.print();
}

fn cmd_timeline(flags: &Flags) -> Result<(), CmdError> {
    let [spec] = flags.positional.as_slice() else {
        return Err(CmdError::Usage(
            "timeline needs exactly one FILE or APP".into(),
        ));
    };
    let events = load_events(spec, flags)?;
    print_timeline_table(spec, &events, flags.window.unwrap_or(64));
    println!("\nmarker events:");
    let mut markers = 0;
    for e in &events {
        match *e {
            SimEvent::MemoryFull { time } => {
                println!("  cycle {time:>12}: memory full");
                markers += 1;
            }
            SimEvent::StrategySwitch {
                time,
                from,
                to,
                fault_num,
                ..
            } => {
                println!("  cycle {time:>12}: strategy {from} -> {to} (fault {fault_num})");
                markers += 1;
            }
            _ => {}
        }
    }
    if markers == 0 {
        println!("  (none)");
    }
    Ok(())
}

fn cmd_diff(flags: &Flags) -> Result<bool, CmdError> {
    let [a_spec, b_spec] = flags.positional.as_slice() else {
        return Err(CmdError::Usage("diff needs exactly two FILEs".into()));
    };
    let a = load_events(a_spec, flags)?;
    let b = load_events(b_spec, flags)?;
    let mut ca = EventCounters::default();
    let mut cb = EventCounters::default();
    replay(&mut ca, &a);
    replay(&mut cb, &b);
    let mut identical = true;
    let mut t = Table::new(
        format!("event counts: {a_spec} vs {b_spec}"),
        &["event", "a", "b", "delta"],
    );
    for (name, na, nb) in [
        ("FaultRaised", ca.faults_raised, cb.faults_raised),
        ("FaultServiced", ca.faults_serviced, cb.faults_serviced),
        ("Eviction", ca.evictions, cb.evictions),
        ("WrongEviction", ca.wrong_evictions, cb.wrong_evictions),
        ("PageWalk", ca.page_walks, cb.page_walks),
        ("PrefetchIssued", ca.prefetches, cb.prefetches),
        ("VictimSelected", ca.victims_selected, cb.victims_selected),
        ("StrategySwitch", ca.strategy_switches, cb.strategy_switches),
        ("HirFlush", ca.hir_flushes, cb.hir_flushes),
        ("MemoryFull", ca.memory_full, cb.memory_full),
    ] {
        let delta = nb as i64 - na as i64;
        if delta != 0 {
            identical = false;
        }
        t.row(vec![
            name.to_string(),
            na.to_string(),
            nb.to_string(),
            if delta == 0 {
                "=".to_string()
            } else {
                format!("{delta:+}")
            },
        ]);
    }
    t.print();
    match a.iter().zip(&b).position(|(x, y)| x != y) {
        Some(i) => {
            identical = false;
            println!("\nfirst divergence at event {i}:");
            println!("  a: {}", a[i].to_json());
            println!("  b: {}", b[i].to_json());
        }
        None if a.len() != b.len() => {
            identical = false;
            println!(
                "\nstreams agree for {} events, then lengths differ: {} vs {}",
                a.len().min(b.len()),
                a.len(),
                b.len()
            );
        }
        None => println!("\nstreams are identical ({} events)", a.len()),
    }
    Ok(identical)
}

/// Prints a stable "shape" of a figure's JSON series: the entry count and,
/// per entry, its identifying fields and sorted key set — but no measured
/// values, so the shape survives algorithmic tuning while still catching
/// missing apps, dropped fields, or schema drift.
fn cmd_shape(flags: &Flags) -> Result<(), CmdError> {
    let [file] = flags.positional.as_slice() else {
        return Err(CmdError::Usage("shape needs exactly one FIG.json".into()));
    };
    let text = std::fs::read_to_string(file)
        .map_err(|e| CmdError::Usage(format!("cannot read {file}: {e}")))?;
    let v = Json::parse(&text).map_err(|e| CmdError::Usage(format!("{file}: {e}")))?;
    let entries = v
        .as_array()
        .ok_or_else(|| CmdError::Usage(format!("{file}: expected a top-level array")))?;
    println!("entries={}", entries.len());
    for e in entries {
        let Json::Object(fields) = e else {
            return Err(CmdError::Usage(format!(
                "{file}: expected an array of objects"
            )));
        };
        let mut keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        keys.sort_unstable();
        let app = e["app"].as_str().unwrap_or("?");
        let rate = e["rate"].as_str().unwrap_or("-");
        println!("app={app} rate={rate} keys={}", keys.join(","));
    }
    Ok(())
}

/// Summarizes a campaign progress JSONL stream: per-policy and per-plan
/// completion counts, failures, and whether the arrival order was
/// sequential (serial run) or interleaved (parallel workers). Returns
/// `Ok(false)` when any recorded run failed.
fn cmd_campaign(flags: &Flags) -> Result<bool, CmdError> {
    let [file] = flags.positional.as_slice() else {
        return Err(CmdError::Usage(
            "campaign needs exactly one FILE.jsonl".into(),
        ));
    };
    let text = std::fs::read_to_string(file)
        .map_err(|e| CmdError::Usage(format!("cannot read {file}: {e}")))?;
    let mut indices = Vec::new();
    let mut failures: Vec<(String, String)> = Vec::new();
    let mut by_policy: Vec<(String, u64)> = Vec::new();
    let mut by_plan: Vec<(String, u64)> = Vec::new();
    let mut cycles = 0u64;
    let mut faults = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line)
            .map_err(|e| CmdError::Usage(format!("{file}:{}: {e}", lineno + 1)))?;
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    CmdError::Usage(format!("{file}:{}: missing field `{name}`", lineno + 1))
                })
        };
        let index = v.get("index").and_then(Json::as_u64).ok_or_else(|| {
            CmdError::Usage(format!("{file}:{}: missing field `index`", lineno + 1))
        })?;
        indices.push(index);
        let ok = v.get("ok").and_then(Json::as_bool).unwrap_or(false);
        if !ok {
            failures.push((
                field("key")?,
                field("error").unwrap_or_else(|_| "?".to_string()),
            ));
        }
        cycles += v.get("cycles").and_then(Json::as_u64).unwrap_or(0);
        faults += v.get("faults").and_then(Json::as_u64).unwrap_or(0);
        for (name, tallies) in [("policy", &mut by_policy), ("plan", &mut by_plan)] {
            let label = field(name)?;
            match tallies.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => tallies.push((label, 1)),
            }
        }
    }
    if indices.is_empty() {
        return Err(CmdError::Usage(format!("{file}: no progress lines")));
    }
    let sequential = indices.windows(2).all(|w| w[1] > w[0]);
    println!(
        "{}: {} runs recorded, {} failed, {} faults, {} cycles total",
        file,
        indices.len(),
        failures.len(),
        faults,
        cycles
    );
    println!(
        "arrival order: {} (progress lines are completion-ordered; only the \
         merged report is deterministic)",
        if sequential {
            "sequential — consistent with a serial run"
        } else {
            "interleaved — parallel workers"
        }
    );
    let mut t = Table::new(format!("completions ({file})"), &["group", "label", "runs"]);
    for (group, tallies) in [("policy", &by_policy), ("plan", &by_plan)] {
        for (label, n) in tallies {
            t.row(vec![group.to_string(), label.clone(), n.to_string()]);
        }
    }
    t.print();
    if !failures.is_empty() {
        println!("\nfailed runs:");
        for (key, error) in &failures {
            println!("  {key}: {error}");
        }
        return Ok(false);
    }
    Ok(true)
}

/// `explore`: summarize a fault-space exploration coverage report written
/// by `hpe-chaos explore`. Returns `Ok(false)` when the report recorded
/// any counterexample.
fn cmd_explore(flags: &Flags) -> Result<bool, CmdError> {
    let [file] = flags.positional.as_slice() else {
        return Err(CmdError::Usage(
            "explore needs exactly one REPORT.json".into(),
        ));
    };
    let text = std::fs::read_to_string(file)
        .map_err(|e| CmdError::Usage(format!("cannot read {file}: {e}")))?;
    let json = Json::parse(&text).map_err(|e| CmdError::Usage(format!("{file}: {e}")))?;
    let report = uvm_sim::ExploreReport::from_json(&json)
        .map_err(|e| CmdError::Usage(format!("{file}: bad report: {e}")))?;
    println!(
        "{}: {} under {} at {}%, invariants [{}]",
        file,
        report.app,
        report.policy,
        report.rate,
        report.invariants.join(", ")
    );
    let mut t = Table::new(format!("coverage ({file})"), &["metric", "value"]);
    for (name, n) in [
        ("cases", report.cases),
        ("  fixture", report.fixture_cases),
        ("  window", report.window_cases),
        ("  batch", report.batch_cases),
        ("skipped invalid", report.skipped_invalid),
        ("distinct placements", report.distinct_placements),
        ("simulation runs", report.runs),
        ("invariant checks", report.invariant_checks),
        ("shrink probes", report.shrink_probes),
        ("counterexamples", report.counterexamples.len() as u64),
    ] {
        t.row(vec![name.to_string(), n.to_string()]);
    }
    t.print();
    if report.counterexamples.is_empty() {
        println!("clean: every run upheld every selected invariant");
        return Ok(true);
    }
    println!("\ncounterexamples:");
    for cx in &report.counterexamples {
        println!(
            "  case {} ({}): `{}` — {} [{} window(s), {} probe(s)]",
            cx.case,
            cx.label,
            cx.invariant,
            cx.error,
            cx.plan.windows.len(),
            cx.probes
        );
    }
    Ok(false)
}

/// Runs `spec` live with the cycle-attribution profiler attached.
fn profiled_run(spec: &str, flags: &Flags) -> Result<ProfileReport, CmdError> {
    let Some(app) = registry::by_abbr(spec) else {
        return Err(CmdError::Usage(format!("unknown app '{spec}'")));
    };
    let cadence = flags.cadence.unwrap_or(DEFAULT_PROFILE_CADENCE);
    eprintln!(
        "[profiling {} under {} at {} (cadence {cadence}) ...]",
        app.abbr(),
        flags.policy.label(),
        flags.rate.label()
    );
    let (_, profile) = run_policy_profiled(&bench_config(), app, flags.rate, flags.policy, cadence)
        .map_err(|e| CmdError::Run(format!("{} run failed: {e}", app.abbr())))?;
    Ok(profile)
}

/// `profile`: per-account cycle breakdown plus the sampled metrics
/// series. Exit 1 if the timeline accounts fail to conserve.
fn cmd_profile(flags: &Flags) -> Result<bool, CmdError> {
    let [spec] = flags.positional.as_slice() else {
        return Err(CmdError::Usage("profile needs exactly one APP".into()));
    };
    let profile = profiled_run(spec, flags)?;
    println!("{}", profile.render_accounts());
    println!(
        "metrics series: {} samples every {} cycles",
        profile.series.samples.len(),
        profile.series.cadence
    );
    if let Some(path) = &flags.out {
        let text = match path.extension().and_then(|e| e.to_str()) {
            Some("csv") => profile.series.to_csv(),
            Some("jsonl") => profile.series.to_jsonl(),
            _ => profile.to_json().to_string(),
        };
        std::fs::write(path, text)
            .map_err(|e| CmdError::Run(format!("cannot write {}: {e}", path.display())))?;
        println!("wrote {}", path.display());
    }
    if profile.timeline_sum() != profile.total_cycles {
        eprintln!(
            "CONSERVATION VIOLATED: timeline accounts sum to {} but the run took {} cycles",
            profile.timeline_sum(),
            profile.total_cycles
        );
        return Ok(false);
    }
    Ok(true)
}

/// `spans`: fault-lifecycle span summary and stage latency percentiles.
fn cmd_spans(flags: &Flags) -> Result<(), CmdError> {
    let [spec] = flags.positional.as_slice() else {
        return Err(CmdError::Usage("spans needs exactly one APP".into()));
    };
    let profile = profiled_run(spec, flags)?;
    println!("{}", profile.render_spans());
    Ok(())
}

/// `flame`: folded-stack output (`component;account cycles` per line) for
/// standard flamegraph tooling.
fn cmd_flame(flags: &Flags) -> Result<(), CmdError> {
    let [spec] = flags.positional.as_slice() else {
        return Err(CmdError::Usage("flame needs exactly one APP".into()));
    };
    let profile = profiled_run(spec, flags)?;
    let folded = profile.folded();
    match &flags.out {
        Some(path) => {
            std::fs::write(path, &folded)
                .map_err(|e| CmdError::Run(format!("cannot write {}: {e}", path.display())))?;
            println!("wrote {}", path.display());
        }
        None => print!("{folded}"),
    }
    Ok(())
}

/// `tenants`: per-tenant summary of a multi-tenant mix report written by
/// `hpe-chaos tenants`. Returns `Ok(false)` when any tenant failed.
fn cmd_tenants(flags: &Flags) -> Result<bool, CmdError> {
    let [file] = flags.positional.as_slice() else {
        return Err(CmdError::Usage(
            "tenants needs exactly one REPORT.json".into(),
        ));
    };
    let text = std::fs::read_to_string(file)
        .map_err(|e| CmdError::Usage(format!("cannot read {file}: {e}")))?;
    let json = Json::parse(&text).map_err(|e| CmdError::Usage(format!("{file}: {e}")))?;
    let report = TenantReport::from_json_strict(&json)
        .map_err(|e| CmdError::Usage(format!("{file}: bad tenant report: {e}")))?;
    println!(
        "{}: {} tenant(s) under {} ({} HIR){}, fingerprint {}",
        file,
        report.tenants.len(),
        report.policy,
        report.hir_mode,
        match report.fault_tenant {
            Some(t) => format!(", plan {} scoped to T{t}", report.plan),
            None => ", fault-free".to_string(),
        },
        report.fingerprint,
    );
    let mut t = Table::new(
        format!("tenants ({file})"),
        &[
            "tenant", "app", "quota", "arrival", "admitted", "outcome", "ok", "cycles", "faults",
            "slowdown",
        ],
    );
    let mut failed = 0u64;
    for row in &report.tenants {
        if !row.ok {
            failed += 1;
        }
        t.row(vec![
            row.tenant.to_string(),
            row.app.clone(),
            row.quota_pages.to_string(),
            row.arrival.to_string(),
            row.admitted.to_string(),
            row.admission.clone(),
            if row.ok {
                "yes".to_string()
            } else {
                format!("no: {}", row.error)
            },
            row.stats.cycles.to_string(),
            row.stats.faults().to_string(),
            format!("{:.2}", row.slowdown()),
        ]);
    }
    t.print();
    println!(
        "admission: {} rejected, {} delayed; makespan {}; p99 slowdown {:.2}; \
         aggregate throughput {:.2} instr/kcycle",
        report.rejected,
        report.delayed,
        report.makespan,
        report.p99_slowdown(),
        report.throughput(),
    );
    if failed > 0 {
        println!("\n{failed} tenant(s) failed");
        return Ok(false);
    }
    Ok(true)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let outcome = match cmd.as_str() {
        "record" => cmd_record(&flags).map(|()| true),
        "summarize" => cmd_summarize(&flags).map(|()| true),
        "timeline" => cmd_timeline(&flags).map(|()| true),
        "diff" => cmd_diff(&flags),
        "shape" => cmd_shape(&flags).map(|()| true),
        "campaign" => cmd_campaign(&flags),
        "explore" => cmd_explore(&flags),
        "profile" => cmd_profile(&flags),
        "spans" => cmd_spans(&flags).map(|()| true),
        "flame" => cmd_flame(&flags).map(|()| true),
        "tenants" => cmd_tenants(&flags),
        _ => {
            eprintln!("error: unknown command '{cmd}'");
            return usage();
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(CmdError::Run(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(CmdError::Usage(e)) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
