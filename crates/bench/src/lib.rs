//! Benchmark harness regenerating every table and figure of the HPE paper.
//!
//! Each `[[bench]]` target (with `harness = false`) reproduces one table or
//! figure: it runs the relevant simulations on the scaled reproduction
//! configuration, prints the figure's series as a text table, and saves the
//! same data as JSON under `target/paper-results/`. `cargo bench -p
//! hpe-bench` regenerates everything; `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.
//!
//! The `overheads` bench is a Criterion microbenchmark suite covering the
//! operation costs of Section V-C (chain update, classification, MRU-C
//! search, HIR operations).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod campaign;
pub mod explore;
pub mod perf;
pub mod report;
pub mod runner;
pub mod tenant;

pub use campaign::{
    chaos_plan_set, grid_key, run_campaign, run_campaign_serial, CampaignError, CampaignOutcome,
    CampaignReport, CampaignRun, CampaignSnapshot, CampaignSpec, CampaignTotals, PlanSpec,
    PoolOptions, DEFAULT_SNAPSHOT_EVERY,
};
pub use explore::{replay_repro, repro_for, run_explore, ExploreError, RECOVERY_STREAK_FAULTS};
pub use perf::{BenchSnapshot, PolicyPerf, Tolerance, Verdict, WallClock, BENCH_SCHEMA_VERSION};
pub use report::{f2, f3, geomean, mean, save_json, traces_dir, write_jsonl, Table};
pub use runner::{
    manual_strategy_for, rrip_config_for, run_hpe_with, run_hpe_with_plan, run_policy,
    run_policy_profiled, run_policy_recovering, run_policy_traced, run_policy_with_plan, HpeReport,
    PolicyKind, RecoveryOptions, RunResult, TraceCapture, TRACE_CYCLE_WINDOW,
};
pub use tenant::{
    check_containment, containment_mix, fairness_grid, load_snapshot, run_mix, run_mix_serial,
    shared_hir_geometry, FairnessRow, MixOptions, TenantRunError, CONTAINMENT_APPS,
    DEFAULT_TENANT_SNAPSHOT_EVERY, FAIRNESS_HIR_SCALE,
};

use uvm_types::SimConfig;

/// The simulator configuration all figure benches use (scaled TLBs, same
/// latencies as Table I; see `DESIGN.md` section 2).
pub fn bench_config() -> SimConfig {
    SimConfig::scaled_default()
}
