//! Profiler acceptance suite: cycle conservation on the paper's
//! workloads, byte-identical `SimStats` with the profiler attached, and
//! the span/series surfaces the `hpe-trace` subcommands render.

use hpe_bench::{
    bench_config, run_policy, run_policy_profiled, run_policy_recovering, PolicyKind,
    RecoveryOptions,
};
use uvm_sim::DEFAULT_PROFILE_CADENCE;
use uvm_types::{CycleAccount, Oversubscription, SpanStage};
use uvm_util::ToJson;
use uvm_workloads::registry;

#[test]
fn profiled_stn_75_accounts_conserve_and_stats_stay_identical() {
    let cfg = bench_config();
    let app = registry::by_abbr("STN").unwrap();
    let plain = run_policy(&cfg, app, Oversubscription::Rate75, PolicyKind::Hpe).unwrap();
    let (profiled, profile) = run_policy_profiled(
        &cfg,
        app,
        Oversubscription::Rate75,
        PolicyKind::Hpe,
        DEFAULT_PROFILE_CADENCE,
    )
    .unwrap();

    // Observation-only: the profiler must not perturb the run.
    assert_eq!(
        profiled.stats.to_json().to_string(),
        plain.stats.to_json().to_string(),
        "profiler must leave SimStats byte-identical"
    );

    // The per-component breakdown partitions the run exactly.
    assert_eq!(profile.total_cycles, profiled.stats.cycles);
    assert_eq!(
        profile.timeline_sum(),
        profile.total_cycles,
        "timeline accounts must sum exactly to total simulated cycles"
    );
    assert!(profile.account(CycleAccount::FaultService) > 0);
    assert!(
        profile.account(CycleAccount::HirFlush) > 0,
        "HPE flushes its HIR over PCIe"
    );
    assert!(
        profile.driver_idle() > 0,
        "the driver idles between fault batches — the skippable cycles"
    );
    // Host-side eviction-decision work is measured off the timeline.
    assert!(profile.account(CycleAccount::EvictionDecision) > 0);
}

#[test]
fn profiled_run_reports_span_lifecycle_and_series() {
    let cfg = bench_config();
    let app = registry::by_abbr("STN").unwrap();
    let (result, profile) = run_policy_profiled(
        &cfg,
        app,
        Oversubscription::Rate75,
        PolicyKind::Hpe,
        DEFAULT_PROFILE_CADENCE,
    )
    .unwrap();

    // Spans: every serviced fault page opened and closed one span.
    assert!(profile.spans.opened > 0);
    assert_eq!(profile.spans.completed, profile.spans.opened);
    assert_eq!(
        profile.spans.refault_spans,
        result.stats.driver.wrong_evictions
    );
    // Stage histograms carry percentiles once spans completed.
    let total = profile.stage_histogram(SpanStage::Total);
    assert_eq!(total.count(), profile.spans.completed);
    assert!(total.quantile(0.5).unwrap() <= total.quantile(0.99).unwrap());
    // The queue stage never exceeds the total.
    let queue = profile.stage_histogram(SpanStage::Queue);
    assert!(queue.quantile(0.99).unwrap() <= total.quantile(0.99).unwrap());

    // Metrics series: sampled on cadence, exported in parallel forms.
    assert!(!profile.series.samples.is_empty());
    let csv = profile.series.to_csv();
    let jsonl = profile.series.to_jsonl();
    assert_eq!(
        csv.lines().count(),
        profile.series.samples.len() + 1,
        "header plus one row per sample"
    );
    assert_eq!(jsonl.lines().count(), profile.series.samples.len());
    // Samples observe a bounded residency.
    let capacity = Oversubscription::Rate75.capacity_pages(app.footprint_pages());
    for s in &profile.series.samples {
        assert!(s.resident_pages <= capacity);
    }

    // The renderings the CLI prints are well-formed.
    assert!(profile.render_accounts().contains("conserved"));
    assert!(profile.render_spans().contains("p99"));
    let folded = profile.folded();
    assert!(folded.lines().all(|l| l.contains(';')));
}

#[test]
fn recovery_options_profile_knob_attaches_observation_only() {
    // The opt-in plumbing campaigns use: RecoveryOptions.profile mirrors
    // the sanitizer knob and stays observation-only under it.
    let cfg = bench_config();
    let app = registry::by_abbr("SGM").unwrap();
    let plain = run_policy(&cfg, app, Oversubscription::Rate50, PolicyKind::Lru).unwrap();
    let profiled = run_policy_recovering(
        &cfg,
        app,
        Oversubscription::Rate50,
        PolicyKind::Lru,
        None,
        RecoveryOptions {
            profile: Some(1 << 16),
            ..RecoveryOptions::default()
        },
    )
    .unwrap();
    assert_eq!(
        profiled.stats.to_json().to_string(),
        plain.stats.to_json().to_string()
    );
}
