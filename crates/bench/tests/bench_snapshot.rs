//! `BENCH_*.json` schema suite: round-trip fidelity, the tolerance
//! boundary math of the regression gate, and malformed-snapshot
//! rejection.

use hpe_bench::perf::{
    compare, next_id, verdict, worst, CompareRow, Verdict, SIM_TOLERANCE, WALL_TOLERANCE,
};
use hpe_bench::{BenchSnapshot, PolicyPerf, Tolerance, WallClock, BENCH_SCHEMA_VERSION};
use uvm_util::ToJson;

/// A small but fully populated snapshot.
fn sample(id: &str) -> BenchSnapshot {
    BenchSnapshot {
        schema: BENCH_SCHEMA_VERSION,
        id: id.to_string(),
        seed: 2019,
        apps: vec!["STN".to_string(), "SGM".to_string()],
        policies: vec![
            PolicyPerf {
                policy: "LRU".to_string(),
                slowdown_75: 1.616,
                slowdown_50: 1.398,
            },
            PolicyPerf {
                policy: "HPE".to_string(),
                slowdown_75: 1.277,
                slowdown_50: 1.286,
            },
        ],
        wall_clocks: vec![WallClock {
            name: "run/STN/HPE/75%".to_string(),
            median_ns: 6.3e6,
        }],
    }
}

// ---------------------------------------------------------------------------
// Round-trip
// ---------------------------------------------------------------------------

#[test]
fn snapshot_round_trips_byte_identically_through_json() {
    let snap = sample("BENCH_0001");
    let text = snap.to_json().to_string();
    let back = BenchSnapshot::parse(&text).expect("parses and validates");
    assert_eq!(back, snap);
    // Serializing the parsed value reproduces the original bytes: the
    // schema has no lossy or order-unstable fields.
    assert_eq!(back.to_json().to_string(), text);
    // The pretty form parses back to the same value too.
    let pretty = snap.to_json().pretty();
    assert_eq!(BenchSnapshot::parse(&pretty).unwrap(), snap);
}

#[test]
fn parse_fills_defaults_for_optional_fields_but_validation_still_gates() {
    // A sparse document parses (impl_json_struct defaults) but cannot
    // validate: default schema 0 and empty metric sets are rejected.
    let err = BenchSnapshot::parse("{}").expect_err("defaults must not validate");
    assert!(err.contains("schema"), "unexpected error: {err}");
}

// ---------------------------------------------------------------------------
// Tolerance math
// ---------------------------------------------------------------------------

#[test]
fn verdict_boundaries_are_inclusive_at_warn_and_fail() {
    let tol = Tolerance {
        warn: 0.01,
        fail: 0.10,
    };
    let eps = 1e-9;
    // Improvements and flat results pass.
    assert_eq!(verdict(0.5, 1.0, tol), Verdict::Pass);
    assert_eq!(verdict(1.0, 1.0, tol), Verdict::Pass);
    // Exactly 1 + warn still passes; just above warns.
    assert_eq!(verdict(1.0 + tol.warn, 1.0, tol), Verdict::Pass);
    assert_eq!(verdict(1.0 + tol.warn + eps, 1.0, tol), Verdict::Warn);
    // Exactly 1 + fail still warns; just above fails.
    assert_eq!(verdict(1.0 + tol.fail, 1.0, tol), Verdict::Warn);
    assert_eq!(verdict(1.0 + tol.fail + eps, 1.0, tol), Verdict::Fail);
}

#[test]
fn verdict_fails_closed_on_degenerate_numbers() {
    let tol = SIM_TOLERANCE;
    assert_eq!(verdict(f64::NAN, 1.0, tol), Verdict::Fail);
    assert_eq!(verdict(1.0, f64::NAN, tol), Verdict::Fail);
    assert_eq!(verdict(f64::INFINITY, 1.0, tol), Verdict::Fail);
    assert_eq!(verdict(1.0, 0.0, tol), Verdict::Fail);
    assert_eq!(verdict(-1.0, 1.0, tol), Verdict::Fail);
}

#[test]
fn worst_orders_pass_warn_fail() {
    let row = |v: Verdict| CompareRow {
        metric: "m".to_string(),
        baseline: 1.0,
        current: 1.0,
        verdict: v,
    };
    assert_eq!(worst(&[]), Verdict::Pass);
    assert_eq!(worst(&[row(Verdict::Pass)]), Verdict::Pass);
    assert_eq!(
        worst(&[row(Verdict::Pass), row(Verdict::Warn)]),
        Verdict::Warn
    );
    assert_eq!(
        worst(&[row(Verdict::Warn), row(Verdict::Fail), row(Verdict::Pass)]),
        Verdict::Fail
    );
}

#[test]
fn compare_applies_the_right_tolerance_per_metric_family() {
    let baseline = sample("BENCH_0001");
    let mut current = sample("BENCH_0002");
    // +1% on a slowdown: over SIM warn (0.5%), under SIM fail (2%).
    current.policies[0].slowdown_75 *= 1.01;
    // +100% on the wall-clock: over WALL warn (50%), under WALL fail (300%).
    current.wall_clocks[0].median_ns *= 2.0;
    let rows = compare(&current, &baseline);
    assert_eq!(
        rows.len(),
        2 * baseline.policies.len() + baseline.wall_clocks.len()
    );
    let by_name = |m: &str| {
        rows.iter()
            .find(|r| r.metric == m)
            .unwrap_or_else(|| panic!("missing row {m}"))
    };
    assert_eq!(by_name("slowdown75/LRU").verdict, Verdict::Warn);
    assert_eq!(by_name("slowdown50/LRU").verdict, Verdict::Pass);
    assert_eq!(by_name("slowdown75/HPE").verdict, Verdict::Pass);
    assert_eq!(by_name("wall/run/STN/HPE/75%").verdict, Verdict::Warn);
    assert_eq!(worst(&rows), Verdict::Warn);
    // Sanity: the same +100% under the SIM tolerance would fail.
    assert_eq!(verdict(2.0, 1.0, SIM_TOLERANCE), Verdict::Fail);
    assert_eq!(verdict(2.0, 1.0, WALL_TOLERANCE), Verdict::Warn);
}

#[test]
fn compare_fails_metrics_missing_from_current_and_ignores_new_ones() {
    let baseline = sample("BENCH_0001");
    let mut current = sample("BENCH_0002");
    // Drop LRU from the current collection and add a policy the
    // baseline never measured.
    current.policies.retain(|p| p.policy != "LRU");
    current.policies.push(PolicyPerf {
        policy: "CLOCK".to_string(),
        slowdown_75: 1.5,
        slowdown_50: 1.4,
    });
    let rows = compare(&current, &baseline);
    // Baseline metrics only: 2 per baseline policy + baseline walls.
    assert_eq!(rows.len(), 2 * baseline.policies.len() + 1);
    assert!(rows
        .iter()
        .filter(|r| r.metric.ends_with("/LRU"))
        .all(|r| r.verdict == Verdict::Fail && r.current.is_nan()));
    assert!(!rows.iter().any(|r| r.metric.ends_with("/CLOCK")));
    assert_eq!(worst(&rows), Verdict::Fail);
}

// ---------------------------------------------------------------------------
// Malformed snapshots
// ---------------------------------------------------------------------------

#[test]
fn malformed_snapshots_are_rejected_with_readable_errors() {
    // Not JSON at all.
    assert!(BenchSnapshot::parse("nope").is_err());

    // Wrong schema version.
    let mut snap = sample("BENCH_0001");
    snap.schema = 99;
    let err = BenchSnapshot::parse(&snap.to_json().to_string()).unwrap_err();
    assert!(err.contains("schema 99"), "unexpected error: {err}");

    // Id without the BENCH_ prefix.
    let snap = sample("SNAP_1");
    let err = snap.validate().unwrap_err();
    assert!(err.contains("BENCH_"), "unexpected error: {err}");

    // Empty metric sets.
    let mut snap = sample("BENCH_0001");
    snap.apps.clear();
    assert!(snap.validate().unwrap_err().contains("empty app set"));
    let mut snap = sample("BENCH_0001");
    snap.policies.clear();
    assert!(snap.validate().unwrap_err().contains("empty policy set"));

    // Non-finite and non-positive numbers.
    for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
        let mut snap = sample("BENCH_0001");
        snap.policies[0].slowdown_50 = bad;
        assert!(snap.validate().is_err(), "slowdown {bad} must be rejected");
        let mut snap = sample("BENCH_0001");
        snap.wall_clocks[0].median_ns = bad;
        assert!(
            snap.validate().is_err(),
            "wall-clock {bad} must be rejected"
        );
    }

    // A field with the wrong JSON type fails at the FromJson layer.
    let err = BenchSnapshot::parse(r#"{"schema": "one"}"#).unwrap_err();
    assert!(!err.is_empty());
}

// ---------------------------------------------------------------------------
// Trajectory bookkeeping
// ---------------------------------------------------------------------------

#[test]
fn the_repo_records_a_valid_first_snapshot() {
    // Satellite acceptance: BENCH_0001.json exists in-repo and validates.
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../benchmarks");
    let first = dir.join("BENCH_0001.json");
    assert!(
        first.exists(),
        "benchmarks/BENCH_0001.json missing — record it with `hpe-lab bench-snapshot`"
    );
    let snap = BenchSnapshot::load(&first).expect("in-repo snapshot validates");
    assert_eq!(snap.id, "BENCH_0001");
    assert_eq!(snap.schema, BENCH_SCHEMA_VERSION);
    assert_eq!(snap.apps.len(), 23, "snapshot covers the full app grid");
    assert!(snap.policies.iter().any(|p| p.policy == "HPE"));
    assert!(next_id(&dir).starts_with("BENCH_"));
}
