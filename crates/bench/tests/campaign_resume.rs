//! Kill/resume suite: a campaign stopped at a snapshot boundary and
//! resumed from its auto-snapshot must merge to the same report as an
//! uninterrupted run, and snapshots from a different spec must be
//! refused with a typed error.

use std::fs;
use std::path::PathBuf;

use hpe_bench::{
    bench_config, campaign, chaos_plan_set, run_campaign, CampaignError, CampaignSnapshot,
    CampaignSpec, PolicyKind, PoolOptions,
};
use uvm_types::Oversubscription;

/// A fresh temp path per test so parallel test binaries cannot collide.
fn temp_snapshot(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "hpe-campaign-resume-{}-{tag}.json",
        std::process::id()
    ));
    let _ = fs::remove_file(&path);
    path
}

/// 2 apps x 2 policies x 1 rate x 2 plan columns = 8 cells.
fn sub_grid() -> CampaignSpec {
    let seed = 2019;
    let plans = chaos_plan_set(seed)
        .into_iter()
        .filter(|p| matches!(p.name.as_str(), "clean" | "signal-chaos"))
        .collect();
    CampaignSpec {
        apps: vec!["STN".to_string(), "SGM".to_string()],
        policies: vec![PolicyKind::Lru, PolicyKind::Hpe],
        rates: vec![Oversubscription::Rate75],
        plans,
        recovery: Default::default(),
        seed,
    }
}

#[test]
fn killed_campaign_resumes_from_auto_snapshot_to_identical_report() {
    let cfg = bench_config();
    let spec = sub_grid();
    let path = temp_snapshot("kill");

    // Reference: the same grid run straight through, no snapshotting.
    let reference = run_campaign(&cfg, &spec, &PoolOptions::default(), None)
        .expect("uninterrupted run")
        .report()
        .expect("complete")
        .to_json()
        .to_string();

    // "Kill" the campaign: stop dispatch after 4 completions, with a
    // snapshot boundary exactly there, then drop the pool. One worker
    // keeps the completion count exact (more workers could finish an
    // in-flight straggler after the stop flag is raised).
    let killed = run_campaign(
        &cfg,
        &spec,
        &PoolOptions {
            workers: 1,
            shuffle: Some(11),
            snapshot_path: Some(path.clone()),
            snapshot_every: 4,
            limit: Some(4),
            ..PoolOptions::default()
        },
        None,
    )
    .expect("partial run");
    assert!(!killed.is_complete());
    assert_eq!(killed.executed, 4);
    assert!(matches!(
        killed.report(),
        Err(CampaignError::Incomplete { done: 4, total: 8 })
    ));
    let snap = CampaignSnapshot::load(&path).expect("auto-snapshot exists and validates");
    assert_eq!(snap.completed.len(), 4);
    assert_eq!(snap.fingerprint, spec.fingerprint());

    // Resume: only the pending cells run; the merge is byte-identical
    // to the uninterrupted report.
    let resumed = run_campaign(
        &cfg,
        &spec,
        &PoolOptions {
            workers: 2,
            snapshot_path: Some(path.clone()),
            resume: true,
            ..PoolOptions::default()
        },
        None,
    )
    .expect("resumed run");
    assert_eq!(resumed.resumed, 4);
    assert_eq!(resumed.executed, 4);
    assert!(resumed.is_complete());
    assert_eq!(
        resumed.report().expect("complete").to_json().to_string(),
        reference
    );
    let _ = fs::remove_file(&path);
}

#[test]
fn resume_refuses_a_snapshot_from_a_different_spec() {
    let cfg = bench_config();
    let spec = sub_grid();
    let path = temp_snapshot("mismatch");

    // Snapshot a *reseeded* spec: same grid shape, different fingerprint.
    let mut other = sub_grid();
    other.seed = 7;
    other.plans = chaos_plan_set(7)
        .into_iter()
        .filter(|p| matches!(p.name.as_str(), "clean" | "signal-chaos"))
        .collect();
    assert_ne!(other.fingerprint(), spec.fingerprint());
    run_campaign(
        &cfg,
        &other,
        &PoolOptions {
            snapshot_path: Some(path.clone()),
            snapshot_every: 2,
            limit: Some(2),
            ..PoolOptions::default()
        },
        None,
    )
    .expect("partial run of the other spec");

    let err = run_campaign(
        &cfg,
        &spec,
        &PoolOptions {
            snapshot_path: Some(path.clone()),
            resume: true,
            ..PoolOptions::default()
        },
        None,
    )
    .expect_err("fingerprint mismatch must refuse to resume");
    assert!(
        matches!(err, CampaignError::SnapshotMismatch { .. }),
        "expected SnapshotMismatch, got {err}"
    );
    let _ = fs::remove_file(&path);
}

#[test]
fn resume_rejects_a_malformed_snapshot_file() {
    let cfg = bench_config();
    let spec = sub_grid();
    let path = temp_snapshot("malformed");
    fs::write(&path, "this is not json").unwrap();
    let err = run_campaign(
        &cfg,
        &spec,
        &PoolOptions {
            snapshot_path: Some(path.clone()),
            resume: true,
            ..PoolOptions::default()
        },
        None,
    )
    .expect_err("malformed snapshot must be rejected");
    assert!(
        matches!(err, CampaignError::SnapshotMalformed(_)),
        "expected SnapshotMalformed, got {err}"
    );
    let _ = fs::remove_file(&path);
}

#[test]
fn resume_with_no_snapshot_file_starts_fresh() {
    let cfg = bench_config();
    let spec = sub_grid();
    let path = temp_snapshot("fresh");
    // resume: true with no file on disk is a fresh start, not an error —
    // that's what lets `--resume` be passed unconditionally in scripts.
    let outcome = run_campaign(
        &cfg,
        &spec,
        &PoolOptions {
            snapshot_path: Some(path.clone()),
            resume: true,
            ..PoolOptions::default()
        },
        None,
    )
    .expect("fresh run");
    assert_eq!(outcome.resumed, 0);
    assert!(outcome.is_complete());
    // The final snapshot is always written for a snapshot-enabled run.
    let snap = campaign::CampaignSnapshot::load(&path).expect("final snapshot");
    assert_eq!(snap.completed.len(), spec.grid_len());
    let _ = fs::remove_file(&path);
}
