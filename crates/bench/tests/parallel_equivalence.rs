//! Parallel-equivalence suite: the pooled campaign engine must produce a
//! merged report byte-identical to the serial reference runner, for any
//! worker count and any completion order.
//!
//! The grid here is a seeded sub-grid (2 apps x 3 policies x 1 rate x
//! 3 plan columns = 18 cells) small enough for debug-mode CI but wide
//! enough to cross apps, policies, and chaos plans.

use hpe_bench::{
    bench_config, campaign, chaos_plan_set, run_campaign, run_campaign_serial, CampaignSpec,
    PolicyKind, PoolOptions,
};
use uvm_types::Oversubscription;

/// The seeded sub-grid every test in this file runs.
fn sub_grid() -> CampaignSpec {
    let seed = 2019;
    let plans = chaos_plan_set(seed)
        .into_iter()
        .filter(|p| matches!(p.name.as_str(), "clean" | "signal-chaos" | "victim-drop"))
        .collect();
    CampaignSpec {
        apps: vec!["STN".to_string(), "SGM".to_string()],
        policies: vec![PolicyKind::Lru, PolicyKind::Hpe, PolicyKind::ClockPro],
        rates: vec![Oversubscription::Rate75],
        plans,
        recovery: Default::default(),
        seed,
    }
}

fn report_bytes(outcome: &campaign::CampaignOutcome) -> String {
    outcome
        .report()
        .expect("campaign completed")
        .to_json()
        .to_string()
}

#[test]
fn pool_is_byte_identical_to_serial_for_any_worker_count() {
    let cfg = bench_config();
    let spec = sub_grid();
    let reference = report_bytes(&run_campaign_serial(&cfg, &spec).expect("serial runs"));
    assert!(!reference.is_empty());

    for workers in [1, 2, 8] {
        let pool = PoolOptions {
            workers,
            ..PoolOptions::default()
        };
        let outcome = run_campaign(&cfg, &spec, &pool, None).expect("pooled runs");
        assert_eq!(outcome.executed, spec.grid_len());
        assert_eq!(
            report_bytes(&outcome),
            reference,
            "merged report diverged at {workers} workers"
        );
    }
}

#[test]
fn pool_is_byte_identical_across_shuffled_completion_orders() {
    let cfg = bench_config();
    let spec = sub_grid();
    let reference = report_bytes(&run_campaign_serial(&cfg, &spec).expect("serial runs"));

    // Shuffling the injector queue permutes dispatch (and therefore
    // completion) order without touching any cell's inputs; the merge is
    // keyed by grid index, so the report must not move a byte.
    for shuffle_seed in [1u64, 42, 0xdead_beef] {
        for workers in [2, 8] {
            let pool = PoolOptions {
                workers,
                shuffle: Some(shuffle_seed),
                ..PoolOptions::default()
            };
            let outcome = run_campaign(&cfg, &spec, &pool, None).expect("pooled runs");
            assert_eq!(
                report_bytes(&outcome),
                reference,
                "merged report diverged at {workers} workers, shuffle seed {shuffle_seed}"
            );
        }
    }
}

#[test]
fn progress_stream_covers_the_grid_even_when_arrival_order_varies() {
    let cfg = bench_config();
    let spec = sub_grid();
    let pool = PoolOptions {
        workers: 4,
        shuffle: Some(7),
        ..PoolOptions::default()
    };
    let mut progress: Vec<u8> = Vec::new();
    let outcome = run_campaign(&cfg, &spec, &pool, Some(&mut progress)).expect("pooled runs");
    let text = String::from_utf8(progress).expect("progress stream is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), spec.grid_len());

    // Every grid index appears exactly once, whatever the arrival order.
    let mut seen: Vec<u64> = lines
        .iter()
        .map(|l| {
            uvm_util::Json::parse(l)
                .expect("each progress line is one JSON object")
                .get("index")
                .and_then(uvm_util::Json::as_u64)
                .expect("progress line has an index")
        })
        .collect();
    seen.sort_unstable();
    let expected: Vec<u64> = (0..spec.grid_len() as u64).collect();
    assert_eq!(seen, expected);

    // The merged report itself stays in grid order.
    let report = outcome.report().expect("campaign completed");
    for (i, run) in report.runs.iter().enumerate() {
        assert_eq!(run.index, i as u64);
    }
}

#[test]
fn serial_runner_and_engine_agree_on_fingerprints_and_totals() {
    let cfg = bench_config();
    let spec = sub_grid();
    let serial = run_campaign_serial(&cfg, &spec).expect("serial runs");
    let pooled = run_campaign(
        &cfg,
        &spec,
        &PoolOptions {
            workers: 8,
            ..PoolOptions::default()
        },
        None,
    )
    .expect("pooled runs");
    assert_eq!(serial.fingerprint, pooled.fingerprint);
    assert_eq!(serial.fingerprint, spec.fingerprint());
    let (a, b) = (
        serial.report().unwrap().totals(),
        pooled.report().unwrap().totals(),
    );
    assert_eq!(a, b);
    assert!(a.runs == spec.grid_len() as u64 && a.failed == 0);
}
