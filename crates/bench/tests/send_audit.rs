//! Compile-time `Send` audit for every type that crosses a campaign
//! worker-thread boundary.
//!
//! The parallel engine works because the `Simulation` itself — which is
//! *not* `Send` (its observer slot is an `Rc<RefCell<..>>`) — never
//! crosses a thread: workers construct it internally from plain-data
//! inputs and send plain-data outputs back. This file pins that
//! property: if a `Rc`, `RefCell` or raw pointer ever leaks into one of
//! these types, the campaign engine stops compiling here first, with a
//! readable error, instead of deep inside `thread::scope`.

use hpe_bench::{
    CampaignReport, CampaignRun, CampaignSnapshot, CampaignSpec, PlanSpec, PolicyKind, PoolOptions,
    RecoveryOptions, RunResult,
};
use hpe_core::Hpe;
use uvm_policies::{
    ArcPolicy, Bip, Car, Clock, ClockPro, Dip, EvictionPolicy, Ideal, Lfu, Lru, RandomPolicy, Rrip,
    SetLru, Traced, WsClock,
};
use uvm_sim::FaultPlan;
use uvm_types::{Oversubscription, SimConfig, SimStats};
use uvm_workloads::App;

fn assert_send<T: Send>() {}
fn assert_sync<T: Sync>() {}

/// Everything a worker *receives*: the cell coordinates and shared spec.
#[test]
fn campaign_inputs_are_send() {
    assert_send::<SimConfig>();
    assert_send::<CampaignSpec>();
    assert_send::<PlanSpec>();
    assert_send::<PolicyKind>();
    assert_send::<Oversubscription>();
    assert_send::<RecoveryOptions>();
    assert_send::<FaultPlan>();
    assert_send::<&'static App>();
    assert_send::<PoolOptions>();
    // Workers read the spec and cell list through shared references, so
    // Sync is load-bearing too, not just Send.
    assert_sync::<SimConfig>();
    assert_sync::<CampaignSpec>();
    assert_sync::<FaultPlan>();
    assert_sync::<&'static App>();
}

/// Everything a worker *sends back* over the collector channel.
#[test]
fn campaign_outputs_are_send() {
    assert_send::<SimStats>();
    assert_send::<RunResult>();
    assert_send::<CampaignRun>();
    assert_send::<CampaignReport>();
    assert_send::<CampaignSnapshot>();
}

/// Every concrete eviction policy is `Send`: none of them may ever grow
/// an `Rc`/`RefCell`, because policy values live inside the simulations
/// that campaign workers build on their own threads, and a future
/// engine may want to move constructed policies across threads.
#[test]
fn every_policy_boxes_as_send() {
    fn assert_policy_send<P: EvictionPolicy + Send>() {}
    assert_policy_send::<Lru>();
    assert_policy_send::<RandomPolicy>();
    assert_policy_send::<Lfu>();
    assert_policy_send::<Rrip>();
    assert_policy_send::<ClockPro>();
    assert_policy_send::<Ideal>();
    assert_policy_send::<SetLru>();
    assert_policy_send::<Car>();
    assert_policy_send::<Clock>();
    assert_policy_send::<WsClock>();
    assert_policy_send::<Bip>();
    assert_policy_send::<Dip>();
    assert_policy_send::<ArcPolicy>();
    assert_policy_send::<Traced<Lru>>();
    assert_policy_send::<Traced<Hpe>>();
    assert_policy_send::<Hpe>();
}

/// The boxed-trait-object form the audit actually cares about: a policy
/// behind `Box<dyn EvictionPolicy + Send>` coerces for every kind.
#[test]
fn policies_coerce_to_boxed_send_trait_objects() {
    fn boxed<P: EvictionPolicy + Send + 'static>(p: P) -> Box<dyn EvictionPolicy + Send> {
        Box::new(p)
    }
    let b = boxed(Lru::new());
    assert_eq!(b.name(), "LRU");
}
