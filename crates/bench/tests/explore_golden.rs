//! Golden tests for the fault-space exploration engine.
//!
//! The `fixtures/explore/seeded-bad.json` spec carries a known-bad fault
//! plan: a CompletionLoss window wider than the fixed retry policy's
//! total backoff, wrapped in decoy windows and noise knobs. The engine
//! must find it, shrink it to the single offending window, and produce
//! the *same counterexample bytes* on every rerun and for every worker
//! count — that determinism is what makes a shrunk repro trustworthy.

use std::path::Path;

use hpe_bench::{bench_config, replay_repro, repro_for, run_explore};
use uvm_sim::{ExploreSpec, FaultFamily};
use uvm_util::{FromJson, Json, ToJson};

fn load_spec(name: &str) -> ExploreSpec {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../fixtures/explore")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let spec = ExploreSpec::from_json(&Json::parse(&text).unwrap()).unwrap();
    spec.validate().unwrap();
    spec
}

#[test]
fn seeded_bad_is_found_shrunk_and_replayed_deterministically() {
    let cfg = bench_config();
    let spec = load_spec("seeded-bad.json");

    let one = run_explore(&cfg, &spec, 1, None).unwrap();
    let three = run_explore(&cfg, &spec, 3, None).unwrap();
    assert_eq!(
        one.to_json().to_string(),
        three.to_json().to_string(),
        "report bytes must not depend on worker count"
    );

    assert_eq!(one.counterexamples.len(), 1, "{:?}", one.counterexamples);
    let cx = &one.counterexamples[0];
    assert_eq!(cx.label, "fixture:0");
    assert_eq!(cx.invariant, "completes");
    assert!(cx.error.contains("retries exhausted"), "{}", cx.error);
    // Shrinking must strip both decoy windows and keep only the
    // CompletionLoss window that actually exhausts the retry policy,
    // with its width minimized below the planted 400k cycles.
    assert_eq!(cx.plan.windows.len(), 1, "{:?}", cx.plan.windows);
    assert_eq!(cx.plan.windows[0].family, FaultFamily::CompletionLoss);
    assert!(
        cx.plan.windows[0].width < 400_000,
        "width {} was not minimized",
        cx.plan.windows[0].width
    );

    // A rerun (different worker count again) reproduces the identical
    // counterexample bytes.
    let again = run_explore(&cfg, &spec, 2, None).unwrap();
    assert_eq!(one.to_json().to_string(), again.to_json().to_string());

    // The emitted repro replays in one step and reproduces the recorded
    // violation verbatim.
    let repro = repro_for(&spec, cx);
    let reproduced = replay_repro(&cfg, &repro).unwrap();
    assert_eq!(reproduced, Some((cx.invariant.clone(), cx.error.clone())));
}

#[test]
fn clean_smoke_spec_is_counterexample_free_for_any_worker_count() {
    let cfg = bench_config();
    let spec = load_spec("smoke.json");

    let one = run_explore(&cfg, &spec, 1, None).unwrap();
    assert!(one.counterexamples.is_empty(), "{:?}", one.counterexamples);
    assert_eq!(one.cases, 6, "2 families x 2 placements + 2 batch runs");
    assert_eq!(one.window_cases, 4);
    assert_eq!(one.batch_cases, 2);
    assert_eq!(one.shrink_probes, 0);

    let four = run_explore(&cfg, &spec, 4, None).unwrap();
    assert_eq!(
        one.to_json().to_string(),
        four.to_json().to_string(),
        "clean report bytes must not depend on worker count"
    );
}
