//! `hpe-trace` CLI exit-code contract, driven through the real binary
//! (`CARGO_BIN_EXE_hpe-trace`): diff exits 1 on divergence and 0 on
//! identical streams, and the profiler subcommands hold their promises
//! (conservation check, folded-stack shape).

use std::path::Path;
use std::process::{Command, Output};

fn hpe_trace(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hpe-trace"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("binary runs")
}

fn write(dir: &Path, name: &str, text: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, text).unwrap();
    path.to_str().unwrap().to_string()
}

const EVENTS_A: &str = "{\"kind\":\"FaultRaised\",\"time\":10,\"page\":1}\n\
                        {\"kind\":\"FaultServiced\",\"time\":40,\"page\":1}\n\
                        {\"kind\":\"MemoryFull\",\"time\":50}\n";

#[test]
fn diff_exits_zero_on_identical_and_one_on_mismatch() {
    let dir = std::env::temp_dir().join("hpe-trace-cli-diff");
    std::fs::create_dir_all(&dir).unwrap();
    let a = write(&dir, "a.jsonl", EVENTS_A);
    let same = write(&dir, "same.jsonl", EVENTS_A);
    // Same stream content: identical, exit 0.
    let out = hpe_trace(&["diff", &a, &same], &dir);
    assert_eq!(out.status.code(), Some(0), "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("identical"), "stdout: {stdout}");

    // One event differs: exit 1 and the divergence is localized.
    let b = write(
        &dir,
        "b.jsonl",
        &EVENTS_A.replace("\"time\":40", "\"time\":41"),
    );
    let out = hpe_trace(&["diff", &a, &b], &dir);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("first divergence at event 1"), "{stdout}");

    // A prefix stream (truncated file): counts differ, exit 1.
    let prefix = write(&dir, "prefix.jsonl", EVENTS_A.rsplit_once('{').unwrap().0);
    let out = hpe_trace(&["diff", &a, &prefix], &dir);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn diff_rejects_garbage_input_as_usage_error() {
    let dir = std::env::temp_dir().join("hpe-trace-cli-garbage");
    std::fs::create_dir_all(&dir).unwrap();
    let a = write(&dir, "a.jsonl", EVENTS_A);
    let garbage = write(&dir, "garbage.jsonl", "not json at all\n");
    let out = hpe_trace(&["diff", &a, &garbage], &dir);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 1"), "stderr: {stderr}");
}

#[test]
fn profile_subcommand_reports_conserved_breakdown() {
    let dir = std::env::temp_dir().join("hpe-trace-cli-profile");
    std::fs::create_dir_all(&dir).unwrap();
    let out = hpe_trace(&["profile", "STN"], &dir);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("conserved"), "stdout: {stdout}");
    assert!(stdout.contains("driver_idle"), "stdout: {stdout}");
    assert!(stdout.contains("metrics series"), "stdout: {stdout}");
}

#[test]
fn flame_subcommand_emits_folded_stacks() {
    let dir = std::env::temp_dir().join("hpe-trace-cli-flame");
    std::fs::create_dir_all(&dir).unwrap();
    let out = hpe_trace(&["flame", "STN"], &dir);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Folded-stack format: `frames;separated;by;semicolons <count>`.
    assert!(!stdout.trim().is_empty());
    for line in stdout.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("stack<space>count");
        assert!(stack.contains(';'), "line: {line}");
        count.parse::<u64>().expect("numeric sample count");
    }
    assert!(stdout.lines().any(|l| l.starts_with("driver;")));
}

#[test]
fn spans_subcommand_prints_stage_percentiles() {
    let dir = std::env::temp_dir().join("hpe-trace-cli-spans");
    std::fs::create_dir_all(&dir).unwrap();
    let out = hpe_trace(&["spans", "STN"], &dir);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("p99"), "stdout: {stdout}");
    assert!(stdout.contains("spans"), "stdout: {stdout}");
}
