//! Fig. 3 — evictions of LRU and RRIP normalized to the Ideal policy at
//! 75% oversubscription (the motivation experiment).
//!
//! Paper shape: RRIP thrashes badly on SRD and HSD; LRU is near-Ideal for
//! type I (except GEM) and type VI; RRIP is poor for type VI; both are
//! poor for some of types IV–V (BFS, HIS, SPV).

use hpe_bench::{bench_config, f3, run_policy, save_json, PolicyKind, Table};
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let cfg = bench_config();
    let rate = Oversubscription::Rate75;
    let mut t = Table::new(
        "Fig. 3: evictions normalized to Ideal (75% oversubscription)",
        &["app", "type", "Ideal", "LRU/Ideal", "RRIP/Ideal"],
    );
    let mut json = Vec::new();
    for app in registry::all() {
        let ideal = run_policy(&cfg, app, rate, PolicyKind::Ideal).expect("bench run");
        let lru = run_policy(&cfg, app, rate, PolicyKind::Lru).expect("bench run");
        let rrip = run_policy(&cfg, app, rate, PolicyKind::Rrip).expect("bench run");
        let base = ideal.stats.evictions().max(1) as f64;
        let nl = lru.stats.evictions() as f64 / base;
        let nr = rrip.stats.evictions() as f64 / base;
        t.row(vec![
            app.abbr().to_string(),
            app.pattern().roman().to_string(),
            ideal.stats.evictions().to_string(),
            f3(nl),
            f3(nr),
        ]);
        json.push(json!({
            "app": app.abbr(),
            "ideal_evictions": ideal.stats.evictions(),
            "lru_norm": nl,
            "rrip_norm": nr,
        }));
    }
    t.print();
    save_json("fig03", &json);
}
