//! Section V-C — host-CPU driver load.
//!
//! The paper reports absolute core load (busy time / execution time):
//! LRU 29.9%/39.3%, RRIP 30.3%/39.5%, CLOCK-Pro 29.5%/39.2%, HPE
//! 34.0%/47.2% at 75%/50%. In this reproduction the simulated GPU work per
//! page is ~10^3 smaller than real kernels while the 20 µs fault penalty
//! is unchanged, so execution time is driver-bound and the absolute load
//! saturates near 100% for every policy. The reproducible quantity is the
//! *relative* extra driver time HPE needs over each baseline — the paper's
//! ratios are HPE/LRU = 1.14 (75%) and 1.20 (50%).

use hpe_bench::{bench_config, f3, geomean, run_policy, save_json, PolicyKind, Table};
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let cfg = bench_config();
    let baselines = [PolicyKind::Lru, PolicyKind::Rrip, PolicyKind::ClockPro];
    let mut json = Vec::new();
    let mut t = Table::new(
        "Section V-C: HPE driver busy-cycles relative to each baseline",
        &[
            "rate",
            "vs LRU",
            "vs RRIP",
            "vs CLOCK-Pro",
            "abs load (LRU)",
            "abs load (HPE)",
        ],
    );
    for rate in [Oversubscription::Rate75, Oversubscription::Rate50] {
        let mut ratios = vec![Vec::new(); baselines.len()];
        let mut abs_lru = Vec::new();
        let mut abs_hpe = Vec::new();
        for app in registry::all() {
            let hpe = run_policy(&cfg, app, rate, PolicyKind::Hpe).expect("bench run");
            abs_hpe.push(hpe.stats.driver.core_load(hpe.stats.cycles));
            for (i, kind) in baselines.iter().enumerate() {
                let base = run_policy(&cfg, app, rate, *kind).expect("bench run");
                if *kind == PolicyKind::Lru {
                    abs_lru.push(base.stats.driver.core_load(base.stats.cycles));
                }
                if base.stats.driver.busy_cycles > 0 {
                    ratios[i].push(
                        hpe.stats.driver.busy_cycles as f64 / base.stats.driver.busy_cycles as f64,
                    );
                }
            }
        }
        let mut row = vec![rate.label()];
        for (i, kind) in baselines.iter().enumerate() {
            let g = geomean(&ratios[i]);
            row.push(f3(g));
            json.push(json!({
                "rate": rate.label(),
                "baseline": kind.label(),
                "hpe_busy_ratio": g,
            }));
        }
        row.push(format!(
            "{:.0}%",
            100.0 * abs_lru.iter().sum::<f64>() / abs_lru.len() as f64
        ));
        row.push(format!(
            "{:.0}%",
            100.0 * abs_hpe.iter().sum::<f64>() / abs_hpe.len() as f64
        ));
        t.row(row);
    }
    t.print();
    println!("paper reference (HPE/LRU busy-time ratio): 1.14 at 75%, 1.20 at 50%");
    println!("(absolute load saturates in this reproduction: execution is driver-bound)");
    save_json("coreload", &json);
}
