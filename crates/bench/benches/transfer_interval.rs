//! Section V-A (text) — sensitivity to the HIR transfer interval
//! (1 / 8 / 16 / 32 / 64 page faults).
//!
//! Paper finding: 16 makes the best tradeoff between transfer frequency
//! and performance (result not shown in the paper due to space).

use hpe_bench::{bench_config, f3, geomean, run_hpe_with, save_json, Table};
use hpe_core::HpeConfig;
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let cfg = bench_config();
    let rate = Oversubscription::Rate75;
    let intervals = [1u32, 8, 16, 32, 64];
    let apps = ["HSD", "SRD", "STN", "BFS", "GEM", "MVT", "B+T", "KMN"];

    let mut t = Table::new(
        "HIR transfer-interval sensitivity: IPC normalized to interval 16",
        &["app", "1", "8", "16", "32", "64"],
    );
    let mut per_interval: Vec<Vec<f64>> = vec![Vec::new(); intervals.len()];
    let mut json = Vec::new();
    for abbr in apps {
        let app = registry::by_abbr(abbr).expect("registered app");
        let ipcs: Vec<f64> = intervals
            .iter()
            .map(|&ti| {
                let mut hpe_cfg = HpeConfig::from_sim(&cfg);
                hpe_cfg.transfer_interval = ti;
                run_hpe_with(&cfg, app, rate, hpe_cfg)
                    .expect("bench run")
                    .stats
                    .ipc()
            })
            .collect();
        let base = ipcs[2]; // interval 16
        let mut row = vec![abbr.to_string()];
        for (i, ipc) in ipcs.iter().enumerate() {
            let norm = ipc / base;
            per_interval[i].push(norm);
            row.push(f3(norm));
        }
        t.row(row);
        json.push(json!({ "app": abbr, "ipc": ipcs }));
    }
    let mut means = vec!["GEOMEAN".to_string()];
    for series in &per_interval {
        means.push(f3(geomean(series)));
    }
    t.row(means);
    t.print();
    println!("paper reference: 16 is the best tradeoff");
    save_json("transfer_interval", &json);
}
