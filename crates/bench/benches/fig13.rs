//! Fig. 13 — breakdown of eviction-strategy usage over time per
//! application, at both oversubscription rates.
//!
//! For each run, prints the fraction of faults spent under each strategy
//! and the switch/jump events. Paper shape: KMN, NW, B+T, HYB, SPV, MVT
//! run LRU throughout; HOT, BKP, PAT, LEU, CUT, MRQ, STN, 2DC, GEM run
//! MRU-C throughout; SRD/HSD/DWT/SGM adjust the search point; BFS, SAD,
//! HIS switch between strategies.

use hpe_bench::{bench_config, run_policy_traced, save_json, PolicyKind, Table};
use hpe_core::StrategyKind;
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let cfg = bench_config();
    let mut json = Vec::new();
    for rate in [Oversubscription::Rate75, Oversubscription::Rate50] {
        let mut t = Table::new(
            format!(
                "Fig. 13: eviction-strategy usage breakdown ({})",
                rate.label()
            ),
            &["app", "%LRU", "%MRU-C", "switches", "jumps", "timeline"],
        );
        for app in registry::all() {
            let (r, capture) =
                run_policy_traced(&cfg, app, rate, PolicyKind::Hpe).expect("bench run");
            let total_faults = r.stats.faults().max(1);
            let report = r.hpe.expect("HPE report");
            // Integrate the timeline over fault numbers, starting at the
            // classification point (no evictions happen before memory
            // fills, so earlier faults belong to no strategy).
            let tl = &report.timeline;
            let active_span = total_faults.saturating_sub(tl[0].0).max(1);
            let mut lru_faults = 0u64;
            for (i, &(start, strat)) in tl.iter().enumerate() {
                let end = tl.get(i + 1).map_or(total_faults, |&(f, _)| f);
                if strat == StrategyKind::Lru {
                    lru_faults += end.saturating_sub(start);
                }
            }
            let pct_lru = 100.0 * lru_faults as f64 / active_span as f64;
            let timeline_str: Vec<String> = tl.iter().map(|(f, s)| format!("{s}@{f}")).collect();
            t.row(vec![
                app.abbr().to_string(),
                format!("{pct_lru:.0}"),
                format!("{:.0}", 100.0 - pct_lru),
                report.timeline.len().saturating_sub(1).to_string(),
                report.jump_events.len().to_string(),
                timeline_str.join(" -> "),
            ]);
            // Enriched series from the trace: per fault-window counts of
            // strategy switches and wrong evictions (fig. 13's "over time"
            // axis, windowed by the classification interval length).
            let rows = capture.by_fault.rows();
            let switch_series: Vec<u64> = rows.iter().map(|w| w.strategy_switches).collect();
            let wrong_series: Vec<u64> = rows.iter().map(|w| w.wrong_evictions).collect();
            json.push(json!({
                "app": app.abbr(),
                "rate": rate.label(),
                "pct_lru": pct_lru,
                "switches": report.timeline.len() - 1,
                "jump_events": report.jump_events,
                "switch_series": switch_series,
                "wrong_eviction_series": wrong_series,
            }));
        }
        t.print();
    }
    save_json("fig13", &json);
}
