//! Fig. 9 — ratio₁ and ratio₂ of each application when GPU memory first
//! fills (75% oversubscription), plus the resulting classification.
//!
//! Paper shape: types I–III have small ratio₁ and ratio₂ (outliers KMN and
//! SAD with large ratio₁); types IV–VI have large ratio₁ or large ratio₂
//! (outlier SGM, whose small ratio₁ keeps it regular).

use hpe_bench::{bench_config, f2, run_policy, save_json, PolicyKind, Table};
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let cfg = bench_config();
    let rate = Oversubscription::Rate75;
    let mut t = Table::new(
        "Fig. 9: ratio1 / ratio2 at first memory-full (75% oversubscription)",
        &[
            "app",
            "type",
            "ratio1",
            "ratio2",
            "category",
            "old sets @full",
        ],
    );
    let mut json = Vec::new();
    for app in registry::all() {
        let r = run_policy(&cfg, app, rate, PolicyKind::Hpe).expect("bench run");
        let report = r.hpe.expect("HPE run carries a report");
        let (r1, r2, cat) = match report.classification {
            Some(c) => (c.ratio1, c.ratio2, c.category.to_string()),
            None => (0.0, 0.0, "(memory never filled)".to_string()),
        };
        t.row(vec![
            app.abbr().to_string(),
            app.pattern().roman().to_string(),
            f2(r1),
            f2(r2),
            cat.clone(),
            report
                .old_sets_at_full
                .map_or("-".to_string(), |n| n.to_string()),
        ]);
        json.push(json!({
            "app": app.abbr(),
            "pattern": app.pattern().roman(),
            "ratio1": if r1.is_finite() { r1 } else { -1.0 },
            "ratio2": if r2.is_finite() { r2 } else { -1.0 },
            "category": cat,
        }));
    }
    t.print();
    save_json("fig09", &json);
}
