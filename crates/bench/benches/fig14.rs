//! Fig. 14 — average MRU-C search overhead (entry comparisons per victim
//! search) per application.
//!
//! Applications that use LRU for their entire execution are omitted, as in
//! the paper. Paper shape: typically below 50 comparisons, with BFS and
//! HIS as outliers (irregular#2 apps that adjust during runtime).

use hpe_bench::{bench_config, f2, run_policy_traced, save_json, PolicyKind, Table};
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let cfg = bench_config();
    let mut t = Table::new(
        "Fig. 14: average MRU-C comparisons per search",
        &["app", "rate", "searches", "avg comparisons"],
    );
    let mut json = Vec::new();
    for rate in [Oversubscription::Rate75, Oversubscription::Rate50] {
        for app in registry::all() {
            let (r, capture) =
                run_policy_traced(&cfg, app, rate, PolicyKind::Hpe).expect("bench run");
            let report = r.hpe.expect("HPE report");
            if report.mruc_searches == 0 {
                continue; // LRU for the entire execution: omitted.
            }
            let avg = report.mruc_comparisons as f64 / report.mruc_searches as f64;
            t.row(vec![
                app.abbr().to_string(),
                rate.label(),
                report.mruc_searches.to_string(),
                f2(avg),
            ]);
            // Enriched: full distribution of per-search comparison counts
            // (the figure only shows the average).
            json.push(json!({
                "app": app.abbr(),
                "rate": rate.label(),
                "searches": report.mruc_searches,
                "avg_comparisons": avg,
                "comparisons_hist": capture.histograms.search_comparisons(),
            }));
        }
    }
    t.print();
    println!("paper reference: typically < 50 comparisons; outliers BFS, HIS");
    save_json("fig14", &json);
}
