//! Extension — fault batching: the driver services up to N queued demand
//! faults per 20 µs window (real UVM drivers batch per interrupt; the
//! paper's model is N = 1). Batching compresses fault-bound execution and
//! shifts the bottleneck back toward the eviction policy's decisions.

use hpe_bench::{bench_config, run_policy, save_json, PolicyKind, Table};
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let rate = Oversubscription::Rate75;
    let apps = ["HSD", "SRD", "GEM", "BFS", "KMN", "B+T"];
    let batches = [1u32, 4, 16, 64];
    let mut json = Vec::new();
    for kind in [PolicyKind::Lru, PolicyKind::Hpe] {
        let mut t = Table::new(
            format!(
                "Fault-batch sweep under {} (75%): cycles (IPC x1000)",
                kind.label()
            ),
            &["app", "batch=1", "batch=4", "batch=16", "batch=64"],
        );
        for abbr in apps {
            let app = registry::by_abbr(abbr).expect("registered app");
            let mut row = vec![abbr.to_string()];
            for &b in &batches {
                let mut cfg = bench_config();
                cfg.fault_batch = b;
                let r = run_policy(&cfg, app, rate, kind).expect("bench run");
                row.push(format!(
                    "{} ({:.2})",
                    r.stats.cycles,
                    r.stats.ipc() * 1000.0
                ));
                json.push(json!({
                    "app": abbr,
                    "policy": kind.label(),
                    "batch": b,
                    "cycles": r.stats.cycles,
                    "faults": r.stats.faults(),
                    "ipc": r.stats.ipc(),
                }));
            }
            t.row(row);
        }
        t.print();
    }
    save_json("batching", &json);
}
