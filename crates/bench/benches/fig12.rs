//! Fig. 12 — performance and evictions of Random, RRIP, CLOCK-Pro, LRU,
//! and HPE, normalized to the Ideal policy, at both oversubscription
//! rates.
//!
//! Paper shape: HPE leads on average (within 11% of Ideal's performance,
//! ~16–18% more evictions than Ideal); Random is competitive with LRU
//! except for types IV and VI; Random/RRIP/CLOCK-Pro all trail LRU on
//! type VI. Paper averages: HPE speedup over Random/RRIP/CLOCK-Pro =
//! 1.16/1.27/1.20 (75%) and 1.21/1.16/1.15 (50%).

use hpe_bench::{bench_config, f3, geomean, run_policy, save_json, PolicyKind, Table};
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let cfg = bench_config();
    let kinds = [
        PolicyKind::Random,
        PolicyKind::Rrip,
        PolicyKind::ClockPro,
        PolicyKind::Lru,
        PolicyKind::Hpe,
    ];
    let mut json = Vec::new();
    for rate in [Oversubscription::Rate75, Oversubscription::Rate50] {
        let mut perf = Table::new(
            format!("Fig. 12a: IPC normalized to Ideal ({})", rate.label()),
            &["app", "Random", "RRIP", "CLOCK-Pro", "LRU", "HPE"],
        );
        let mut evs = Table::new(
            format!("Fig. 12b: evictions normalized to Ideal ({})", rate.label()),
            &["app", "Random", "RRIP", "CLOCK-Pro", "LRU", "HPE"],
        );
        let mut norm_perf: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
        let mut norm_ev: Vec<Vec<f64>> = vec![Vec::new(); kinds.len()];
        for app in registry::all() {
            let ideal = run_policy(&cfg, app, rate, PolicyKind::Ideal).expect("bench run");
            let ipc0 = ideal.stats.ipc();
            let ev0 = ideal.stats.evictions().max(1) as f64;
            let mut prow = vec![app.abbr().to_string()];
            let mut erow = vec![app.abbr().to_string()];
            for (i, kind) in kinds.iter().enumerate() {
                let r = run_policy(&cfg, app, rate, *kind).expect("bench run");
                let p = r.stats.ipc() / ipc0;
                let e = r.stats.evictions() as f64 / ev0;
                norm_perf[i].push(p);
                norm_ev[i].push(e);
                prow.push(f3(p));
                erow.push(f3(e));
                json.push(json!({
                    "app": app.abbr(),
                    "rate": rate.label(),
                    "policy": kind.label(),
                    "ipc_norm": p,
                    "evictions_norm": e,
                }));
            }
            perf.row(prow);
            evs.row(erow);
        }
        let mut pmean = vec!["GEOMEAN".to_string()];
        let mut emean = vec!["MEAN".to_string()];
        for i in 0..kinds.len() {
            pmean.push(f3(geomean(&norm_perf[i])));
            emean.push(f3(norm_ev[i].iter().sum::<f64>() / norm_ev[i].len() as f64));
        }
        perf.row(pmean);
        evs.row(emean);
        perf.print();
        evs.print();

        // HPE speedup over the other policies (the paper's headline rows).
        let hpe_gm = geomean(&norm_perf[4]);
        println!("HPE speedup over:");
        for (i, name) in ["Random", "RRIP", "CLOCK-Pro", "LRU"].iter().enumerate() {
            println!("  {name:10} {:.2}x", hpe_gm / geomean(&norm_perf[i]));
        }
    }
    save_json("fig12", &json);
}
