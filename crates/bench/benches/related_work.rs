//! Extension — the Section VI-B related-work policies (CLOCK, WSClock,
//! BIP, DIP, ARC, LFU) measured on the same workloads as the paper's
//! comparison set, normalized to LRU. Quantifies the paper's qualitative
//! claims: NRU/CLOCK inherit LRU's thrashing and frequency alone (LFU) is
//! not enough. It also exposes a unified-memory-specific effect: the
//! faulting warp's replay re-references every migrated page immediately,
//! so insertion-position policies (BIP/DIP's LRU-side insertion, ARC's
//! recency list) are promoted right back to MRU/frequent and collapse
//! onto LRU — the instant-re-reference phenomenon HPE's new-partition
//! protection is designed around.

use hpe_bench::{bench_config, f3, save_json, Table};
use hpe_core::{Hpe, HpeConfig};
use uvm_policies::{
    ArcPolicy, Bip, Car, Clock, Dip, EvictionPolicy, Lfu, Lru, SetLru, WsClock, WsClockConfig,
};
use uvm_sim::{trace_for, Simulation};
use uvm_types::{Oversubscription, SimConfig, SimStats};
use uvm_util::json;
use uvm_workloads::registry;

fn run<P: EvictionPolicy>(cfg: &SimConfig, abbr: &str, policy: P) -> SimStats {
    let app = registry::by_abbr(abbr).expect("registered app");
    let trace = trace_for(cfg, app);
    let capacity = Oversubscription::Rate75.capacity_pages(app.footprint_pages());
    Simulation::new(cfg.clone(), &trace, policy, capacity)
        .expect("valid sim")
        .run()
        .expect("run completes")
        .stats
}

fn main() {
    let cfg = bench_config();
    let apps = ["LEU", "GEM", "HSD", "STN", "BFS", "KMN", "HWL", "B+T"];
    let mut t = Table::new(
        "Related-work policies: IPC normalized to LRU (75%)",
        &[
            "app", "CLOCK", "WSClock", "LFU", "BIP", "DIP", "ARC", "CAR", "SetLRU", "HPE",
        ],
    );
    let mut json = Vec::new();
    for abbr in apps {
        let lru = run(&cfg, abbr, Lru::new()).ipc();
        let results: Vec<(&str, f64)> = vec![
            ("CLOCK", run(&cfg, abbr, Clock::new()).ipc()),
            (
                "WSClock",
                run(&cfg, abbr, WsClock::new(WsClockConfig::default())).ipc(),
            ),
            ("LFU", run(&cfg, abbr, Lfu::new()).ipc()),
            ("BIP", run(&cfg, abbr, Bip::new()).ipc()),
            ("DIP", run(&cfg, abbr, Dip::new()).ipc()),
            ("ARC", run(&cfg, abbr, ArcPolicy::new()).ipc()),
            ("CAR", run(&cfg, abbr, Car::new()).ipc()),
            (
                "SetLRU",
                run(&cfg, abbr, SetLru::new(cfg.page_set_shift())).ipc(),
            ),
            (
                "HPE",
                run(
                    &cfg,
                    abbr,
                    Hpe::new(HpeConfig::from_sim(&cfg)).expect("valid HPE"),
                )
                .ipc(),
            ),
        ];
        let mut row = vec![abbr.to_string()];
        for (name, ipc) in &results {
            row.push(f3(ipc / lru));
            json.push(json!({
                "app": abbr,
                "policy": name,
                "ipc_vs_lru": ipc / lru,
            }));
        }
        t.row(row);
    }
    t.print();
    save_json("related_work", &json);
}
