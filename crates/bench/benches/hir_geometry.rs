//! Section IV-B / V-A (text) — HIR geometry: the paper found an 8-way,
//! 1024-entry HIR eliminates way conflicts for most applications (MVT
//! excepted in their full-scale runs) and that the cache beats an
//! address-order buffer on storage. This bench sweeps the geometry and
//! reports conflicts and IPC.

use hpe_bench::{bench_config, run_hpe_with, save_json, Table};
use hpe_core::HpeConfig;
use uvm_types::{HirGeometry, Oversubscription};
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let cfg = bench_config();
    let rate = Oversubscription::Rate75;
    let apps = ["HSD", "GEM", "KMN", "MVT", "NW", "SPV", "BFS"];
    let geometries = [
        (64u32, 4u32),
        (128, 4),
        (256, 8),
        (1024, 8), // the paper's choice
    ];
    let mut t = Table::new(
        "HIR geometry sweep (75%): way-conflict evictions (IPC x1000)",
        &["app", "64e/4w", "128e/4w", "256e/8w", "1024e/8w (paper)"],
    );
    let mut json = Vec::new();
    for abbr in apps {
        let app = registry::by_abbr(abbr).expect("registered app");
        let mut row = vec![abbr.to_string()];
        for &(entries, ways) in &geometries {
            let mut hpe_cfg = HpeConfig::from_sim(&cfg);
            hpe_cfg.hir = HirGeometry {
                entries,
                ways,
                counter_bits: 2,
            };
            let r = run_hpe_with(&cfg, app, rate, hpe_cfg).expect("bench run");
            let p = &r.stats.policy;
            row.push(format!(
                "{} ({:.2})",
                p.hir_conflict_evictions,
                r.stats.ipc() * 1000.0
            ));
            json.push(json!({
                "app": abbr,
                "entries": entries,
                "ways": ways,
                "conflicts": p.hir_conflict_evictions,
                "ipc": r.stats.ipc(),
            }));
        }
        t.row(row);
    }
    t.print();
    println!("paper reference: 8-way/1024 entries eliminates conflicts for most applications");
    save_json("hir_geometry", &json);
}
