//! Table II — workload characteristics: the 23 applications, their suites,
//! access-pattern types, and (reproduction-specific) scaled footprints.

use hpe_bench::{bench_config, save_json, Table};
use uvm_sim::trace_for;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let cfg = bench_config();
    let mut t = Table::new(
        "Table II: workload characteristics",
        &[
            "type",
            "suite",
            "app",
            "abbr",
            "footprint (pages)",
            "trace ops",
        ],
    );
    let mut json = Vec::new();
    for app in registry::all() {
        let trace = trace_for(&cfg, app);
        t.row(vec![
            app.pattern().roman().to_string(),
            app.suite().to_string(),
            app.name().to_string(),
            app.abbr().to_string(),
            app.footprint_pages().to_string(),
            trace.total_ops().to_string(),
        ]);
        json.push(json!({
            "abbr": app.abbr(),
            "name": app.name(),
            "suite": app.suite().to_string(),
            "pattern": app.pattern().roman(),
            "footprint_pages": app.footprint_pages(),
            "trace_ops": trace.total_ops(),
        }));
    }
    t.print();
    println!(
        "(footprints scaled from the paper's 3-130 MB to 3-16 MB; TLB reach scaled to match — see DESIGN.md)"
    );
    save_json("table2", &json);
}
