//! Ablation study (beyond the paper): what each HPE mechanism contributes.
//!
//! Disables one mechanism at a time — HIR-batched hit transfer (replaced
//! by ideal immediate transfer), page set division, dynamic adjustment —
//! and measures the IPC change against full HPE on the applications each
//! mechanism targets.

use hpe_bench::{bench_config, f3, run_hpe_with, run_policy, save_json, PolicyKind, Table};
use hpe_core::HpeConfig;
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let cfg = bench_config();
    let rate = Oversubscription::Rate75;
    let apps = [
        "HSD", "SRD", "STN", "GEM", // type II / MRU-C beneficiaries
        "NW", "MVT", // division targets
        "BFS", "HIS", "SAD", // adjustment targets
        "B+T", "KMN",
    ];

    type Variant = (&'static str, fn(&mut HpeConfig));
    let variants: [Variant; 4] = [
        ("no-division", |c| c.enable_division = false),
        ("no-adjustment", |c| c.dynamic_adjustment = false),
        ("no-partitions", |c| c.enable_partitions = false),
        ("ideal-transfer", |c| c.use_hir = false),
    ];

    let mut t = Table::new(
        "Ablation: IPC of each variant normalized to full HPE (75%)",
        &[
            "app",
            "full HPE IPC",
            "no-division",
            "no-adjustment",
            "no-partitions",
            "ideal-transfer",
            "LRU",
        ],
    );
    let mut json = Vec::new();
    for abbr in apps {
        let app = registry::by_abbr(abbr).expect("registered app");
        let full = run_hpe_with(&cfg, app, rate, HpeConfig::from_sim(&cfg)).expect("bench run");
        let base_ipc = full.stats.ipc();
        let mut row = vec![abbr.to_string(), format!("{base_ipc:.5}")];
        let mut entry = json!({ "app": abbr, "full_ipc": base_ipc });
        for (name, tweak) in variants {
            let mut hpe_cfg = HpeConfig::from_sim(&cfg);
            tweak(&mut hpe_cfg);
            let r = run_hpe_with(&cfg, app, rate, hpe_cfg).expect("bench run");
            let norm = r.stats.ipc() / base_ipc;
            row.push(f3(norm));
            entry[name] = json!(norm);
        }
        let lru = run_policy(&cfg, app, rate, PolicyKind::Lru).expect("bench run");
        row.push(f3(lru.stats.ipc() / base_ipc));
        entry["lru"] = json!(lru.stats.ipc() / base_ipc);
        t.row(row);
        json.push(entry);
    }
    t.print();
    save_json("ablation", &json);
}
