//! Section V-B (text) — sensitivity to page walk latency: LRU and HPE at
//! walk latencies of 8 and 20 cycles.
//!
//! Paper finding: minimal performance difference; the latency variation
//! has minimal effect on eviction decisions.

use hpe_bench::{bench_config, f3, run_policy, save_json, PolicyKind, Table};
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let rate = Oversubscription::Rate75;
    let apps = ["HSD", "STN", "BFS", "B+T", "GEM", "KMN"];
    let mut t = Table::new(
        "Page-walk-latency sensitivity: IPC at 20 cycles normalized to 8 cycles",
        &[
            "app",
            "LRU 20/8",
            "HPE 20/8",
            "LRU faults same?",
            "HPE faults same?",
        ],
    );
    let mut json = Vec::new();
    for abbr in apps {
        let app = registry::by_abbr(abbr).expect("registered app");
        let mut cfg8 = bench_config();
        cfg8.page_walk_cycles = 8;
        let mut cfg20 = bench_config();
        cfg20.page_walk_cycles = 20;

        let lru8 = run_policy(&cfg8, app, rate, PolicyKind::Lru).expect("bench run");
        let lru20 = run_policy(&cfg20, app, rate, PolicyKind::Lru).expect("bench run");
        let hpe8 = run_policy(&cfg8, app, rate, PolicyKind::Hpe).expect("bench run");
        let hpe20 = run_policy(&cfg20, app, rate, PolicyKind::Hpe).expect("bench run");

        t.row(vec![
            abbr.to_string(),
            f3(lru20.stats.ipc() / lru8.stats.ipc()),
            f3(hpe20.stats.ipc() / hpe8.stats.ipc()),
            (lru20.stats.faults() == lru8.stats.faults()).to_string(),
            (hpe20.stats.faults() == hpe8.stats.faults()).to_string(),
        ]);
        json.push(json!({
            "app": abbr,
            "lru_ratio": lru20.stats.ipc() / lru8.stats.ipc(),
            "hpe_ratio": hpe20.stats.ipc() / hpe8.stats.ipc(),
        }));
    }
    t.print();
    println!("paper reference: minimal difference between 8 and 20 cycles");
    save_json("walklat", &json);
}
