//! Table III — the statistics-based classification rules, demonstrated on
//! synthetic counter distributions and verified against every registered
//! application's measured classification at 75% oversubscription.

use hpe_bench::{bench_config, f2, run_policy, save_json, PolicyKind, Table};
use hpe_core::{classify, Category, CounterStats};
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    // The rules themselves.
    let mut rules = Table::new(
        "Table III: statistics-based classification",
        &["category", "ratio1", "ratio2"],
    );
    rules.row(vec!["regular".into(), "<= 0.3".into(), "< 2".into()]);
    rules.row(vec!["irregular#1".into(), "<= 0.3".into(), ">= 2".into()]);
    rules.row(vec!["irregular#2".into(), "> 0.3".into(), "(any)".into()]);
    rules.print();

    // Demonstration on synthetic distributions.
    let cases = [
        (
            "mostly small+regular",
            CounterStats {
                regular: 95,
                irregular: 5,
                small_regular: 90,
                large_regular: 5,
            },
        ),
        (
            "mostly large+regular",
            CounterStats {
                regular: 90,
                irregular: 10,
                small_regular: 20,
                large_regular: 70,
            },
        ),
        (
            "mostly irregular",
            CounterStats {
                regular: 30,
                irregular: 70,
                small_regular: 25,
                large_regular: 5,
            },
        ),
    ];
    let mut demo = Table::new(
        "classification on synthetic counter distributions",
        &["distribution", "ratio1", "ratio2", "category"],
    );
    for (name, c) in cases {
        let r = classify(&c, 0.3, 2.0);
        demo.row(vec![
            name.into(),
            f2(r.ratio1),
            f2(r.ratio2),
            r.category.to_string(),
        ]);
    }
    demo.print();

    // Measured classification of every application.
    let cfg = bench_config();
    let mut measured = Table::new(
        "measured classification per application (75% oversubscription)",
        &["app", "type", "category"],
    );
    let mut json = Vec::new();
    let mut counts = [0usize; 3];
    for app in registry::all() {
        let r =
            run_policy(&cfg, app, Oversubscription::Rate75, PolicyKind::Hpe).expect("bench run");
        let cat = r.hpe.and_then(|h| h.classification).map(|c| c.category);
        let label = cat.map_or("(memory never filled)".to_string(), |c| c.to_string());
        if let Some(c) = cat {
            counts[match c {
                Category::Regular => 0,
                Category::Irregular1 => 1,
                Category::Irregular2 => 2,
            }] += 1;
        }
        measured.row(vec![
            app.abbr().to_string(),
            app.pattern().roman().to_string(),
            label.clone(),
        ]);
        json.push(json!({ "app": app.abbr(), "category": label }));
    }
    measured.print();
    println!(
        "totals: {} regular, {} irregular#1, {} irregular#2",
        counts[0], counts[1], counts[2]
    );
    save_json("table3", &json);
}
