//! Fig. 10 — HPE's performance (IPC) compared to LRU at 75% and 50%
//! oversubscription.
//!
//! Paper shape: speedup ~1 for types I and VI, large speedups for type II
//! (up to 2.81x on HSD at 75%), slight gains for types III–V, a few apps
//! slightly below 1 (NW, SAD, MVT, HWL); averages 1.34x (75%) and
//! 1.16x (50%).

use hpe_bench::{bench_config, f3, geomean, run_policy, save_json, PolicyKind, Table};
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let cfg = bench_config();
    let mut json = Vec::new();
    for rate in [Oversubscription::Rate75, Oversubscription::Rate50] {
        let mut t = Table::new(
            format!("Fig. 10: HPE vs LRU IPC, oversubscription {}", rate.label()),
            &["app", "type", "LRU IPC", "HPE IPC", "speedup"],
        );
        let mut speedups = Vec::new();
        for app in registry::all() {
            let lru = run_policy(&cfg, app, rate, PolicyKind::Lru).expect("bench run");
            let hpe = run_policy(&cfg, app, rate, PolicyKind::Hpe).expect("bench run");
            let speedup = hpe.stats.ipc() / lru.stats.ipc();
            speedups.push(speedup);
            t.row(vec![
                app.abbr().to_string(),
                app.pattern().roman().to_string(),
                format!("{:.5}", lru.stats.ipc()),
                format!("{:.5}", hpe.stats.ipc()),
                f3(speedup),
            ]);
            json.push(json!({
                "app": app.abbr(),
                "rate": rate.label(),
                "lru_ipc": lru.stats.ipc(),
                "hpe_ipc": hpe.stats.ipc(),
                "speedup": speedup,
            }));
        }
        t.row(vec![
            "GEOMEAN".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            f3(geomean(&speedups)),
        ]);
        t.print();
        println!(
            "paper reference: average speedup {} at this rate; max 2.81x (HSD, 75%)",
            if matches!(rate, Oversubscription::Rate75) {
                "1.34x"
            } else {
                "1.16x"
            }
        );
    }
    save_json("fig10", &json);
}
