//! Fig. 8 — HPE's sensitivity to interval length (32 / 64 / 128), page
//! set size 16.
//!
//! Same methodology as Fig. 7 (adjustment off, manual strategy, ideal hit
//! transfer); average IPC per pattern type normalized to interval 32.
//! Paper shape: within ~12%; 64 and 128 slightly ahead of 32; 128 is
//! unstable for type II (best for SRD, worst for STN), so the paper picks
//! 64.

use hpe_bench::{bench_config, f3, manual_strategy_for, mean, run_hpe_with, save_json, Table};
use hpe_core::HpeConfig;
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::{registry, PatternType};

fn sensitivity_cfg(interval_len: u32, app: &uvm_workloads::App) -> HpeConfig {
    let mut cfg = HpeConfig::paper_default();
    cfg.interval_len = interval_len;
    cfg.fifo_depth = 2 * interval_len;
    cfg.use_hir = false;
    cfg.dynamic_adjustment = false;
    cfg.forced_strategy = Some(manual_strategy_for(app));
    cfg
}

fn main() {
    let cfg = bench_config();
    let rate = Oversubscription::Rate75;
    let intervals = [32u32, 64, 128];

    let mut per_pattern: Vec<Vec<f64>> = vec![Vec::new(); intervals.len()];
    let mut json = Vec::new();
    for (ii, &interval) in intervals.iter().enumerate() {
        for pattern in PatternType::ALL {
            let ipcs: Vec<f64> = registry::by_pattern(pattern)
                .into_iter()
                .map(|app| {
                    let r = run_hpe_with(&cfg, app, rate, sensitivity_cfg(interval, app))
                        .expect("bench run");
                    r.stats.ipc()
                })
                .collect();
            per_pattern[ii].push(mean(&ipcs));
        }
    }

    let mut t = Table::new(
        "Fig. 8: HPE sensitivity to interval length (avg IPC per type, normalized to 32)",
        &["pattern", "interval 32", "interval 64", "interval 128"],
    );
    for (pi, pattern) in PatternType::ALL.iter().enumerate() {
        let base = per_pattern[0][pi];
        let norm: Vec<f64> = (0..intervals.len())
            .map(|ii| {
                if base > 0.0 {
                    per_pattern[ii][pi] / base
                } else {
                    0.0
                }
            })
            .collect();
        t.row(vec![
            format!("Type {}", pattern.roman()),
            f3(norm[0]),
            f3(norm[1]),
            f3(norm[2]),
        ]);
        json.push(json!({
            "pattern": pattern.roman(),
            "normalized_ipc": norm,
        }));
    }
    t.print();

    // The type II instability the paper calls out (SRD vs STN at 128).
    let mut t2 = Table::new(
        "Fig. 8 detail: type II per-app IPC normalized to interval 32",
        &["app", "interval 32", "interval 64", "interval 128"],
    );
    for app in registry::by_pattern(PatternType::Thrashing) {
        let ipcs: Vec<f64> = intervals
            .iter()
            .map(|&i| {
                run_hpe_with(&cfg, app, rate, sensitivity_cfg(i, app))
                    .expect("bench run")
                    .stats
                    .ipc()
            })
            .collect();
        t2.row(vec![
            app.abbr().to_string(),
            f3(1.0),
            f3(ipcs[1] / ipcs[0]),
            f3(ipcs[2] / ipcs[0]),
        ]);
    }
    t2.print();
    println!("paper reference: differences within ~12%; the paper selects 64");
    save_json("fig08", &json);
}
