//! Validation — empirical access-pattern profiles of the 23 workload
//! models, the evidence that each realizes its Fig. 2 pattern type:
//! streaming has no finite reuse, thrashing reuses at footprint scale,
//! region/window types reuse at region scale, irregular types spread.

use hpe_bench::{save_json, Table};
use uvm_util::json;
use uvm_workloads::{analysis, registry, PatternType};

fn main() {
    let mut t = Table::new(
        "Workload access-pattern profiles (LRU stack distances over the global sequence)",
        &[
            "app",
            "type",
            "refs",
            "distinct",
            "compulsory%",
            "median reuse",
            "p90 reuse",
            "max refs/page",
        ],
    );
    let mut json = Vec::new();
    for app in registry::all() {
        let seq = app.global_sequence();
        let p = analysis::profile(&seq);
        t.row(vec![
            app.abbr().to_string(),
            app.pattern().roman().to_string(),
            p.refs.to_string(),
            p.distinct.to_string(),
            format!("{:.0}", 100.0 * p.compulsory_fraction),
            p.median_reuse.map_or("-".to_string(), |d| d.to_string()),
            p.p90_reuse.map_or("-".to_string(), |d| d.to_string()),
            p.max_refs_per_page.to_string(),
        ]);
        json.push(json!({
            "app": app.abbr(),
            "pattern": app.pattern().roman(),
            "refs": p.refs,
            "distinct": p.distinct,
            "compulsory_fraction": p.compulsory_fraction,
            "median_reuse": p.median_reuse,
            "p90_reuse": p.p90_reuse,
            "max_refs_per_page": p.max_refs_per_page,
        }));

        // Sanity: pattern-type signatures hold.
        match app.pattern() {
            PatternType::Streaming if app.abbr() != "GEM" => {
                assert!(
                    p.median_reuse.is_none() || p.median_reuse == Some(0),
                    "{}: streaming app has reuse",
                    app.abbr()
                );
            }
            PatternType::Thrashing => {
                let m = p.median_reuse.expect("thrashing reuses") as f64;
                assert!(
                    m > 0.9 * app.footprint_pages() as f64,
                    "{}: thrashing reuse not at footprint scale",
                    app.abbr()
                );
            }
            _ => {}
        }
    }
    t.print();
    save_json("workload_profiles", &json);
}
