//! Fig. 11 — HPE's evictions compared to LRU at 75% and 50%
//! oversubscription.
//!
//! Paper shape: similar evictions for types I and VI, slightly fewer for
//! III–V, far fewer for type II; on average 18% (75%) and 12% (50%) fewer
//! pages evicted.

use hpe_bench::{bench_config, f3, mean, run_policy, save_json, PolicyKind, Table};
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let cfg = bench_config();
    let mut json = Vec::new();
    for rate in [Oversubscription::Rate75, Oversubscription::Rate50] {
        let mut t = Table::new(
            format!(
                "Fig. 11: HPE vs LRU evictions, oversubscription {}",
                rate.label()
            ),
            &["app", "type", "LRU evictions", "HPE evictions", "HPE/LRU"],
        );
        let mut ratios = Vec::new();
        for app in registry::all() {
            let lru = run_policy(&cfg, app, rate, PolicyKind::Lru).expect("bench run");
            let hpe = run_policy(&cfg, app, rate, PolicyKind::Hpe).expect("bench run");
            let ratio = if lru.stats.evictions() == 0 {
                1.0
            } else {
                hpe.stats.evictions() as f64 / lru.stats.evictions() as f64
            };
            ratios.push(ratio);
            t.row(vec![
                app.abbr().to_string(),
                app.pattern().roman().to_string(),
                lru.stats.evictions().to_string(),
                hpe.stats.evictions().to_string(),
                f3(ratio),
            ]);
            json.push(json!({
                "app": app.abbr(),
                "rate": rate.label(),
                "lru_evictions": lru.stats.evictions(),
                "hpe_evictions": hpe.stats.evictions(),
                "ratio": ratio,
            }));
        }
        let avg = mean(&ratios);
        t.row(vec![
            "MEAN".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            f3(avg),
        ]);
        t.print();
        println!(
            "measured: {:.0}% fewer evictions on average (paper: {}%)",
            100.0 * (1.0 - avg),
            if matches!(rate, Oversubscription::Rate75) {
                18
            } else {
                12
            }
        );
    }
    save_json("fig11", &json);
}
