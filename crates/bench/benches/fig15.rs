//! Fig. 15 — average number of HIR entries transferred per flush, per
//! application (75% oversubscription).
//!
//! Paper shape: fewer than ten for most applications; MVT is the outlier
//! (its stride-4 touches waste HIR entry space, so many entries carry only
//! a few counters each).

use hpe_bench::{bench_config, f2, run_policy_traced, save_json, PolicyKind, Table};
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let cfg = bench_config();
    let rate = Oversubscription::Rate75;
    let mut t = Table::new(
        "Fig. 15: average HIR entries transferred per flush (75%)",
        &["app", "flushes", "entries total", "avg/flush", "conflicts"],
    );
    let mut json = Vec::new();
    for app in registry::all() {
        let (r, capture) = run_policy_traced(&cfg, app, rate, PolicyKind::Hpe).expect("bench run");
        let p = &r.stats.policy;
        t.row(vec![
            app.abbr().to_string(),
            p.hir_flushes.to_string(),
            p.hir_entries_transferred.to_string(),
            f2(p.avg_hir_entries_per_flush()),
            p.hir_conflict_evictions.to_string(),
        ]);
        // Enriched: flush-size distribution plus HIR entries per fault
        // window (the figure only shows the average).
        let hir_series: Vec<u64> = capture
            .by_fault
            .rows()
            .iter()
            .map(|w| w.hir_entries)
            .collect();
        json.push(json!({
            "app": app.abbr(),
            "flushes": p.hir_flushes,
            "entries": p.hir_entries_transferred,
            "avg_per_flush": p.avg_hir_entries_per_flush(),
            "conflicts": p.hir_conflict_evictions,
            "flush_entries_hist": capture.histograms.hir_flush_entries(),
            "hir_series": hir_series,
        }));
    }
    t.print();
    save_json("fig15", &json);
}
