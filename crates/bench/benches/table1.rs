//! Table I — configuration of the simulated system.
//!
//! Prints the paper configuration next to the scaled reproduction
//! configuration actually used by the figure benches.

use hpe_bench::{save_json, Table};
use uvm_types::SimConfig;
use uvm_util::json;

fn main() {
    let paper = SimConfig::paper_default();
    let scaled = SimConfig::scaled_default();

    let mut t = Table::new(
        "Table I: simulated system configuration (paper vs. scaled reproduction)",
        &["parameter", "paper", "scaled (used by benches)"],
    );
    let row = |t: &mut Table, name: &str, p: String, s: String| {
        t.row(vec![name.to_string(), p, s]);
    };
    row(
        &mut t,
        "GPU cores",
        format!("{} @ {} GHz", paper.n_sms, paper.clock_ghz),
        format!("{} @ {} GHz", scaled.n_sms, scaled.clock_ghz),
    );
    row(
        &mut t,
        "warps per SM",
        paper.warps_per_sm.to_string(),
        scaled.warps_per_sm.to_string(),
    );
    row(
        &mut t,
        "private L1 TLB",
        format!(
            "{}-entry, {}-cycle",
            paper.l1_tlb.entries, paper.l1_tlb.latency_cycles
        ),
        format!(
            "{}-entry, {}-cycle",
            scaled.l1_tlb.entries, scaled.l1_tlb.latency_cycles
        ),
    );
    row(
        &mut t,
        "shared L2 TLB",
        format!(
            "{}-entry, {}-way, {}-cycle",
            paper.l2_tlb.entries, paper.l2_tlb.ways, paper.l2_tlb.latency_cycles
        ),
        format!(
            "{}-entry, {}-way, {}-cycle",
            scaled.l2_tlb.entries, scaled.l2_tlb.ways, scaled.l2_tlb.latency_cycles
        ),
    );
    row(
        &mut t,
        "page walk",
        format!("{} cycles", paper.page_walk_cycles),
        format!("{} cycles", scaled.page_walk_cycles),
    );
    row(
        &mut t,
        "fault service",
        format!(
            "{} us ({} cycles)",
            paper.fault_service_us,
            paper.fault_service_cycles()
        ),
        format!(
            "{} us ({} cycles)",
            scaled.fault_service_us,
            scaled.fault_service_cycles()
        ),
    );
    row(
        &mut t,
        "CPU-GPU interconnect",
        format!("{} GB/s", paper.pcie_gbps),
        format!("{} GB/s", scaled.pcie_gbps),
    );
    row(
        &mut t,
        "page set size",
        paper.page_set_size.to_string(),
        scaled.page_set_size.to_string(),
    );
    row(
        &mut t,
        "interval length",
        format!("{} faults", paper.interval_len),
        format!("{} faults", scaled.interval_len),
    );
    row(
        &mut t,
        "transfer interval",
        format!("{} faults", paper.transfer_interval),
        format!("{} faults", scaled.transfer_interval),
    );
    row(
        &mut t,
        "HIR cache",
        format!("{}-entry, {}-way", paper.hir.entries, paper.hir.ways),
        format!("{}-entry, {}-way", scaled.hir.entries, scaled.hir.ways),
    );
    t.print();

    save_json("table1", &json!({ "paper": paper, "scaled": scaled }));
}
