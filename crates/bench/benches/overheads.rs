//! Section V-C — Criterion microbenchmarks of HPE's operation costs.
//!
//! The paper measured (on its host): ~19.92% of the 20 µs fault penalty
//! for 300 list comparisons, 16.7 µs to classify KMN's chain, and 16.1 µs
//! to apply 150 records to a 200-entry chain. These benches measure the
//! same operations on this implementation's structures; absolute numbers
//! differ with hardware, but each should remain well under 20 µs.

use hpe_core::{classify, Hpe, HpeConfig, PageSetChain, StrategyKind};
use uvm_policies::{ClockPro, ClockProConfig, EvictionPolicy, Lru, Rrip, RripConfig};
use uvm_types::PageId;
use uvm_util::bench::{BatchSize, Criterion};
use uvm_util::{criterion_group, criterion_main};

/// A chain with `sets` fully faulted page sets rotated into the old
/// partition.
fn populated_chain(sets: u64) -> PageSetChain {
    let cfg = HpeConfig::paper_default();
    let mut chain = PageSetChain::new(&cfg);
    for s in 0..sets {
        for p in uvm_types::PageSetId(s).pages(4) {
            chain.touch(p, 1, true);
        }
    }
    chain.rotate_interval();
    chain.rotate_interval();
    chain
}

fn bench_chain_update(c: &mut Criterion) {
    // "update of 150 records in the page set chain" (paper: 16.1 us for a
    // hashmap of 150 records against a 200-entry chain).
    c.bench_function("chain_update_150_records", |b| {
        b.iter_batched(
            || populated_chain(200),
            |mut chain| {
                for i in 0..150u64 {
                    chain.touch(PageId((i % 200) * 16 + (i % 16)), 2, false);
                }
                chain
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_classification(c: &mut Criterion) {
    // Classification traverses the chain once (paper: 16.7 us on KMN's
    // chain, the largest footprint).
    let chain = populated_chain(256); // KMN: 4096 pages = 256 sets
    c.bench_function("classification_256_sets", |b| {
        b.iter(|| {
            let stats = chain.counter_stats();
            classify(&stats, 0.3, 2.0)
        })
    });
}

fn bench_mruc_search(c: &mut Criterion) {
    // A 300-comparison MRU-C search (paper: 19.92% of the fault penalty).
    c.bench_function("mruc_search_300_comparisons", |b| {
        b.iter_batched(
            || {
                // 300 sets whose counters exceed the set size, forcing a
                // full min-counter scan; +1 set with the minimum.
                let cfg = HpeConfig::paper_default();
                let mut chain = PageSetChain::new(&cfg);
                for s in 0..300u64 {
                    for p in uvm_types::PageSetId(s).pages(4) {
                        chain.touch(p, 1, true);
                        chain.touch(p, 2, false);
                    }
                }
                chain.rotate_interval();
                chain.rotate_interval();
                chain
            },
            |mut chain| chain.select_victim(StrategyKind::MruC, 0),
            BatchSize::SmallInput,
        )
    });
}

fn bench_hir_ops(c: &mut Criterion) {
    use hpe_core::HirCache;
    use uvm_types::HirGeometry;
    c.bench_function("hir_record", |b| {
        let mut hir = HirCache::new(HirGeometry::paper_default(), 4);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(97);
            hir.record(PageId(i % 4096));
        })
    });
    c.bench_function("hir_flush_150_entries", |b| {
        b.iter_batched(
            || {
                let mut hir = HirCache::new(HirGeometry::paper_default(), 4);
                for s in 0..150u64 {
                    hir.record(PageId(s * 16));
                }
                hir
            },
            |mut hir| hir.flush(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_policy_ops(c: &mut Criterion) {
    // Per-event costs of the policies as the driver sees them.
    c.bench_function("hpe_on_fault", |b| {
        let mut hpe = Hpe::new(HpeConfig::paper_default()).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            hpe.on_fault(PageId(i % 4096), i)
        })
    });
    c.bench_function("lru_touch_and_evict", |b| {
        let mut lru = Lru::new();
        for p in 0..1024u64 {
            lru.on_fault(PageId(p), p);
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            lru.on_walk_hit(PageId(i % 1024));
            if i.is_multiple_of(4) {
                if let Some(v) = lru.select_victim() {
                    lru.on_fault(v, i);
                }
            }
        })
    });
    c.bench_function("rrip_select_victim_1024_pages", |b| {
        b.iter_batched(
            || {
                let mut r = Rrip::new(RripConfig::default());
                for p in 0..1024u64 {
                    r.on_fault(PageId(p), p);
                }
                r
            },
            |mut r| r.select_victim(),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("clockpro_select_victim_1024_pages", |b| {
        b.iter_batched(
            || {
                let mut cp = ClockPro::new(ClockProConfig::default());
                for p in 0..1024u64 {
                    cp.on_fault(PageId(p), p);
                }
                cp
            },
            |mut cp| cp.select_victim(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_chain_update,
    bench_classification,
    bench_mruc_search,
    bench_hir_ops,
    bench_policy_ops
);
criterion_main!(benches);
