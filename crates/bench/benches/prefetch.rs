//! Extension — sequential fault prefetching (the direction Zheng et al.
//! motivate): on each demand fault the driver also migrates the next N
//! contiguous non-resident pages. Demand faults drop (streaming apps
//! especially); the risk is extra evictions under oversubscription.

use hpe_bench::{bench_config, run_policy, save_json, PolicyKind, Table};
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::registry;

fn main() {
    let rate = Oversubscription::Rate75;
    let apps = ["2DC", "LEU", "HSD", "BFS", "B+T", "KMN"];
    let depths = [0u32, 2, 4, 8];
    let mut json = Vec::new();
    for kind in [PolicyKind::Lru, PolicyKind::Hpe] {
        let mut t = Table::new(
            format!(
                "Prefetch sweep under {} (75%): demand faults (IPC x1000)",
                kind.label()
            ),
            &["app", "N=0", "N=2", "N=4", "N=8"],
        );
        for abbr in apps {
            let app = registry::by_abbr(abbr).expect("registered app");
            let mut row = vec![abbr.to_string()];
            for &n in &depths {
                let mut cfg = bench_config();
                cfg.prefetch_pages = n;
                let r = run_policy(&cfg, app, rate, kind).expect("bench run");
                row.push(format!(
                    "{} ({:.2})",
                    r.stats.faults(),
                    r.stats.ipc() * 1000.0
                ));
                json.push(json!({
                    "app": abbr,
                    "policy": kind.label(),
                    "prefetch": n,
                    "faults": r.stats.faults(),
                    "prefetched": r.stats.driver.prefetched_pages,
                    "evictions": r.stats.evictions(),
                    "ipc": r.stats.ipc(),
                }));
            }
            t.row(row);
        }
        t.print();
    }
    save_json("prefetch", &json);
}
