//! Fig. 7 — HPE's sensitivity to page set size (8 / 16 / 32), interval 64.
//!
//! Methodology follows Section V-A: dynamic adjustment off, eviction
//! strategy selected manually per application, ideal hit transfer (no HIR
//! latency). Reported as average IPC per pattern type normalized to page
//! set size 8. Paper shape: all three sizes within ~10% of each other.

use hpe_bench::{bench_config, f3, manual_strategy_for, mean, run_hpe_with, save_json, Table};
use hpe_core::HpeConfig;
use uvm_types::Oversubscription;
use uvm_util::json;
use uvm_workloads::{registry, PatternType};

fn sensitivity_cfg(page_set_size: u32, interval_len: u32, app: &uvm_workloads::App) -> HpeConfig {
    let mut cfg = HpeConfig::paper_default();
    cfg.page_set_size = page_set_size;
    cfg.interval_len = interval_len;
    cfg.fifo_depth = 2 * interval_len;
    cfg.wrong_eviction_trigger = page_set_size;
    cfg.small_footprint_sets = 4 * page_set_size;
    cfg.use_hir = false;
    cfg.dynamic_adjustment = false;
    cfg.forced_strategy = Some(manual_strategy_for(app));
    cfg
}

fn main() {
    let cfg = bench_config();
    let rate = Oversubscription::Rate75;
    let sizes = [8u32, 16, 32];

    // ipc[size_idx][pattern_idx] = mean IPC over that pattern's apps.
    let mut per_pattern: Vec<Vec<f64>> = vec![Vec::new(); sizes.len()];
    let mut json = Vec::new();
    for (si, &size) in sizes.iter().enumerate() {
        for pattern in PatternType::ALL {
            let ipcs: Vec<f64> = registry::by_pattern(pattern)
                .into_iter()
                .map(|app| {
                    let r = run_hpe_with(&cfg, app, rate, sensitivity_cfg(size, 64, app))
                        .expect("bench run");
                    r.stats.ipc()
                })
                .collect();
            per_pattern[si].push(mean(&ipcs));
        }
    }

    let mut t = Table::new(
        "Fig. 7: HPE sensitivity to page set size (avg IPC per type, normalized to size 8)",
        &["pattern", "size 8", "size 16", "size 32"],
    );
    for (pi, pattern) in PatternType::ALL.iter().enumerate() {
        let base = per_pattern[0][pi];
        let norm: Vec<f64> = (0..sizes.len())
            .map(|si| {
                if base > 0.0 {
                    per_pattern[si][pi] / base
                } else {
                    0.0
                }
            })
            .collect();
        t.row(vec![
            format!("Type {}", pattern.roman()),
            f3(norm[0]),
            f3(norm[1]),
            f3(norm[2]),
        ]);
        json.push(json!({
            "pattern": pattern.roman(),
            "normalized_ipc": norm,
        }));
    }
    t.print();
    println!("paper reference: differences within ~10%; the paper selects 16");
    save_json("fig07", &json);
}
