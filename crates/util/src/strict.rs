//! Strict JSON field checking: reject unknown keys with an actionable
//! message instead of silently ignoring misspelled knobs.
//!
//! The `impl_json_struct!` deserializers are deliberately lenient —
//! unknown keys are ignored so older documents keep parsing after a
//! schema gains fields. For *inputs a user hand-writes* (fault plans,
//! explore specs, tenant mixes, snapshots on the CLI boundary) that
//! leniency is a foot-gun: a misspelled knob silently becomes its
//! default. [`check_unknown_fields`] closes the gap without touching
//! the macro: it walks a document against a *template* value (typically
//! `T::default().to_json()` with any template-bearing arrays populated
//! by one exemplar element) and errors on the first key the template
//! does not know, suggesting the nearest known key.

use crate::json::{Json, JsonError};

/// Recursively verifies that every object key in `v` also appears in
/// `template` at the same path.
///
/// Rules of the walk:
///
/// * objects: each key of `v` must exist in `template`; matching keys
///   recurse into their values,
/// * arrays: every element of `v` is checked against the template
///   array's **first** element (the exemplar); an empty template array
///   accepts any element shape,
/// * everything else (scalars, or a template scalar standing where the
///   document nests deeper) is accepted — type mismatches are the
///   deserializer's job, not this checker's.
///
/// `what` names the document in error messages ("fault plan", …).
///
/// # Errors
///
/// Returns [`JsonError`] naming the first unknown field, its JSON path,
/// and — when one is close enough — the known field it was probably
/// meant to be.
pub fn check_unknown_fields(v: &Json, template: &Json, what: &str) -> Result<(), JsonError> {
    walk(v, template, what, &mut String::new())
}

fn walk(v: &Json, template: &Json, what: &str, path: &mut String) -> Result<(), JsonError> {
    match (v, template) {
        (Json::Object(entries), Json::Object(known)) => {
            for (key, value) in entries {
                match known.iter().find(|(k, _)| k == key) {
                    Some((_, tmpl)) => {
                        let len = path.len();
                        if !path.is_empty() {
                            path.push('.');
                        }
                        path.push_str(key);
                        walk(value, tmpl, what, path)?;
                        path.truncate(len);
                    }
                    None => {
                        let here = if path.is_empty() {
                            key.clone()
                        } else {
                            format!("{path}.{key}")
                        };
                        let names: Vec<&str> = known.iter().map(|(k, _)| k.as_str()).collect();
                        let hint = match nearest(key, &names) {
                            Some(n) => format!(" (did you mean `{n}`?)"),
                            None => {
                                let mut list = names.join(", ");
                                if list.is_empty() {
                                    list = "none".to_string();
                                }
                                format!("; known fields: {list}")
                            }
                        };
                        return Err(JsonError::new(format!(
                            "unknown field `{here}` in {what}{hint}"
                        )));
                    }
                }
            }
            Ok(())
        }
        (Json::Array(items), Json::Array(tmpl_items)) => {
            let Some(exemplar) = tmpl_items.first() else {
                return Ok(());
            };
            for (i, item) in items.iter().enumerate() {
                let len = path.len();
                path.push_str(&format!("[{i}]"));
                walk(item, exemplar, what, path)?;
                path.truncate(len);
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// The known name closest to `key` by edit distance, if within a
/// tolerance scaled to the key length (a genuinely novel name gets the
/// full known-field list instead of a wild guess).
fn nearest<'a>(key: &str, names: &[&'a str]) -> Option<&'a str> {
    let budget = 1 + key.len() / 4;
    names
        .iter()
        .map(|n| (edit_distance(key, n), *n))
        .filter(|(d, _)| *d <= budget)
        .min_by_key(|(d, n)| (*d, n.to_string()))
        .map(|(_, n)| n)
}

/// Levenshtein distance, small-alphabet DP over two rows.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j(text: &str) -> Json {
        Json::parse(text).unwrap()
    }

    #[test]
    fn accepts_known_fields_and_scalars() {
        let t = j(r#"{ "seed": 0, "windows": [], "name": "" }"#);
        let v = j(r#"{ "name": "x", "seed": 7 }"#);
        assert!(check_unknown_fields(&v, &t, "plan").is_ok());
    }

    #[test]
    fn rejects_unknown_top_level_field_with_suggestion() {
        let t = j(r#"{ "seed": 0, "latency_jitter": 0 }"#);
        let v = j(r#"{ "latency_jiter": 3 }"#);
        let e = check_unknown_fields(&v, &t, "fault plan").unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("unknown field `latency_jiter` in fault plan"),
            "{msg}"
        );
        assert!(msg.contains("did you mean `latency_jitter`?"), "{msg}");
    }

    #[test]
    fn lists_known_fields_when_nothing_is_close() {
        let t = j(r#"{ "seed": 0, "width": 0 }"#);
        let v = j(r#"{ "completely_novel_knob": 1 }"#);
        let msg = check_unknown_fields(&v, &t, "spec")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("known fields: seed, width"), "{msg}");
    }

    #[test]
    fn recurses_into_nested_objects_and_array_exemplars() {
        let t = j(r#"{ "windows": [ { "family": "", "start": 0, "width": 0 } ] }"#);
        let v = j(r#"{ "windows": [ { "start": 0 }, { "widht": 9 } ] }"#);
        let msg = check_unknown_fields(&v, &t, "plan")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("windows[1].widht"), "{msg}");
        assert!(msg.contains("did you mean `width`?"), "{msg}");
    }

    #[test]
    fn empty_template_array_accepts_anything() {
        let t = j(r#"{ "windows": [] }"#);
        let v = j(r#"{ "windows": [ { "whatever": 1 } ] }"#);
        assert!(check_unknown_fields(&v, &t, "plan").is_ok());
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("seed", "sede"), 2);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
