//! A fixed-bucket histogram for trace analyses (inter-fault distances,
//! page residency lifetimes, victim ages, search comparisons).
//!
//! Buckets are uniform: value `v` lands in bucket `v / bucket_width`,
//! with everything past the last bucket accumulated in an overflow
//! bucket. The summary statistics (count/sum/min/max) are exact even for
//! overflowed samples, and serialization goes through [`crate::json`] so
//! histograms drop straight into bench reports and JSONL traces.
//!
//! # Examples
//!
//! ```
//! use uvm_util::Histogram;
//!
//! let mut h = Histogram::new("victim_age", 10, 4);
//! for v in [3, 17, 17, 99] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 4);
//! assert_eq!(h.bucket_counts(), &[1, 2, 0, 0]);
//! assert_eq!(h.overflow(), 1); // 99 >= 4 * 10
//! assert_eq!(h.max(), Some(99));
//! ```

use crate::json::{Json, JsonError, ToJson};
use crate::FromJson;

/// A fixed-width-bucket histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    name: String,
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram with `n_buckets` buckets of
    /// `bucket_width` each; samples at or beyond `n_buckets *
    /// bucket_width` land in the overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` or `n_buckets` is zero.
    pub fn new(name: impl Into<String>, bucket_width: u64, n_buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket_width must be nonzero");
        assert!(n_buckets > 0, "n_buckets must be nonzero");
        Histogram {
            name: name.into(),
            bucket_width,
            buckets: vec![0; n_buckets],
            overflow: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        match self.buckets.get_mut(idx) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The histogram's name (used as the JSON `name` field).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width of each bucket.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Per-bucket sample counts (without the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, if any were recorded.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, if any were recorded.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of all samples, or 0 with none.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated `q`-quantile (`0.0..=1.0`), or `None` with no samples.
    ///
    /// The estimate walks the cumulative bucket counts and returns the
    /// *upper bound* of the bucket containing the `ceil(q * count)`-th
    /// sample — exact to within one `bucket_width`. When the quantile
    /// falls in the overflow bucket the exact recorded maximum is
    /// returned instead, so the tail is never under-reported; `q <= 0`
    /// likewise returns the exact minimum.
    ///
    /// # Panics
    ///
    /// Panics if `q` is NaN.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!(!q.is_nan(), "quantile must not be NaN");
        if self.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return self.min();
        }
        let rank = ((q.min(1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let hi = (i as u64 + 1) * self.bucket_width - 1;
                // Never report past the exact maximum (e.g. a single
                // sample of 3 in a width-64 bucket is p99 = 3, not 63).
                return Some(hi.min(self.max));
            }
        }
        // The rank lands in the overflow bucket.
        self.max()
    }

    /// Renders a one-line-per-bucket text view (for CLI output). Empty
    /// trailing buckets are elided.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} samples, mean {:.1}, min {}, max {}",
            self.name,
            self.count,
            self.mean(),
            self.min().map_or("-".into(), |v| v.to_string()),
            self.max().map_or("-".into(), |v| v.to_string()),
        );
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let last_used = self.buckets.iter().rposition(|&b| b > 0);
        if let Some(last) = last_used {
            for (i, &b) in self.buckets.iter().enumerate().take(last + 1) {
                let lo = i as u64 * self.bucket_width;
                let hi = lo + self.bucket_width - 1;
                let bar = "#".repeat(((b * 40).div_ceil(peak)) as usize);
                let _ = writeln!(out, "  [{lo:>8}..{hi:>8}] {b:>8} {bar}");
            }
        }
        if self.overflow > 0 {
            let _ = writeln!(
                out,
                "  [{:>8}..     inf] {:>8}",
                self.buckets.len() as u64 * self.bucket_width,
                self.overflow
            );
        }
        out
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        crate::json!({
            "name": self.name,
            "bucket_width": self.bucket_width,
            "buckets": self.buckets,
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.sum,
            "min": self.min(),
            "max": self.max(),
            "mean": self.mean(),
        })
    }
}

impl FromJson for Histogram {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let buckets: Vec<u64> = Vec::from_json(
            v.get("buckets")
                .ok_or_else(|| JsonError::new("missing field `buckets`"))?,
        )?;
        if buckets.is_empty() {
            return Err(JsonError::new("histogram needs at least one bucket"));
        }
        let num = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError::new(format!("missing numeric field `{k}`")))
        };
        let count = num("count")?;
        Ok(Histogram {
            name: String::from_json(
                v.get("name")
                    .ok_or_else(|| JsonError::new("missing field `name`"))?,
            )?,
            bucket_width: num("bucket_width")?.max(1),
            buckets,
            overflow: num("overflow")?,
            count,
            sum: num("sum")?,
            min: if count > 0 { num("min")? } else { u64::MAX },
            max: if count > 0 { num("max")? } else { 0 },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_buckets_and_overflow() {
        let mut h = Histogram::new("t", 100, 3);
        h.record(0);
        h.record(99);
        h.record(100);
        h.record(250);
        h.record(300); // first value past the last bucket
        h.record(1_000_000);
        assert_eq!(h.bucket_counts(), &[2, 1, 1]);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1_000_000));
    }

    #[test]
    fn empty_histogram_reports_no_extrema() {
        let h = Histogram::new("e", 1, 1);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert!(h.render().contains("0 samples"));
    }

    #[test]
    fn json_roundtrip() {
        let mut h = Histogram::new("ifd", 50, 4);
        for v in [1, 2, 3, 77, 500] {
            h.record(v);
        }
        let back = Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);

        let empty = Histogram::new("none", 10, 2);
        assert_eq!(Histogram::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn render_shows_bars() {
        let mut h = Histogram::new("v", 10, 4);
        for _ in 0..5 {
            h.record(15);
        }
        h.record(100);
        let s = h.render();
        assert!(s.contains("#"));
        assert!(s.contains("inf"));
    }

    #[test]
    #[should_panic(expected = "bucket_width must be nonzero")]
    fn zero_width_rejected() {
        Histogram::new("x", 0, 4);
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let mut h = Histogram::new("q", 10, 10);
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), Some(49)); // 50th sample is 49, bucket [40..49]
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(99));
    }

    #[test]
    fn quantile_all_equal_and_saturating_bucket() {
        // All-equal samples: every quantile (including clamped q > 1) is
        // the common value, never a bucket bound.
        let mut h = Histogram::new("eq", 8, 4);
        for _ in 0..32 {
            h.record(17);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 1.0, 2.0] {
            assert_eq!(h.quantile(q), Some(17), "q={q}");
        }
        // Every sample past the last bucket: the cumulative walk finds
        // nothing and lands in the (saturated) overflow bucket, which
        // reports the exact recorded max — except q <= 0, the exact min.
        let mut o = Histogram::new("ovf", 4, 2);
        for v in [100, 200, 300] {
            o.record(v);
        }
        assert_eq!(o.overflow(), 3);
        assert_eq!(o.quantile(0.0), Some(100));
        assert_eq!(o.quantile(0.5), Some(300));
        assert_eq!(o.quantile(1.0), Some(300));
    }

    #[test]
    #[should_panic(expected = "quantile must not be NaN")]
    fn quantile_rejects_nan() {
        let _ = Histogram::new("n", 1, 1).quantile(f64::NAN);
    }

    #[test]
    fn quantile_clamps_to_exact_extrema() {
        let mut h = Histogram::new("q", 64, 4);
        h.record(3);
        // One sample: every quantile is that sample, not its bucket bound.
        assert_eq!(h.quantile(0.5), Some(3));
        assert_eq!(h.quantile(0.99), Some(3));
        // Overflow samples report the exact maximum.
        h.record(10_000);
        assert_eq!(h.quantile(1.0), Some(10_000));
        assert_eq!(Histogram::new("none", 1, 1).quantile(0.5), None);
    }
}
