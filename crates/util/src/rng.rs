//! Seeded, dependency-free pseudo-random number generation.
//!
//! [`Rng`] is a xoshiro256** generator whose state is expanded from a
//! single `u64` seed with SplitMix64 — the same construction the xoshiro
//! reference code recommends. The output stream for a given seed is part
//! of this workspace's determinism contract: every simulation, workload
//! and property test derives from it, so the algorithm is frozen.
//!
//! The surface mirrors the subset of `rand` the workspace actually used:
//! [`Rng::gen_range`] over half-open and inclusive integer ranges (plus
//! half-open `f64`), [`Rng::gen_bool`], [`Rng::shuffle`] and
//! [`Rng::choose`].
//!
//! # Examples
//!
//! ```
//! use uvm_util::Rng;
//!
//! let mut a = Rng::seed_from_u64(42);
//! let mut b = Rng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.gen_range(0u64..100);
//! assert!(x < 100);
//! ```

use std::ops::{Range, RangeInclusive};

/// A seeded xoshiro256** pseudo-random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

/// One step of SplitMix64 (used only to expand the seed).
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        Rng {
            s: [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ],
        }
    }

    /// The raw xoshiro256** state words, for checkpointing a stream
    /// mid-flight. Feed the result back through [`Rng::from_state`] to
    /// resume the stream exactly where it left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`Rng::state`].
    ///
    /// The state is used verbatim (no SplitMix64 expansion); an all-zero
    /// state is degenerate for xoshiro and is remapped to the
    /// `seed_from_u64(0)` state instead.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            // lint:allow(rng-taint) — documented remap of the all-zero state
            return Rng::seed_from_u64(0);
        }
        Rng { s }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `u64` in `[0, bound)` via Lemire's unbiased multiply-shift
    /// rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below requires a nonzero bound");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform value from `range`, matching `rand`'s `gen_range` shape:
    /// half-open (`a..b`) and inclusive (`a..=b`) integer ranges, and
    /// half-open `f64` ranges.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffles `xs` in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element of `xs`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len() as u64) as usize])
        }
    }

    /// An index into `weights` chosen with probability proportional to its
    /// weight (the `prop_oneof!`-style weighted pick).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "pick_weighted requires a positive total weight");
        let mut roll = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if roll < w as u64 {
                return i;
            }
            roll -= w as u64;
        }
        unreachable!("roll below total weight")
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `gen` (the `proptest::collection::vec` idiom).
    pub fn gen_vec<T>(&mut self, len: Range<usize>, mut gen: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let n = self.gen_range(len);
        (0..n).map(|_| gen(self)).collect()
    }
}

/// Range shapes [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one uniform value.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_sample_int!(u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(0x5EED);
        let mut b = Rng::seed_from_u64(0x5EED);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn reference_stream_is_frozen() {
        // Pinned first outputs for seed 0. If this test ever fails, the
        // generator changed and every golden snapshot in the workspace is
        // invalid — do not "fix" the constants, fix the generator.
        let mut r = Rng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut again = Rng::seed_from_u64(0);
        let twice: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(got, twice);
        assert_eq!(
            got,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532,
            ]
        );
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..2000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(3u32..=5);
            assert!((3..=5).contains(&y));
            let z = r.gen_range(0usize..1);
            assert_eq!(z, 0);
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut r = Rng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..600 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_rough_rate() {
        let mut r = Rng::seed_from_u64(3);
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 hit rate {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_and_weighted() {
        let mut r = Rng::seed_from_u64(5);
        assert_eq!(r.choose::<u8>(&[]), None);
        let xs = [10, 20, 30];
        for _ in 0..50 {
            assert!(xs.contains(r.choose(&xs).unwrap()));
        }
        // Weight 0 entries are never picked.
        for _ in 0..200 {
            assert_ne!(r.pick_weighted(&[3, 0, 1]), 1);
        }
    }

    #[test]
    fn gen_vec_respects_length_range() {
        let mut r = Rng::seed_from_u64(13);
        for _ in 0..100 {
            let v = r.gen_vec(2..6, |rng| rng.gen_range(0u64..10));
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5u32..5);
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut r = Rng::seed_from_u64(0xC0FFEE);
        for _ in 0..17 {
            r.next_u64();
        }
        let snap = r.state();
        let tail: Vec<u64> = (0..100).map(|_| r.next_u64()).collect();
        let mut resumed = Rng::from_state(snap);
        let replay: Vec<u64> = (0..100).map(|_| resumed.next_u64()).collect();
        assert_eq!(tail, replay);
    }

    #[test]
    fn zero_state_is_remapped_not_degenerate() {
        let mut r = Rng::from_state([0; 4]);
        assert_eq!(r.next_u64(), Rng::seed_from_u64(0).next_u64());
    }
}
