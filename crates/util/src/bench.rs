//! A micro-benchmark timer with a criterion-shaped API.
//!
//! Replaces `criterion` for `crates/bench/benches/*`: the same
//! [`Criterion::bench_function`] / [`Bencher::iter`] /
//! [`Bencher::iter_batched`] surface and the [`criterion_group!`] /
//! [`criterion_main!`] macros, backed by a plain wall-clock sampler. Each
//! benchmark warms up briefly, then takes timed samples and prints the
//! median ns/iteration — enough to confirm the paper's "well under the
//! 20 µs fault penalty" claims without a statistics engine.
//!
//! Environment overrides:
//!
//! - `UVM_BENCH_MS` — target measurement time per benchmark in
//!   milliseconds (default 200).
//! - `UVM_BENCH_FAST=1` — one sample of one iteration, for smoke-testing
//!   that benches run at all.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched benchmark's setup output is grouped per measurement.
/// Only the small-input shape is needed here; the variant exists for
/// call-site compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// One setup per timed iteration.
    SmallInput,
}

/// Collects and reports benchmark measurements.
#[derive(Debug)]
pub struct Criterion {
    target: Duration,
    fast: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("UVM_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200u64);
        let fast = std::env::var("UVM_BENCH_FAST").is_ok_and(|v| v == "1");
        Criterion {
            target: Duration::from_millis(ms),
            fast,
        }
    }
}

impl Criterion {
    /// Runs `f` with a [`Bencher`] and prints the median time per
    /// iteration under `name`.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            target: self.target,
            fast: self.fast,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Times `routine` with the same warmup/calibration as
    /// [`Criterion::bench_function`] but returns the samples instead of
    /// printing them.
    pub fn measure<R>(&mut self, routine: impl FnMut() -> R) -> Measurement {
        let mut b = Bencher {
            target: self.target,
            fast: self.fast,
            samples_ns: Vec::new(),
        };
        b.iter(routine);
        Measurement::from_samples(b.samples_ns)
    }
}

/// A completed set of timing samples (nanoseconds per iteration),
/// sorted ascending. Returned by [`Criterion::measure`] so callers —
/// the bench-snapshot perf trajectory, notably — can record wall-clocks
/// programmatically instead of scraping stdout.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    samples_ns: Vec<f64>,
}

impl Measurement {
    /// Wraps raw per-iteration samples (sorted internally).
    pub fn from_samples(mut samples_ns: Vec<f64>) -> Self {
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        Measurement { samples_ns }
    }

    /// Median nanoseconds per iteration (0 for an empty measurement).
    pub fn median_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            0.0
        } else {
            self.samples_ns[self.samples_ns.len() / 2]
        }
    }

    /// Fastest sample (0 for an empty measurement).
    pub fn min_ns(&self) -> f64 {
        self.samples_ns.first().copied().unwrap_or(0.0)
    }

    /// Slowest sample (0 for an empty measurement).
    pub fn max_ns(&self) -> f64 {
        self.samples_ns.last().copied().unwrap_or(0.0)
    }

    /// All samples, ascending.
    pub fn samples(&self) -> &[f64] {
        &self.samples_ns
    }
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    target: Duration,
    fast: bool,
    samples_ns: Vec<f64>,
}

const SAMPLES: u32 = 24;

impl Bencher {
    /// Times `routine`, amortizing the clock reads over batches sized so
    /// the whole measurement takes roughly the target time.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.fast {
            let t = Instant::now();
            black_box(routine());
            self.samples_ns = vec![t.elapsed().as_nanos() as f64];
            return;
        }
        // Calibrate: how many iterations fit in one sample slot?
        let slot = self.target / SAMPLES;
        let mut n: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let took = t.elapsed();
            if took >= slot / 2 || n >= 1 << 30 {
                break;
            }
            n = if took.is_zero() {
                n * 64
            } else {
                (n * 2).max((slot.as_nanos() as u64 / took.as_nanos().max(1) as u64).min(n * 64))
            };
        }
        self.samples_ns = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..n {
                    black_box(routine());
                }
                t.elapsed().as_nanos() as f64 / n as f64
            })
            .collect();
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// inside the timed region.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.fast {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples_ns = vec![t.elapsed().as_nanos() as f64];
            return;
        }
        let per_sample = (self.target / SAMPLES).max(Duration::from_micros(50));
        self.samples_ns = (0..SAMPLES)
            .map(|_| {
                let mut iters = 0u64;
                let mut spent = Duration::ZERO;
                while spent < per_sample {
                    let input = setup();
                    let t = Instant::now();
                    black_box(routine(input));
                    spent += t.elapsed();
                    iters += 1;
                }
                spent.as_nanos() as f64 / iters as f64
            })
            .collect();
    }

    fn report(&self, name: &str) {
        let mut xs = self.samples_ns.clone();
        if xs.is_empty() {
            println!("{name:<40} no samples");
            return;
        }
        xs.sort_by(|a, b| a.total_cmp(b));
        let median = xs[xs.len() / 2];
        let (lo, hi) = (xs[0], xs[xs.len() - 1]);
        println!(
            "{name:<40} median {} [{} .. {}] ({} samples)",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi),
            xs.len(),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Bundles benchmark functions into one runner function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` for a bench binary, mirroring criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion {
            target: Duration::from_millis(2),
            fast: false,
        }
    }

    #[test]
    fn iter_measures_and_reports() {
        let mut c = fast_criterion();
        let mut count = 0u64;
        c.bench_function("unit_test_iter", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = fast_criterion();
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("unit_test_batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u32; 8]
                },
                |v| {
                    runs += 1;
                    v.iter().sum::<u32>()
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, runs);
        assert!(runs > 0);
    }

    #[test]
    fn measure_returns_sorted_samples() {
        let mut c = fast_criterion();
        let mut count = 0u64;
        let m = c.measure(|| {
            count += 1;
            black_box(count)
        });
        assert!(count > 0);
        assert!(!m.samples().is_empty());
        assert!(m.min_ns() <= m.median_ns() && m.median_ns() <= m.max_ns());
        assert!(m.samples().windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn measurement_handles_edge_cases() {
        let empty = Measurement::from_samples(Vec::new());
        assert_eq!(empty.median_ns(), 0.0);
        assert_eq!(empty.min_ns(), 0.0);
        assert_eq!(empty.max_ns(), 0.0);
        let m = Measurement::from_samples(vec![3.0, 1.0, 2.0]);
        assert_eq!(m.median_ns(), 2.0);
        assert_eq!(m.min_ns(), 1.0);
        assert_eq!(m.max_ns(), 3.0);
    }

    #[test]
    fn fmt_ns_picks_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(1.2e4).ends_with("us"));
        assert!(fmt_ns(3.4e6).ends_with("ms"));
    }
}
