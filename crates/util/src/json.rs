//! A minimal JSON value type, serializer, parser and derive-style macros.
//!
//! Replaces `serde`/`serde_json` for the workspace's needs: writing bench
//! reports, round-tripping configuration structs, and the `json!` literal
//! macro. Numbers are stored exactly for integers ([`Json::Int`] /
//! [`Json::UInt`]) and as `f64` otherwise; objects preserve insertion
//! order so serialized output is deterministic.
//!
//! # Examples
//!
//! ```
//! use uvm_util::{json, Json};
//!
//! let mut v = json!({ "policy": "LRU", "hit_rate": 0.75 });
//! v["runs"] = json!(3u32);
//! assert_eq!(v["policy"].as_str(), Some("LRU"));
//! let text = v.to_string();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back, v);
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON document or fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An exact signed integer (only produced for negative values).
    Int(i64),
    /// An exact unsigned integer.
    UInt(u64),
    /// A floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`] and [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

const NULL: Json = Json::Null;

impl Json {
    /// An empty object.
    pub fn object() -> Self {
        Json::Object(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn insert(&mut self, key: impl Into<String>, value: Json) {
        let Json::Object(entries) = self else {
            // lint:allow(panic-reachability) — documented panic contract
            panic!("Json::insert on non-object");
        };
        let key = key.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            entries.push((key, value));
        }
    }

    /// The value at `key`, if `self` is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// The value as `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The string value, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if any.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Pretty-prints with two-space indentation and a trailing newline-free
    /// body (like `serde_json::to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(xs) if !xs.is_empty() => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    x.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(entries) if !entries.is_empty() => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format_f64(*f));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Formats a finite `f64` so it re-parses as a float when fractional and
/// as an integer otherwise (both read back identically through
/// [`FromJson`] for `f64`).
fn format_f64(f: f64) -> String {
    let s = format!("{f}");
    debug_assert!(!s.contains("inf") && !s.contains("NaN"));
    s
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

impl Index<&str> for Json {
    type Output = Json;

    /// Indexing a missing key (or a non-object) yields `Json::Null`.
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Json {
    /// Auto-vivifies: indexing `Null` turns it into an object, and missing
    /// keys are inserted as `Null` (so `v["k"] = json!(..)` works).
    fn index_mut(&mut self, key: &str) -> &mut Json {
        if self.is_null() {
            *self = Json::object();
        }
        let Json::Object(entries) = self else {
            panic!("cannot index non-object Json with a string key");
        };
        if let Some(i) = entries.iter().position(|(k, _)| k == key) {
            return &mut entries[i].1;
        }
        entries.push((key.to_string(), Json::Null));
        let last = entries.len() - 1;
        &mut entries[last].1
    }
}

impl Index<usize> for Json {
    type Output = Json;

    fn index(&self, i: usize) -> &Json {
        match self {
            Json::Array(xs) => xs.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

// ---------------------------------------------------------------------------
// Conversion traits.

/// Conversion into a [`Json`] value (the `Serialize` analogue).
pub trait ToJson {
    /// Builds the JSON representation.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value (the `Deserialize` analogue).
pub trait FromJson: Sized {
    /// Reads `Self` back from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] describing the first mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Json, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<bool, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::new("expected bool"))
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::UInt(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<$t, JsonError> {
                let u = v.as_u64().ok_or_else(|| JsonError::new(
                    concat!("expected unsigned integer for ", stringify!($t)),
                ))?;
                <$t>::try_from(u).map_err(|_| JsonError::new(
                    concat!("integer out of range for ", stringify!($t)),
                ))
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let i = *self as i64;
                if i >= 0 {
                    Json::UInt(i as u64)
                } else {
                    Json::Int(i)
                }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<$t, JsonError> {
                let i = v.as_i64().ok_or_else(|| JsonError::new(
                    concat!("expected integer for ", stringify!($t)),
                ))?;
                <$t>::try_from(i).map_err(|_| JsonError::new(
                    concat!("integer out of range for ", stringify!($t)),
                ))
            }
        }
    )*};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<f64, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::new("expected number"))
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<String, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Option<T>, JsonError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Vec<T>, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for VecDeque<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<(A, B), JsonError> {
        let xs = v
            .as_array()
            .ok_or_else(|| JsonError::new("expected 2-element array"))?;
        if xs.len() != 2 {
            return Err(JsonError::new("expected 2-element array"));
        }
        Ok((A::from_json(&xs[0])?, B::from_json(&xs[1])?))
    }
}

// ---------------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(xs));
                }
                _ => {
                    return Err(JsonError::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output (we never escape above U+001F).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| JsonError::new("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(JsonError::new("unknown escape")),
                    }
                }
                _ => return Err(JsonError::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| JsonError::new(format!("invalid number '{text}'")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|i| Json::Int(-i))
                .map_err(|_| JsonError::new(format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| JsonError::new(format!("invalid number '{text}'")))
        }
    }
}

// ---------------------------------------------------------------------------
// Macros.

/// Builds a [`Json`] value from a literal-shaped expression.
///
/// Supports flat objects `json!({ "k": expr, .. })`, arrays
/// `json!([a, b])`, `json!(null)`, and any [`ToJson`] leaf `json!(expr)`.
/// Unlike `serde_json::json!`, nested object literals must be built with
/// nested `json!` calls — which is how every call site in this workspace
/// already writes them.
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::json::Json::Null
    };
    ({ $($key:tt : $value:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut obj = $crate::json::Json::object();
        $( obj.insert($key, $crate::json::ToJson::to_json(&$value)); )*
        obj
    }};
    ([ $($value:expr),* $(,)? ]) => {
        $crate::json::Json::Array(vec![ $( $crate::json::ToJson::to_json(&$value) ),* ])
    };
    ($value:expr) => {
        $crate::json::ToJson::to_json(&$value)
    };
}

/// Derives [`ToJson`] + [`FromJson`] for a plain struct with named fields.
///
/// Fields listed with `= default` fall back to that expression when the
/// key is absent (the `#[serde(default)]` analogue):
///
/// ```
/// use uvm_util::impl_json_struct;
///
/// #[derive(Debug, PartialEq)]
/// struct P { x: u32, y: u32 }
/// impl_json_struct!(P { x, y = 7 });
///
/// use uvm_util::{FromJson, Json, ToJson};
/// let p = P { x: 1, y: 2 };
/// let back = P::from_json(&p.to_json()).unwrap();
/// assert_eq!(back, p);
/// let sparse = Json::parse(r#"{"x": 3}"#).unwrap();
/// assert_eq!(P::from_json(&sparse).unwrap(), P { x: 3, y: 7 });
/// ```
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident $(= $default:expr)?),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                let mut obj = $crate::json::Json::object();
                $( obj.insert(
                    stringify!($field),
                    $crate::json::ToJson::to_json(&self.$field),
                ); )+
                obj
            }
        }

        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok($ty {
                    $( $field: $crate::impl_json_struct!(
                        @field v, $field $(, $default)?
                    ), )+
                })
            }
        }
    };
    (@field $v:ident, $field:ident) => {
        $crate::json::FromJson::from_json(
            $v.get(stringify!($field)).ok_or_else(|| {
                $crate::json::JsonError::new(concat!(
                    "missing field `", stringify!($field), "`"
                ))
            })?,
        )?
    };
    (@field $v:ident, $field:ident, $default:expr) => {
        match $v.get(stringify!($field)) {
            Some(x) => $crate::json::FromJson::from_json(x)?,
            None => $default,
        }
    };
}

/// Derives [`ToJson`] + [`FromJson`] for an enum of unit variants,
/// serialized as their name strings (the serde externally-tagged form).
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Str(
                    match self {
                        $( $ty::$variant => stringify!($variant), )+
                    }
                    .to_string(),
                )
            }
        }

        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                match v.as_str() {
                    $( Some(stringify!($variant)) => Ok($ty::$variant), )+
                    _ => Err($crate::json::JsonError::new(concat!(
                        "invalid variant for ", stringify!($ty)
                    ))),
                }
            }
        }
    };
}

/// Derives [`ToJson`] + [`FromJson`] for a single-field tuple struct
/// (newtype), serialized transparently as its inner value.
#[macro_export]
macro_rules! impl_json_newtype {
    ($($ty:ident),+ $(,)?) => {$(
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::ToJson::to_json(&self.0)
            }
        }

        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                Ok($ty($crate::json::FromJson::from_json(v)?))
            }
        }
    )+};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_macro_builds_objects_and_arrays() {
        let v = crate::json!({ "a": 1u32, "b": "two", "c": 0.5, "d": true });
        assert_eq!(v["a"].as_u64(), Some(1));
        assert_eq!(v["b"].as_str(), Some("two"));
        assert_eq!(v["c"].as_f64(), Some(0.5));
        assert_eq!(v["d"].as_bool(), Some(true));
        assert!(v["missing"].is_null());

        let arr = crate::json!([1u64, 2u64, 3u64]);
        assert_eq!(arr[1].as_u64(), Some(2));
        assert!(crate::json!(null).is_null());
    }

    #[test]
    fn compact_serialization_is_stable() {
        let v = crate::json!({ "b": 2u32, "a": 1u32, "s": "x\"y\n" });
        assert_eq!(v.to_string(), r#"{"b":2,"a":1,"s":"x\"y\n"}"#);
    }

    #[test]
    fn pretty_matches_shape() {
        let v = crate::json!({ "a": 1u32, "xs": crate::json!([1u32]) });
        assert_eq!(v.pretty(), "{\n  \"a\": 1,\n  \"xs\": [\n    1\n  ]\n}");
        assert_eq!(Json::object().pretty(), "{}");
    }

    #[test]
    fn roundtrip_through_parser() {
        let v = crate::json!({
            "neg": -5i64,
            "big": u64::MAX,
            "f": 0.25,
            "nested": crate::json!({ "xs": crate::json!([1u32, 2u32]) }),
            "none": Option::<u64>::None,
            "esc": "tab\tquote\"backslash\\",
        });
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        let pretty = v.pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn index_mut_autovivifies() {
        let mut v = Json::Null;
        v["hpe"] = crate::json!({ "x": 1u32 });
        v["hpe"]["y"] = crate::json!(2u32);
        assert_eq!(v["hpe"]["x"].as_u64(), Some(1));
        assert_eq!(v["hpe"]["y"].as_u64(), Some(2));
    }

    #[test]
    fn numbers_convert_across_variants() {
        assert_eq!(u32::from_json(&Json::UInt(7)).unwrap(), 7);
        assert!(u32::from_json(&Json::UInt(u64::MAX)).is_err());
        assert_eq!(i64::from_json(&Json::Int(-3)).unwrap(), -3);
        assert_eq!(f64::from_json(&Json::UInt(20)).unwrap(), 20.0);
        assert_eq!(f64::from_json(&Json::Float(0.3)).unwrap(), 0.3);
        assert!(u64::from_json(&Json::Str("x".into())).is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(crate::json!(f64::NAN).to_string(), "null");
        assert_eq!(crate::json!(f64::INFINITY).to_string(), "null");
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u32,
        b: f64,
        c: Option<String>,
    }
    crate::impl_json_struct!(Demo { a, b = 1.5, c });

    #[test]
    fn struct_macro_roundtrips_with_defaults() {
        let d = Demo {
            a: 4,
            b: 2.25,
            c: Some("hi".into()),
        };
        assert_eq!(Demo::from_json(&d.to_json()).unwrap(), d);
        let sparse = Json::parse(r#"{"a": 9, "c": null}"#).unwrap();
        assert_eq!(
            Demo::from_json(&sparse).unwrap(),
            Demo {
                a: 9,
                b: 1.5,
                c: None
            }
        );
        assert!(Demo::from_json(&Json::parse(r#"{"b": 1.0}"#).unwrap()).is_err());
    }

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        Green,
    }
    crate::impl_json_enum!(Color { Red, Green });

    #[derive(Debug, PartialEq)]
    struct Wrapped(u64);
    crate::impl_json_newtype!(Wrapped);

    #[test]
    fn enum_and_newtype_macros_roundtrip() {
        assert_eq!(Color::Red.to_json().as_str(), Some("Red"));
        assert_eq!(
            Color::from_json(&Json::Str("Green".into())).unwrap(),
            Color::Green
        );
        assert!(Color::from_json(&Json::Str("Blue".into())).is_err());
        let w = Wrapped(99);
        assert_eq!(w.to_json().as_u64(), Some(99));
        assert_eq!(Wrapped::from_json(&w.to_json()).unwrap(), w);
    }

    #[test]
    fn tuples_and_collections() {
        let pairs: Vec<(u64, u32)> = vec![(1, 2), (3, 4)];
        let j = pairs.to_json();
        assert_eq!(j.to_string(), "[[1,2],[3,4]]");
        let back: Vec<(u64, u32)> = Vec::from_json(&j).unwrap();
        assert_eq!(back, pairs);
    }
}
