//! A deterministic, seed-reporting property-test harness.
//!
//! Replaces `proptest` for this workspace. Each property runs a fixed
//! number of cases; case `i` draws its input from an [`Rng`] seeded with a
//! value derived deterministically from the harness seed and `i`, so a
//! failure always prints a single `UVM_PROP_SEED` that reproduces it
//! exactly — on any machine, in any test order.
//!
//! Environment overrides:
//!
//! - `UVM_PROP_CASES` — cases per property (default 64).
//! - `UVM_PROP_SEED` — harness base seed (default 0). Set this to the seed
//!   printed by a failure to replay just that input first.
//!
//! # Examples
//!
//! ```
//! use uvm_util::prop::Checker;
//!
//! Checker::new().cases(32).run(
//!     |rng| rng.gen_vec(0..20, |r| r.gen_range(0u64..100)),
//!     |xs| {
//!         let mut sorted = xs.clone();
//!         sorted.sort_unstable();
//!         assert_eq!(sorted.len(), xs.len());
//!     },
//! );
//! ```

use std::fmt::Debug;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::rng::Rng;

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Derives the per-case RNG seed from the harness seed and case index.
///
/// Frozen: failure seeds printed by past runs must keep reproducing.
fn case_seed(base: u64, case: u64) -> u64 {
    // SplitMix64 finalizer over (base, case) — decorrelates consecutive
    // cases even for base seeds 0, 1, 2, ...
    let mut z = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs seeded property tests.
#[derive(Debug, Clone)]
pub struct Checker {
    cases: u32,
    seed: u64,
    shrink_steps: u32,
}

impl Default for Checker {
    fn default() -> Self {
        Self::new()
    }
}

impl Checker {
    /// A checker with the default case count and seed, honouring the
    /// `UVM_PROP_CASES` / `UVM_PROP_SEED` environment overrides.
    pub fn new() -> Self {
        let cases = std::env::var("UVM_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        let seed = std::env::var("UVM_PROP_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        Checker {
            cases,
            seed,
            shrink_steps: 200,
        }
    }

    /// Sets the number of cases (environment override still wins).
    pub fn cases(mut self, cases: u32) -> Self {
        if std::env::var("UVM_PROP_CASES").is_err() {
            self.cases = cases;
        }
        self
    }

    /// Sets the base seed (environment override still wins).
    pub fn seed(mut self, seed: u64) -> Self {
        if std::env::var("UVM_PROP_SEED").is_err() {
            self.seed = seed;
        }
        self
    }

    /// Runs `prop` against `cases` inputs drawn from `gen`.
    ///
    /// # Panics
    ///
    /// Re-raises the property's panic after printing the case index, the
    /// reproducing seed and the failing input.
    pub fn run<T: Debug>(&self, mut gen: impl FnMut(&mut Rng) -> T, prop: impl Fn(&T)) {
        self.run_with_shrink(&mut gen, |_| Vec::new(), prop);
    }

    /// Like [`Checker::run`], but on failure also tries the candidates
    /// produced by `shrink` (repeatedly, keeping any that still fail) and
    /// reports the smallest failing input found.
    pub fn run_shrink<T: Debug>(
        &self,
        mut gen: impl FnMut(&mut Rng) -> T,
        shrink: impl Fn(&T) -> Vec<T>,
        prop: impl Fn(&T),
    ) {
        self.run_with_shrink(&mut gen, shrink, prop);
    }

    fn run_with_shrink<T: Debug>(
        &self,
        gen: &mut impl FnMut(&mut Rng) -> T,
        shrink: impl Fn(&T) -> Vec<T>,
        prop: impl Fn(&T),
    ) {
        for case in 0..self.cases {
            let seed = case_seed(self.seed, case as u64);
            let mut rng = Rng::seed_from_u64(seed);
            let input = gen(&mut rng);
            let outcome = catch_unwind(AssertUnwindSafe(|| prop(&input)));
            let Err(payload) = outcome else { continue };

            let mut minimal = input;
            let mut last_payload = payload;
            let mut budget = self.shrink_steps;
            'outer: while budget > 0 {
                for candidate in shrink(&minimal) {
                    budget = budget.saturating_sub(1);
                    match catch_unwind(AssertUnwindSafe(|| prop(&candidate))) {
                        Ok(()) => {}
                        Err(p) => {
                            minimal = candidate;
                            last_payload = p;
                            continue 'outer;
                        }
                    }
                    if budget == 0 {
                        break 'outer;
                    }
                }
                break;
            }

            eprintln!(
                "property failed at case {case}/{}; reproduce with \
                 UVM_PROP_SEED={seed} UVM_PROP_CASES=1\nfailing input: {minimal:?}",
                self.cases,
            );
            resume_unwind(last_payload);
        }
    }
}

/// Shrink candidates for a vector: empty, both halves, and the vector with
/// one element removed (first/middle/last). Pair with
/// [`Checker::run_shrink`] for sequence-shaped inputs.
// The `&Vec` parameter is deliberate: this is passed bare as the `shrink`
// callback of `run_shrink`, whose input type is the generator's `Vec<T>`.
#[allow(clippy::ptr_arg)]
pub fn shrink_vec<T: Clone>(xs: &Vec<T>) -> Vec<Vec<T>> {
    let n = xs.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = vec![Vec::new()];
    if n > 1 {
        out.push(xs[..n / 2].to_vec());
        out.push(xs[n / 2..].to_vec());
        for cut in [0, n / 2, n - 1] {
            let mut shorter = xs.clone();
            shorter.remove(cut);
            out.push(shorter);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        Checker::new()
            .cases(10)
            .run(|rng| rng.gen_range(0u64..100), |_| {});
        // Count via the generator instead (prop is Fn, not FnMut).
        Checker::new().cases(10).run(
            |rng| {
                seen += 1;
                rng.gen_range(0u64..100)
            },
            |x| assert!(*x < 100),
        );
        assert_eq!(seen, 10);
    }

    #[test]
    fn inputs_are_deterministic_across_runs() {
        let collect = || {
            let mut inputs = Vec::new();
            Checker::new().cases(8).seed(42).run(
                |rng| {
                    let v = rng.gen_vec(0..10, |r| r.gen_range(0u32..50));
                    inputs.push(v.clone());
                    v
                },
                |_| {},
            );
            inputs
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn failure_reports_and_reraises() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Checker::new().cases(20).run(
                |rng| rng.gen_range(0u64..1000),
                |x| assert!(*x < 5, "found big value {x}"),
            );
        }));
        assert!(result.is_err(), "property with failing cases must panic");
    }

    #[test]
    fn shrinking_finds_smaller_failure() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Checker::new().cases(20).run_shrink(
                |rng| rng.gen_vec(5..30, |r| r.gen_range(0u64..100)),
                shrink_vec,
                |xs| assert!(!xs.iter().any(|&x| x > 10)),
            );
        }));
        assert!(result.is_err());
    }

    #[test]
    fn case_seed_decorrelates_neighbours() {
        let a = case_seed(0, 0);
        let b = case_seed(0, 1);
        let c = case_seed(1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }
}
