//! `uvm-util`: the hermetic utility layer for the HPE workspace.
//!
//! Every crate in this workspace builds with **zero external dependencies**
//! so the tier-1 verify (`cargo build --release && cargo test -q`) runs
//! fully offline. This crate supplies the small, deterministic replacements
//! for what the seed previously pulled from crates.io:
//!
//! - [`rng`] — a seeded SplitMix64/xoshiro256** PRNG (replaces `rand`).
//! - [`json`] — a JSON value type, serializer, parser and derive-style
//!   macros (replaces `serde`/`serde_json`).
//! - [`prop`] — a deterministic, seed-reporting property-test harness
//!   (replaces `proptest`).
//! - [`bench`] — a micro-benchmark timer with a criterion-shaped API
//!   (replaces `criterion`).
//! - [`hist`] — a fixed-bucket [`Histogram`] for the tracing layer's
//!   distribution series (no external dependency ever existed for this;
//!   it lives here so every crate can record and serialize one).
//!
//! Determinism contract: the PRNG algorithm and the property-harness seed
//! derivation are frozen. Changing either invalidates every golden-trace
//! snapshot in the workspace, so treat them as ABI.

#![forbid(unsafe_code)]

pub mod bench;
pub mod hist;
pub mod json;
pub mod prop;
pub mod rng;
pub mod strict;

pub use hist::Histogram;
pub use json::{FromJson, Json, JsonError, ToJson};
pub use rng::Rng;
pub use strict::check_unknown_fields;
