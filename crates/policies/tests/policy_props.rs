//! Property-based tests shared across all eviction policies: driven with
//! random reference strings against a residency model, every policy must
//! (a) only evict resident pages, (b) never fault more than the reference
//! count, (c) never beat Belady's MIN.

use proptest::prelude::*;
use std::collections::HashSet;
use uvm_policies::{
    ArcPolicy, Bip, Car, Clock, ClockPro, ClockProConfig, Dip, EvictionPolicy, Ideal, Lfu, Lru,
    NextUseOracle, RandomPolicy, Rrip, RripConfig, SetLru, WsClock, WsClockConfig,
};
use uvm_types::PageId;

/// Drives the policy like the fault driver would; panics (failing the
/// property) if a victim is not resident. Returns the fault count.
fn replay(policy: &mut dyn EvictionPolicy, refs: &[u64], capacity: usize) -> u64 {
    let mut resident: HashSet<PageId> = HashSet::new();
    let mut faults = 0u64;
    let mut notified = false;
    for &r in refs {
        let page = PageId(r);
        policy.on_access(page);
        if resident.contains(&page) {
            policy.on_walk_hit(page);
            continue;
        }
        if resident.len() == capacity {
            if !notified {
                policy.on_memory_full();
                notified = true;
            }
            let victim = policy.select_victim().expect("a victim must exist");
            assert!(resident.remove(&victim), "victim {victim} not resident");
        }
        policy.on_fault(page, faults);
        resident.insert(page);
        faults += 1;
    }
    faults
}

fn belady_faults(refs: &[u64], capacity: usize) -> u64 {
    let order: Vec<PageId> = refs.iter().map(|&r| PageId(r)).collect();
    let mut ideal = Ideal::new(NextUseOracle::from_order(order));
    replay(&mut ideal, refs, capacity)
}

fn policies() -> Vec<Box<dyn EvictionPolicy>> {
    vec![
        Box::new(Lru::new()),
        Box::new(RandomPolicy::seeded(42)),
        Box::new(Lfu::new()),
        Box::new(Rrip::new(RripConfig::default())),
        Box::new(Rrip::new(RripConfig::for_thrashing())),
        Box::new(Clock::new()),
        Box::new(WsClock::new(WsClockConfig { tau: 64 })),
        Box::new(ClockPro::new(ClockProConfig { m_c: 8 })),
        Box::new(Bip::new()),
        Box::new(Dip::new()),
        Box::new(ArcPolicy::new()),
        Box::new(Car::new()),
        Box::new(SetLru::new(4)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_policy_respects_residency_and_fault_bounds(
        refs in proptest::collection::vec(0u64..48, 1..600),
        capacity in 2usize..32,
    ) {
        let distinct = refs.iter().collect::<HashSet<_>>().len() as u64;
        for mut policy in policies() {
            let faults = replay(policy.as_mut(), &refs, capacity);
            prop_assert!(
                faults >= distinct,
                "{}: {} faults < {} compulsory",
                policy.name(), faults, distinct
            );
            prop_assert!(
                faults <= refs.len() as u64,
                "{}: more faults than references",
                policy.name()
            );
        }
    }

    #[test]
    fn no_policy_beats_belady(
        refs in proptest::collection::vec(0u64..32, 1..400),
        capacity in 2usize..24,
    ) {
        let min = belady_faults(&refs, capacity);
        for mut policy in policies() {
            let faults = replay(policy.as_mut(), &refs, capacity);
            prop_assert!(
                faults >= min,
                "{}: {} faults beats MIN's {}",
                policy.name(), faults, min
            );
        }
    }

    #[test]
    fn policies_hit_entirely_within_capacity_working_sets(
        ws in 2u64..16,
        rounds in 2u32..10,
    ) {
        // A working set that fits must only ever take compulsory faults
        // (no pathological self-eviction). Random is excluded: it evicts
        // only when capacity is exceeded, so it also satisfies this.
        let refs: Vec<u64> = (0..rounds).flat_map(|_| 0..ws).collect();
        for mut policy in policies() {
            let faults = replay(policy.as_mut(), &refs, ws as usize);
            prop_assert_eq!(
                faults, ws,
                "{}: faulted {} times on a resident working set of {}",
                policy.name(), faults, ws
            );
        }
    }
}
