//! Property-based tests shared across all eviction policies: driven with
//! random reference strings against a residency model, every policy must
//! (a) only evict resident pages, (b) never fault more than the reference
//! count, (c) never beat Belady's MIN.

use std::collections::HashSet;
use uvm_policies::{
    ArcPolicy, Bip, Car, Clock, ClockPro, ClockProConfig, Dip, EvictionPolicy, Ideal, Lfu, Lru,
    NextUseOracle, RandomPolicy, Rrip, RripConfig, SetLru, WsClock, WsClockConfig,
};
use uvm_types::PageId;
use uvm_util::prop::{shrink_vec, Checker};

/// Drives the policy like the fault driver would; panics (failing the
/// property) if a victim is not resident. Returns the fault count.
fn replay(policy: &mut dyn EvictionPolicy, refs: &[u64], capacity: usize) -> u64 {
    let mut resident: HashSet<PageId> = HashSet::new();
    let mut faults = 0u64;
    let mut notified = false;
    for &r in refs {
        let page = PageId(r);
        policy.on_access(page);
        if resident.contains(&page) {
            policy.on_walk_hit(page);
            continue;
        }
        if resident.len() == capacity {
            if !notified {
                policy.on_memory_full();
                notified = true;
            }
            let victim = policy.select_victim().expect("a victim must exist");
            assert!(resident.remove(&victim), "victim {victim} not resident");
        }
        policy.on_fault(page, faults);
        resident.insert(page);
        faults += 1;
    }
    faults
}

fn belady_faults(refs: &[u64], capacity: usize) -> u64 {
    let order: Vec<PageId> = refs.iter().map(|&r| PageId(r)).collect();
    let mut ideal = Ideal::new(NextUseOracle::from_order(order));
    replay(&mut ideal, refs, capacity)
}

fn policies() -> Vec<Box<dyn EvictionPolicy>> {
    vec![
        Box::new(Lru::new()),
        Box::new(RandomPolicy::seeded(42)),
        Box::new(Lfu::new()),
        Box::new(Rrip::new(RripConfig::default())),
        Box::new(Rrip::new(RripConfig::for_thrashing())),
        Box::new(Clock::new()),
        Box::new(WsClock::new(WsClockConfig { tau: 64 })),
        Box::new(ClockPro::new(ClockProConfig { m_c: 8 })),
        Box::new(Bip::new()),
        Box::new(Dip::new()),
        Box::new(ArcPolicy::new()),
        Box::new(Car::new()),
        Box::new(SetLru::new(4)),
    ]
}

#[test]
fn every_policy_respects_residency_and_fault_bounds() {
    Checker::new().cases(48).run_shrink(
        |rng| {
            (
                rng.gen_vec(1..600, |r| r.gen_range(0u64..48)),
                rng.gen_range(2usize..32),
            )
        },
        |(refs, capacity)| {
            shrink_vec(refs)
                .into_iter()
                .filter(|v| !v.is_empty())
                .map(|v| (v, *capacity))
                .collect()
        },
        |(refs, capacity)| {
            let distinct = refs.iter().collect::<HashSet<_>>().len() as u64;
            for mut policy in policies() {
                let faults = replay(policy.as_mut(), refs, *capacity);
                assert!(
                    faults >= distinct,
                    "{}: {} faults < {} compulsory",
                    policy.name(),
                    faults,
                    distinct
                );
                assert!(
                    faults <= refs.len() as u64,
                    "{}: more faults than references",
                    policy.name()
                );
            }
        },
    );
}

#[test]
fn no_policy_beats_belady() {
    Checker::new().cases(48).run_shrink(
        |rng| {
            (
                rng.gen_vec(1..400, |r| r.gen_range(0u64..32)),
                rng.gen_range(2usize..24),
            )
        },
        |(refs, capacity)| {
            shrink_vec(refs)
                .into_iter()
                .filter(|v| !v.is_empty())
                .map(|v| (v, *capacity))
                .collect()
        },
        |(refs, capacity)| {
            let min = belady_faults(refs, *capacity);
            for mut policy in policies() {
                let faults = replay(policy.as_mut(), refs, *capacity);
                assert!(
                    faults >= min,
                    "{}: {} faults beats MIN's {}",
                    policy.name(),
                    faults,
                    min
                );
            }
        },
    );
}

#[test]
fn policies_hit_entirely_within_capacity_working_sets() {
    Checker::new().cases(48).run(
        |rng| (rng.gen_range(2u64..16), rng.gen_range(2u32..10)),
        |&(ws, rounds)| {
            // A working set that fits must only ever take compulsory faults
            // (no pathological self-eviction). Random is excluded: it evicts
            // only when capacity is exceeded, so it also satisfies this.
            let refs: Vec<u64> = (0..rounds).flat_map(|_| 0..ws).collect();
            for mut policy in policies() {
                let faults = replay(policy.as_mut(), &refs, ws as usize);
                assert_eq!(
                    faults,
                    ws,
                    "{}: faulted {} times on a resident working set of {}",
                    policy.name(),
                    faults,
                    ws
                );
            }
        },
    );
}
