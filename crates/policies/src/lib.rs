//! Page eviction policies for GPU unified memory.
//!
//! This crate defines the [`EvictionPolicy`] trait through which the
//! simulator drives any eviction policy, plus the baseline policies the
//! paper compares HPE against (Section V-B):
//!
//! * [`Lru`] — least-recently-used over pages,
//! * [`RandomPolicy`] — uniform random victim,
//! * [`Lfu`] — least-frequently-used (related work, Section VI-B),
//! * [`Rrip`] — re-reference interval prediction, frequency-priority
//!   variant, *enhanced with the paper's delay field* to resist instant
//!   thrashing,
//! * [`ClockPro`] — CLOCK-Pro with the paper's fixed `m_c = 128`,
//! * [`Ideal`] — an offline Belady-MIN-like policy using a next-use oracle
//!   over the trace order (the paper's performance upper bound).
//!
//! Beyond the paper's comparison set, the related-work policies of
//! Section VI-B are also implemented so downstream studies can extend the
//! evaluation: [`Clock`] (second-chance), [`WsClock`] (working-set clock),
//! [`Bip`] / [`Dip`] (bimodal and dynamic insertion), [`ArcPolicy`]
//! (adaptive replacement), [`Car`] (CLOCK with adaptive replacement), and
//! [`SetLru`] (a control isolating HPE's page-set granularity).
//!
//! # Policy visibility model
//!
//! Following the paper's evaluation methodology, baseline policies run in
//! an *ideal model*: every page walk (hit or fault) updates their metadata
//! immediately, in exact reference order, at zero cost
//! ([`EvictionPolicy::on_walk_hit`] / [`EvictionPolicy::on_fault`]). The
//! [`Ideal`] policy additionally observes every access pre-TLB
//! ([`EvictionPolicy::on_access`]) so its oracle can advance. HPE (in the
//! `hpe-core` crate) implements the same trait but buffers walk hits in its
//! GPU-side HIR and reports the resulting PCIe traffic through
//! [`FaultOutcome`].
//!
//! # Examples
//!
//! ```
//! use uvm_policies::{EvictionPolicy, Lru};
//! use uvm_types::PageId;
//!
//! let mut lru = Lru::new();
//! lru.on_fault(PageId(1), 0);
//! lru.on_fault(PageId(2), 1);
//! lru.on_walk_hit(PageId(1)); // 1 becomes MRU
//! assert_eq!(lru.select_victim(), Some(PageId(2)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arc;
mod car;
pub mod chain;
mod clock;
mod clockpro;
mod dip;
mod ideal;
mod lfu;
mod lru;
mod random;
mod rrip;
mod setlru;
mod traced;
mod wsclock;

pub use arc::ArcPolicy;
pub use car::Car;
pub use clock::Clock;
pub use clockpro::{ClockPro, ClockProConfig};
pub use dip::{Bip, Dip};
pub use ideal::{Ideal, NextUseOracle};
pub use lfu::Lfu;
pub use lru::Lru;
pub use random::RandomPolicy;
pub use rrip::{Rrip, RripConfig, RripInsertion};
pub use setlru::SetLru;
pub use traced::Traced;
pub use wsclock::{WsClock, WsClockConfig};

use uvm_types::{PageId, PolicyEvent, PolicyStats, SignalDisruption};

/// Side effects of servicing a page fault, reported by the policy to the
/// simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultOutcome {
    /// Extra bytes the policy moved over PCIe while servicing this fault
    /// (HPE's HIR flush). The simulator converts this to cycles and adds it
    /// to execution time, as the paper does (Section V-B).
    pub transfer_bytes: u64,
    /// Extra host-CPU busy cycles spent on policy bookkeeping (HPE's chain
    /// update). Counted toward driver core load but *not* the critical
    /// path, matching Section V-C.
    pub driver_busy_cycles: u64,
    /// GPU-to-driver flushes sent while the channel was down: they never
    /// arrive. The engine's HIR circuit breaker counts these failures.
    pub lost_flushes: u32,
    /// PCIe bytes burned on those lost flushes (paid on the critical path
    /// like [`FaultOutcome::transfer_bytes`], but accounted separately as
    /// waste).
    pub wasted_transfer_bytes: u64,
}

/// A page eviction policy driven by the unified-memory fault driver.
///
/// Implementations maintain their own view of which pages are resident:
/// [`Self::on_fault`] makes a page resident, and a page returned from
/// [`Self::select_victim`] is immediately evicted (the policy must forget
/// it or remember it only as history). The simulator checks that victims
/// are actually resident.
pub trait EvictionPolicy {
    /// Human-readable policy name for reports ("LRU", "HPE", ...).
    fn name(&self) -> String;

    /// Observes one memory access *before* address translation.
    ///
    /// Only oracle-based policies ([`Ideal`]) need this; the default is a
    /// no-op.
    fn on_access(&mut self, _page: PageId) {}

    /// Observes a page walk that hit (the page is resident).
    fn on_walk_hit(&mut self, _page: PageId) {}

    /// Observes a serviced page fault: `page` is now resident. `fault_num`
    /// is the global page-fault sequence number (0-based).
    fn on_fault(&mut self, page: PageId, fault_num: u64) -> FaultOutcome;

    /// Notifies the policy that GPU memory has just reached capacity for
    /// the first time (HPE classifies the application here; Section IV-D).
    fn on_memory_full(&mut self) {}

    /// Selects a resident page to evict and forgets it. Returns `None` only
    /// if the policy believes nothing is resident.
    fn select_victim(&mut self) -> Option<PageId>;

    /// Notifies the policy of a disrupted or injected driver signal (see
    /// [`SignalDisruption`]). Robust policies use this to degrade
    /// gracefully; the default ignores every disruption.
    fn on_disruption(&mut self, _disruption: SignalDisruption) {}

    /// Snapshot of policy-side statistics.
    fn stats(&self) -> PolicyStats {
        PolicyStats::default()
    }

    /// Enables or disables decision-event buffering.
    ///
    /// The simulator turns tracing on exactly when an observer is
    /// attached, so policies that implement it pay nothing on untraced
    /// runs. Tracing must be purely observational: enabling it must not
    /// change any decision or statistic. The default ignores the request
    /// (the policy emits no events).
    fn set_tracing(&mut self, _enabled: bool) {}

    /// Drains buffered decision events, oldest first, into `sink`.
    ///
    /// Called by the simulator after each policy interaction; the engine
    /// stamps each event with the current simulated cycle. The default
    /// drains nothing.
    fn drain_events(&mut self, _sink: &mut dyn FnMut(PolicyEvent)) {}

    /// Current fill of the policy's GPU-side hit-information buffer
    /// (HIR), in touched records; policies without one report 0.
    ///
    /// Read-only: the profiler's metrics registry samples this on a
    /// cycle cadence, so it must not change any decision or statistic.
    fn hir_fill(&self) -> u64 {
        0
    }

    /// Whether the policy is currently running in a degraded fallback
    /// mode (driver signals lost or undefined). Read-only, sampled by
    /// the profiler's metrics registry; the default never degrades.
    fn is_degraded(&self) -> bool {
        false
    }

    /// Validates the policy's internal structural invariants.
    ///
    /// Called by the simulator's opt-in sanitizer between events; it must
    /// be read-only (no decision or statistic may change). On a violation
    /// the implementation returns `Err` with a short description of what
    /// is inconsistent; the engine wraps it into
    /// `SimError::InvariantViolated` instead of panicking. The default
    /// claims nothing and always passes.
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }
}

impl<P: EvictionPolicy + ?Sized> EvictionPolicy for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn on_access(&mut self, page: PageId) {
        (**self).on_access(page);
    }
    fn on_walk_hit(&mut self, page: PageId) {
        (**self).on_walk_hit(page);
    }
    fn on_fault(&mut self, page: PageId, fault_num: u64) -> FaultOutcome {
        (**self).on_fault(page, fault_num)
    }
    fn on_memory_full(&mut self) {
        (**self).on_memory_full();
    }
    fn select_victim(&mut self) -> Option<PageId> {
        (**self).select_victim()
    }
    fn on_disruption(&mut self, disruption: SignalDisruption) {
        (**self).on_disruption(disruption);
    }
    fn stats(&self) -> PolicyStats {
        (**self).stats()
    }
    fn set_tracing(&mut self, enabled: bool) {
        (**self).set_tracing(enabled);
    }
    fn drain_events(&mut self, sink: &mut dyn FnMut(PolicyEvent)) {
        (**self).drain_events(sink);
    }
    fn hir_fill(&self) -> u64 {
        (**self).hir_fill()
    }
    fn is_degraded(&self) -> bool {
        (**self).is_degraded()
    }
    fn check_invariants(&self) -> Result<(), String> {
        (**self).check_invariants()
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;

    /// Replays `refs` against `policy` with a memory of `capacity` pages,
    /// returning the number of faults (the miss count of the policy as a
    /// cache of `capacity` pages). This mimics the driver loop: on a miss
    /// when full, a victim is evicted first.
    pub fn replay(policy: &mut dyn EvictionPolicy, refs: &[u64], capacity: usize) -> u64 {
        let mut resident = std::collections::HashSet::new();
        let mut faults = 0u64;
        let mut notified_full = false;
        for &r in refs {
            let page = PageId(r);
            policy.on_access(page);
            if resident.contains(&page) {
                policy.on_walk_hit(page);
            } else {
                if resident.len() == capacity {
                    if !notified_full {
                        policy.on_memory_full();
                        notified_full = true;
                    }
                    let victim = policy.select_victim().expect("resident pages exist");
                    assert!(resident.remove(&victim), "victim {victim} not resident");
                }
                policy.on_fault(page, faults);
                resident.insert(page);
                faults += 1;
            }
        }
        faults
    }
}
