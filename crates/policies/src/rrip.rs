//! RRIP (re-reference interval prediction), frequency-priority variant,
//! enhanced with the paper's *delay field* (Section V-B).
//!
//! The paper observes that plain RRIP suffers *instant thrashing* when
//! applied to unified memory: newly migrated pages inserted with a distant
//! re-reference prediction are evicted before their imminent re-references
//! arrive. The enhancement records the global page-fault number at
//! insertion in a per-page delay field and refuses to evict a page until at
//! least `delay_threshold` faults have passed since its migration.

use std::collections::HashMap;
use uvm_types::{PageId, PolicyStats};

use crate::{EvictionPolicy, FaultOutcome};

/// Insertion prediction for newly migrated pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RripInsertion {
    /// Insert with a *long* re-reference interval (`RRPV = max - 1`).
    /// The paper uses this for all pattern types except type II, with a
    /// delay threshold of 0.
    Long,
    /// Insert with a *distant* re-reference interval (`RRPV = max`).
    /// The paper uses this for type II (thrashing) applications, with a
    /// delay threshold of 128.
    Distant,
}

/// RRIP configuration.
///
/// # Examples
///
/// ```
/// use uvm_policies::{RripConfig, RripInsertion};
///
/// let cfg = RripConfig::for_thrashing();
/// assert_eq!(cfg.insertion, RripInsertion::Distant);
/// assert_eq!(cfg.delay_threshold, 128);
/// assert_eq!(RripConfig::default().delay_threshold, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RripConfig {
    /// Width of the re-reference prediction value register (RRPV saturates
    /// at `2^m_bits - 1`).
    pub m_bits: u8,
    /// Insertion prediction for new pages.
    pub insertion: RripInsertion,
    /// Minimum number of page faults that must pass after a page's
    /// migration before it may be evicted (0 disables the enhancement).
    pub delay_threshold: u64,
}

impl RripConfig {
    /// The paper's configuration for type II (thrashing) applications:
    /// distant insertion, delay threshold 128.
    pub fn for_thrashing() -> Self {
        RripConfig {
            m_bits: 2,
            insertion: RripInsertion::Distant,
            delay_threshold: 128,
        }
    }
}

impl Default for RripConfig {
    /// The paper's configuration for non-thrashing patterns: long
    /// insertion, delay threshold 0.
    fn default() -> Self {
        RripConfig {
            m_bits: 2,
            insertion: RripInsertion::Long,
            delay_threshold: 0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    rrpv: u8,
    /// Global fault number at migration (the paper's delay field).
    delay: u64,
    /// Frame slot: a migrated page takes the slot its victim freed, as a
    /// cache fill takes the invalidated way. The victim scan prefers the
    /// lowest slot, modelling hardware RRIP's scan-from-way-0 — which is
    /// what makes a freshly migrated distant-RRPV page the immediate next
    /// victim (the paper's "instant thrashing") while a long-RRPV one is
    /// spared until aging.
    slot: u32,
}

/// RRIP-FP with the delay-field enhancement.
///
/// Hit promotion is *frequency priority*: each page-walk hit decrements the
/// page's RRPV by one. Victim selection repeatedly ages all pages (capped
/// increment of every RRPV) until some delay-qualified page reaches the
/// maximum RRPV, then evicts the lowest-slot such page (the hardware
/// scan-from-way-0 order) — implemented as a single O(n) pass computing
/// the equivalent aging amount.
///
/// # Examples
///
/// ```
/// use uvm_policies::{EvictionPolicy, Rrip, RripConfig};
/// use uvm_types::PageId;
///
/// let mut rrip = Rrip::new(RripConfig::default());
/// rrip.on_fault(PageId(1), 0);
/// rrip.on_fault(PageId(2), 1);
/// rrip.on_walk_hit(PageId(1)); // 1 now predicted nearer than 2
/// assert_eq!(rrip.select_victim(), Some(PageId(2)));
/// ```
#[derive(Debug)]
pub struct Rrip {
    cfg: RripConfig,
    entries: HashMap<PageId, Entry>,
    current_fault: u64,
    next_slot: u32,
    freed_slots: Vec<u32>,
    stats: PolicyStats,
}

impl Rrip {
    /// Creates an RRIP policy with the given configuration.
    pub fn new(cfg: RripConfig) -> Self {
        assert!(
            cfg.m_bits >= 1 && cfg.m_bits <= 8,
            "m_bits must be in 1..=8"
        );
        Rrip {
            cfg,
            entries: HashMap::new(),
            current_fault: 0,
            next_slot: 0,
            freed_slots: Vec::new(),
            stats: PolicyStats::default(),
        }
    }

    fn rrpv_max(&self) -> u8 {
        (1u16 << self.cfg.m_bits) as u8 - 1
    }

    fn insertion_rrpv(&self) -> u8 {
        match self.cfg.insertion {
            RripInsertion::Long => self.rrpv_max() - 1,
            RripInsertion::Distant => self.rrpv_max(),
        }
    }

    /// Number of pages the policy believes are resident.
    pub fn resident_len(&self) -> usize {
        self.entries.len()
    }

    /// Current RRPV of `page`, if resident (test/diagnostic accessor).
    pub fn rrpv(&self, page: PageId) -> Option<u8> {
        self.entries.get(&page).map(|e| e.rrpv)
    }
}

impl EvictionPolicy for Rrip {
    fn name(&self) -> String {
        format!(
            "RRIP({})",
            match self.cfg.insertion {
                RripInsertion::Long => "long",
                RripInsertion::Distant => "distant",
            }
        )
    }

    fn on_walk_hit(&mut self, page: PageId) {
        if let Some(e) = self.entries.get_mut(&page) {
            e.rrpv = e.rrpv.saturating_sub(1);
        }
    }

    fn on_fault(&mut self, page: PageId, fault_num: u64) -> FaultOutcome {
        self.current_fault = fault_num + 1;
        let rrpv = self.insertion_rrpv();
        let slot = self.freed_slots.pop().unwrap_or_else(|| {
            let s = self.next_slot;
            self.next_slot += 1;
            s
        });
        self.entries.insert(
            page,
            Entry {
                rrpv,
                delay: fault_num,
                slot,
            },
        );
        FaultOutcome::default()
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.stats.selections += 1;
        if self.entries.is_empty() {
            return None;
        }
        let max = self.rrpv_max();
        // Among delay-qualified pages, repeated aging would first push the
        // page with the highest RRPV to the maximum; the hardware scan
        // then takes the lowest frame slot among those. One pass finds
        // that page directly.
        let mut best: Option<(u8, std::cmp::Reverse<u32>, PageId)> = None;
        let mut blocked_best: Option<(u64, u32, PageId)> = None;
        // lint:allow(hash-iteration) — total-order reduction, ties broken by slot/page
        for (&page, e) in &self.entries {
            self.stats.search_comparisons += 1;
            if self.current_fault.saturating_sub(e.delay) >= self.cfg.delay_threshold {
                let cand = (e.rrpv, std::cmp::Reverse(e.slot), page);
                best = Some(match best {
                    // Higher RRPV wins; then lower slot.
                    None => cand,
                    Some(b) if (cand.0, cand.1) > (b.0, b.1) => cand,
                    Some(b) => b,
                });
            } else {
                let cand = (e.delay, e.slot, page);
                blocked_best = Some(match blocked_best {
                    None => cand,
                    Some(b) if cand < b => cand,
                    Some(b) => b,
                });
            }
        }
        let victim = match best {
            Some((rrpv, _, page)) => {
                // Apply the equivalent aging so post-eviction state matches
                // the iterative algorithm.
                let aging = max - rrpv;
                if aging > 0 {
                    // lint:allow(hash-iteration) — uniform aging, order-free
                    for e in self.entries.values_mut() {
                        e.rrpv = (e.rrpv + aging).min(max);
                    }
                }
                page
            }
            // Every resident page is delay-blocked: fall back to the page
            // migrated longest ago.
            None => blocked_best.expect("entries nonempty").2, // lint:allow(unwrap) — best.is_none() implies every entry went to blocked_best
        };
        let freed = self.entries.remove(&victim).expect("victim exists").slot; // lint:allow(unwrap) — victim drawn from entries just above
        self.freed_slots.push(freed);
        Some(victim)
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::replay;

    #[test]
    fn long_insertion_evicts_unreferenced_first() {
        let mut rrip = Rrip::new(RripConfig::default());
        for p in 0..4u64 {
            rrip.on_fault(PageId(p), p);
        }
        // Promote 0 twice, 1 once.
        rrip.on_walk_hit(PageId(0));
        rrip.on_walk_hit(PageId(0));
        rrip.on_walk_hit(PageId(1));
        // 2 and 3 still at long (= max-1); aging pushes them to max first,
        // and the lower slot (2) is scanned first.
        let v1 = rrip.select_victim().unwrap();
        let v2 = rrip.select_victim().unwrap();
        assert_eq!((v1, v2), (PageId(2), PageId(3)));
    }

    #[test]
    fn zero_threshold_exhibits_instant_thrashing() {
        // Without the delay field, a freshly migrated page at distant RRPV
        // fills the slot the scan points at and is evicted right back —
        // the pathology the paper documents.
        let mut rrip = Rrip::new(RripConfig {
            m_bits: 2,
            insertion: RripInsertion::Distant,
            delay_threshold: 0,
        });
        for p in 0..4u64 {
            rrip.on_fault(PageId(p), p);
        }
        // Steady state: evict, migrate a new page into the freed slot.
        assert_eq!(rrip.select_victim(), Some(PageId(0)));
        rrip.on_fault(PageId(100), 4);
        // The newcomer reused slot 0 at distant RRPV: instantly re-victim.
        assert_eq!(rrip.select_victim(), Some(PageId(100)));
        // With a delay threshold the same newcomer would be protected:
        let mut protected = Rrip::new(RripConfig {
            m_bits: 2,
            insertion: RripInsertion::Distant,
            delay_threshold: 3,
        });
        for p in 0..4u64 {
            protected.on_fault(PageId(p), p);
        }
        assert_eq!(protected.select_victim(), Some(PageId(0)));
        protected.on_fault(PageId(100), 4);
        assert_ne!(protected.select_victim(), Some(PageId(100)));
    }

    #[test]
    fn aging_is_applied_to_survivors() {
        let mut rrip = Rrip::new(RripConfig::default());
        rrip.on_fault(PageId(0), 0);
        rrip.on_walk_hit(PageId(0)); // rrpv 1
        rrip.on_fault(PageId(1), 1); // rrpv 2
        assert_eq!(rrip.select_victim(), Some(PageId(1))); // aging by 1
        assert_eq!(rrip.rrpv(PageId(0)), Some(2));
    }

    #[test]
    fn distant_insertion_with_delay_resists_instant_thrashing() {
        let cfg = RripConfig {
            m_bits: 2,
            insertion: RripInsertion::Distant,
            delay_threshold: 4,
        };
        let mut rrip = Rrip::new(cfg);
        for p in 0..3u64 {
            rrip.on_fault(PageId(p), p);
        }
        // Fault 3 arrives; pages 0..3 inserted at faults 0,1,2. With
        // current_fault = 3, only page 0 satisfies 3 - 0 >= 4? No — none
        // do, so the fallback evicts the oldest migration (page 0).
        rrip.on_fault(PageId(3), 3);
        assert_eq!(rrip.select_victim(), Some(PageId(0)));
    }

    #[test]
    fn delay_qualified_page_preferred_over_blocked() {
        let cfg = RripConfig {
            m_bits: 2,
            insertion: RripInsertion::Distant,
            delay_threshold: 10,
        };
        let mut rrip = Rrip::new(cfg);
        rrip.on_fault(PageId(0), 0);
        rrip.on_fault(PageId(1), 11); // current_fault = 12
                                      // Page 0: 12 - 0 >= 10 qualified. Page 1: 12 - 11 = 1 blocked.
        assert_eq!(rrip.select_victim(), Some(PageId(0)));
    }

    #[test]
    fn cyclic_sweep_with_distant_insertion_retains_subset() {
        // Distant insertion drops each newcomer into the slot the scan
        // points at, so the slot churns and the *rest of memory is
        // retained* — beating LRU's 100% post-warmup miss rate on a
        // cyclic sweep (without the delay field; the delay trades this
        // retention for protection of pages with imminent replays).
        let refs: Vec<u64> = (0..32).cycle().take(32 * 12).collect();
        let faults = replay(
            &mut Rrip::new(RripConfig {
                m_bits: 2,
                insertion: RripInsertion::Distant,
                delay_threshold: 0,
            }),
            &refs,
            24,
        );
        assert!(
            faults < 32 * 12,
            "distant RRIP should not miss every reference, got {faults}"
        );
    }

    #[test]
    fn victim_none_when_empty() {
        assert_eq!(Rrip::new(RripConfig::default()).select_victim(), None);
    }

    #[test]
    #[should_panic(expected = "m_bits")]
    fn rejects_zero_width() {
        Rrip::new(RripConfig {
            m_bits: 0,
            insertion: RripInsertion::Long,
            delay_threshold: 0,
        });
    }
}
