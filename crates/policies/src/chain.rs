//! An arena-backed doubly-linked recency chain with O(1) operations.
//!
//! This is the building block for page-level recency policies ([`crate::Lru`])
//! and anything else that needs "move to MRU" / "pop LRU" without the
//! per-operation allocation of `LinkedList` or the O(n) shifting of a
//! `VecDeque`.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// A recency-ordered set of keys: one end is LRU, the other MRU.
///
/// All operations are O(1) expected time.
///
/// # Examples
///
/// ```
/// use uvm_policies::chain::RecencyChain;
///
/// let mut chain = RecencyChain::new();
/// chain.insert_mru(1);
/// chain.insert_mru(2);
/// chain.insert_mru(3);
/// chain.touch(&1);                   // 1 becomes MRU
/// assert_eq!(chain.lru(), Some(&2));
/// assert_eq!(chain.pop_lru(), Some(2));
/// assert_eq!(chain.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RecencyChain<K> {
    nodes: Vec<Node<K>>,
    map: HashMap<K, usize>,
    head: usize, // LRU end
    tail: usize, // MRU end
    free: Vec<usize>,
}

impl<K: Eq + Hash + Clone> RecencyChain<K> {
    /// Creates an empty chain.
    pub fn new() -> Self {
        RecencyChain {
            nodes: Vec::new(),
            map: HashMap::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
        }
    }

    /// Number of keys in the chain.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key` at the MRU position. Returns `false` (and moves the
    /// key to MRU) if it was already present.
    pub fn insert_mru(&mut self, key: K) -> bool {
        if self.map.contains_key(&key) {
            self.touch(&key);
            return false;
        }
        let idx = self.alloc(key.clone());
        self.map.insert(key, idx);
        self.link_at_tail(idx);
        true
    }

    /// Inserts `key` at the LRU position (bimodal/LIP-style insertion).
    /// If already present the key is *demoted* to LRU.
    pub fn insert_lru(&mut self, key: K) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            if self.head != idx {
                self.unlink(idx);
                self.link_at_head(idx);
            }
            return false;
        }
        let idx = self.alloc(key.clone());
        self.map.insert(key, idx);
        self.link_at_head(idx);
        true
    }

    /// Moves `key` to the MRU position. Returns `false` if absent.
    pub fn touch(&mut self, key: &K) -> bool {
        let Some(&idx) = self.map.get(key) else {
            return false;
        };
        if self.tail == idx {
            return true;
        }
        self.unlink(idx);
        self.link_at_tail(idx);
        true
    }

    /// The LRU key, if any.
    pub fn lru(&self) -> Option<&K> {
        (self.head != NIL).then(|| &self.nodes[self.head].key)
    }

    /// The MRU key, if any.
    pub fn mru(&self) -> Option<&K> {
        (self.tail != NIL).then(|| &self.nodes[self.tail].key)
    }

    /// Removes and returns the LRU key.
    pub fn pop_lru(&mut self) -> Option<K> {
        let key = self.lru()?.clone();
        self.remove(&key);
        Some(key)
    }

    /// Removes `key`. Returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        let Some(idx) = self.map.remove(key) else {
            return false;
        };
        self.unlink(idx);
        self.free.push(idx);
        true
    }

    /// Iterates keys from LRU to MRU.
    pub fn iter(&self) -> Iter<'_, K> {
        Iter {
            chain: self,
            idx: self.head,
            forward: true,
        }
    }

    /// Iterates keys from MRU to LRU (HPE's MRU-C searches this way).
    pub fn iter_rev(&self) -> Iter<'_, K> {
        Iter {
            chain: self,
            idx: self.tail,
            forward: false,
        }
    }

    fn alloc(&mut self, key: K) -> usize {
        let node = Node {
            key,
            prev: NIL,
            next: NIL,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn link_at_head(&mut self, idx: usize) {
        self.nodes[idx].next = self.head;
        self.nodes[idx].prev = NIL;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        } else {
            self.tail = idx;
        }
        self.head = idx;
    }

    fn link_at_tail(&mut self, idx: usize) {
        self.nodes[idx].prev = self.tail;
        self.nodes[idx].next = NIL;
        if self.tail != NIL {
            self.nodes[self.tail].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }
}

impl<K: Eq + Hash + Clone> Default for RecencyChain<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> FromIterator<K> for RecencyChain<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut chain = RecencyChain::new();
        for k in iter {
            chain.insert_mru(k);
        }
        chain
    }
}

/// Iterator over a [`RecencyChain`] in either direction.
#[derive(Debug)]
pub struct Iter<'a, K> {
    chain: &'a RecencyChain<K>,
    idx: usize,
    forward: bool,
}

impl<'a, K> Iterator for Iter<'a, K> {
    type Item = &'a K;

    fn next(&mut self) -> Option<&'a K> {
        if self.idx == NIL {
            return None;
        }
        let node = &self.chain.nodes[self.idx];
        self.idx = if self.forward { node.next } else { node.prev };
        Some(&node.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_util::prop::{shrink_vec, Checker};

    #[test]
    fn basic_order() {
        let mut c: RecencyChain<u32> = (0..5).collect();
        assert_eq!(c.len(), 5);
        assert_eq!(c.lru(), Some(&0));
        assert_eq!(c.mru(), Some(&4));
        c.touch(&0);
        assert_eq!(c.lru(), Some(&1));
        assert_eq!(c.mru(), Some(&0));
        let order: Vec<u32> = c.iter().copied().collect();
        assert_eq!(order, vec![1, 2, 3, 4, 0]);
    }

    #[test]
    fn reverse_iteration_mirrors_forward() {
        let mut c: RecencyChain<u32> = (0..6).collect();
        c.touch(&2);
        let fwd: Vec<u32> = c.iter().copied().collect();
        let mut rev: Vec<u32> = c.iter_rev().copied().collect();
        rev.reverse();
        assert_eq!(fwd, rev);
        assert_eq!(c.iter_rev().next(), Some(&2)); // MRU first
    }

    #[test]
    fn reinsert_moves_to_mru() {
        let mut c: RecencyChain<u32> = (0..3).collect();
        assert!(!c.insert_mru(0));
        assert_eq!(c.mru(), Some(&0));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn remove_middle_and_reuse_slot() {
        let mut c: RecencyChain<u32> = (0..3).collect();
        assert!(c.remove(&1));
        assert!(!c.remove(&1));
        assert_eq!(c.iter().copied().collect::<Vec<_>>(), vec![0, 2]);
        c.insert_mru(9);
        assert_eq!(c.iter().copied().collect::<Vec<_>>(), vec![0, 2, 9]);
        // The freed arena slot was reused: no growth beyond 3 nodes.
        assert_eq!(c.nodes.len(), 3);
    }

    #[test]
    fn pop_lru_drains_in_order() {
        let mut c: RecencyChain<u32> = (0..4).collect();
        let drained: Vec<u32> = std::iter::from_fn(|| c.pop_lru()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3]);
        assert!(c.is_empty());
        assert_eq!(c.lru(), None);
        assert_eq!(c.mru(), None);
        assert_eq!(c.pop_lru(), None);
    }

    #[test]
    fn insert_lru_places_and_demotes() {
        let mut c: RecencyChain<u32> = (0..3).collect();
        assert!(c.insert_lru(9));
        assert_eq!(c.lru(), Some(&9));
        // Demoting an existing MRU key to LRU.
        assert!(!c.insert_lru(2));
        assert_eq!(c.lru(), Some(&2));
        assert_eq!(c.iter().copied().collect::<Vec<_>>(), vec![2, 9, 0, 1]);
        // Into an empty chain.
        let mut e: RecencyChain<u32> = RecencyChain::new();
        e.insert_lru(5);
        assert_eq!(e.lru(), Some(&5));
        assert_eq!(e.mru(), Some(&5));
    }

    #[test]
    fn touch_absent_returns_false() {
        let mut c: RecencyChain<u32> = RecencyChain::new();
        assert!(!c.touch(&7));
        c.insert_mru(7);
        assert!(c.touch(&7));
    }

    /// Reference model: a Vec where the last element is MRU.
    #[derive(Default)]
    struct Model(Vec<u16>);

    impl Model {
        fn insert_mru(&mut self, k: u16) {
            self.0.retain(|&x| x != k);
            self.0.push(k);
        }
        fn insert_lru(&mut self, k: u16) {
            self.0.retain(|&x| x != k);
            self.0.insert(0, k);
        }
        fn touch(&mut self, k: u16) {
            if self.0.contains(&k) {
                self.insert_mru(k);
            }
        }
        fn remove(&mut self, k: u16) {
            self.0.retain(|&x| x != k);
        }
        fn pop_lru(&mut self) -> Option<u16> {
            if self.0.is_empty() {
                None
            } else {
                Some(self.0.remove(0))
            }
        }
    }

    #[test]
    fn matches_vec_model() {
        Checker::new().run_shrink(
            |rng| {
                rng.gen_vec(0..400, |r| {
                    (r.gen_range(0u16..5) as u8, r.gen_range(0u16..24))
                })
            },
            shrink_vec,
            |ops| {
                let mut chain = RecencyChain::new();
                let mut model = Model::default();
                for &(op, k) in ops {
                    match op {
                        0 => {
                            chain.insert_mru(k);
                            model.insert_mru(k);
                        }
                        1 => {
                            chain.touch(&k);
                            model.touch(k);
                        }
                        2 => {
                            chain.remove(&k);
                            model.remove(k);
                        }
                        4 => {
                            chain.insert_lru(k);
                            model.insert_lru(k);
                        }
                        _ => {
                            assert_eq!(chain.pop_lru(), model.pop_lru());
                        }
                    }
                    assert_eq!(chain.len(), model.0.len());
                    assert_eq!(chain.iter().copied().collect::<Vec<_>>(), model.0);
                }
            },
        );
    }
}
