//! BIP and DIP (Qureshi et al., ISCA'07), discussed in Section VI-B.
//!
//! BIP (bimodal insertion) places most incoming pages at the *LRU*
//! position, retaining part of the old working set under thrashing. DIP
//! normally picks between LRU and BIP with set dueling; the paper notes
//! set dueling "is not easy to apply in memory", so this implementation
//! duels over *time*: alternating short sample epochs of each policy and
//! following whichever faulted less, re-sampled periodically.

use uvm_types::{PageId, PolicyStats};
use uvm_util::Rng;

use crate::chain::RecencyChain;
use crate::{EvictionPolicy, FaultOutcome};

/// Bimodal insertion: incoming pages go to the LRU position except with
/// probability `1/32`, which goes to MRU.
///
/// # Examples
///
/// ```
/// use uvm_policies::{Bip, EvictionPolicy};
/// use uvm_types::PageId;
///
/// let mut bip = Bip::new();
/// bip.on_fault(PageId(1), 0);
/// bip.on_fault(PageId(2), 1);
/// // Page 2 was (almost certainly) inserted at LRU: evicted first.
/// let v = bip.select_victim().unwrap();
/// assert!(v == PageId(2) || v == PageId(1));
/// ```
#[derive(Debug)]
pub struct Bip {
    chain: RecencyChain<PageId>,
    rng: Rng,
    epsilon_inv: u32,
    stats: PolicyStats,
}

impl Bip {
    /// Creates a BIP policy with the canonical `1/32` MRU-insertion rate.
    pub fn new() -> Self {
        Self::with_rate(32, 0xB1B)
    }

    /// Creates a BIP policy inserting at MRU with probability
    /// `1/epsilon_inv`, using `seed` for the bimodal coin.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon_inv` is zero.
    pub fn with_rate(epsilon_inv: u32, seed: u64) -> Self {
        assert!(epsilon_inv > 0, "epsilon_inv must be nonzero");
        Bip {
            chain: RecencyChain::new(),
            rng: Rng::seed_from_u64(seed),
            epsilon_inv,
            stats: PolicyStats::default(),
        }
    }

    /// Number of pages the policy believes are resident.
    pub fn resident_len(&self) -> usize {
        self.chain.len()
    }

    fn insert(&mut self, page: PageId) {
        if self.rng.gen_range(0..self.epsilon_inv) == 0 {
            self.chain.insert_mru(page);
        } else {
            self.chain.insert_lru(page);
        }
    }
}

impl Default for Bip {
    fn default() -> Self {
        Self::new()
    }
}

impl EvictionPolicy for Bip {
    fn name(&self) -> String {
        "BIP".to_string()
    }

    fn on_walk_hit(&mut self, page: PageId) {
        self.chain.touch(&page);
    }

    fn on_fault(&mut self, page: PageId, _fault_num: u64) -> FaultOutcome {
        self.insert(page);
        FaultOutcome::default()
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.stats.selections += 1;
        self.chain.pop_lru()
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

/// DIP: duels LRU-insertion against bimodal insertion over time epochs and
/// follows the winner.
#[derive(Debug)]
pub struct Dip {
    chain: RecencyChain<PageId>,
    rng: Rng,
    epsilon_inv: u32,
    /// Faults per sampling epoch.
    epoch_len: u32,
    epoch_faults: u32,
    /// 0 = sampling LRU, 1 = sampling BIP, 2 = following the winner.
    phase: u8,
    winner_is_bip: bool,
    sample_faults: [u64; 2],
    /// Misses observed during each sample phase are just the faults; we
    /// count wrong-ish evictions via refaults on recently evicted pages.
    recent: std::collections::VecDeque<PageId>,
    recent_set: std::collections::HashMap<PageId, u32>,
    refaults: [u64; 2],
    follow_epochs: u32,
    stats: PolicyStats,
}

impl Dip {
    /// Creates a DIP policy with epoch length 64 faults and the canonical
    /// bimodal rate.
    pub fn new() -> Self {
        Dip {
            chain: RecencyChain::new(),
            // lint:allow(rng-taint) — fixed dither stream per the DIP spec
            rng: Rng::seed_from_u64(0xD1B),
            epsilon_inv: 32,
            epoch_len: 64,
            epoch_faults: 0,
            phase: 0,
            winner_is_bip: false,
            sample_faults: [0; 2],
            recent: std::collections::VecDeque::new(),
            recent_set: std::collections::HashMap::new(),
            refaults: [0; 2],
            follow_epochs: 0,
            stats: PolicyStats::default(),
        }
    }

    fn active_is_bip(&self) -> bool {
        match self.phase {
            0 => false,
            1 => true,
            _ => self.winner_is_bip,
        }
    }

    fn remember(&mut self, page: PageId) {
        self.recent.push_back(page);
        *self.recent_set.entry(page).or_insert(0) += 1;
        if self.recent.len() > 128 {
            let old = self.recent.pop_front().expect("nonempty"); // lint:allow(unwrap) — len > 128 checked above
            if let Some(c) = self.recent_set.get_mut(&old) {
                *c -= 1;
                if *c == 0 {
                    self.recent_set.remove(&old);
                }
            }
        }
    }

    fn advance_epoch(&mut self) {
        self.epoch_faults = 0;
        match self.phase {
            0 => self.phase = 1,
            1 => {
                self.winner_is_bip = self.refaults[1] < self.refaults[0];
                self.stats.strategy_switches += 1;
                self.phase = 2;
                self.follow_epochs = 0;
            }
            _ => {
                self.follow_epochs += 1;
                // Re-sample every 8 follow epochs to stay adaptive.
                if self.follow_epochs >= 8 {
                    self.phase = 0;
                    self.refaults = [0; 2];
                    self.sample_faults = [0; 2];
                }
            }
        }
    }
}

impl Default for Dip {
    fn default() -> Self {
        Self::new()
    }
}

impl EvictionPolicy for Dip {
    fn name(&self) -> String {
        "DIP".to_string()
    }

    fn on_walk_hit(&mut self, page: PageId) {
        self.chain.touch(&page);
    }

    fn on_fault(&mut self, page: PageId, _fault_num: u64) -> FaultOutcome {
        if self.phase < 2 {
            self.sample_faults[self.phase as usize] += 1;
            if self.recent_set.contains_key(&page) {
                self.refaults[self.phase as usize] += 1;
            }
        }
        if self.active_is_bip() && self.rng.gen_range(0..self.epsilon_inv) != 0 {
            self.chain.insert_lru(page);
        } else {
            self.chain.insert_mru(page);
        }
        self.epoch_faults += 1;
        if self.epoch_faults >= self.epoch_len {
            self.advance_epoch();
        }
        FaultOutcome::default()
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.stats.selections += 1;
        let victim = self.chain.pop_lru()?;
        self.remember(victim);
        Some(victim)
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::replay;

    #[test]
    fn bip_retains_working_set_under_thrash() {
        // Cyclic sweep: BIP must beat always-miss because most insertions
        // go to the LRU side, preserving a resident core.
        let refs: Vec<u64> = (0..40).cycle().take(40 * 10).collect();
        let faults = replay(&mut Bip::with_rate(32, 7), &refs, 30);
        assert!(
            faults < 40 * 10,
            "BIP should not miss every reference, got {faults}"
        );
    }

    #[test]
    fn bip_lru_side_insertion_is_immediate_victim() {
        let mut bip = Bip::with_rate(u32::MAX, 3); // never MRU
        bip.on_fault(PageId(1), 0);
        bip.on_fault(PageId(2), 1);
        bip.on_walk_hit(PageId(2));
        // 1 was inserted at LRU side earlier but 2 was touched to MRU;
        // next insertion goes to LRU side and is the first victim.
        bip.on_fault(PageId(3), 2);
        assert_eq!(bip.select_victim(), Some(PageId(3)));
    }

    #[test]
    fn bip_hit_promotes_to_mru() {
        let mut bip = Bip::with_rate(u32::MAX, 3);
        bip.on_fault(PageId(1), 0);
        bip.on_fault(PageId(2), 1);
        bip.on_walk_hit(PageId(1));
        assert_eq!(bip.select_victim(), Some(PageId(2)));
    }

    #[test]
    fn dip_completes_and_respects_residency() {
        let refs: Vec<u64> = (0..50).cycle().take(1500).collect();
        let faults = replay(&mut Dip::new(), &refs, 32);
        assert!(faults >= 50);
        assert!(faults <= 1500);
    }

    #[test]
    fn dip_beats_pure_lru_on_thrash() {
        let refs: Vec<u64> = (0..40).cycle().take(40 * 30).collect();
        let lru_faults = replay(&mut crate::Lru::new(), &refs, 30);
        let dip_faults = replay(&mut Dip::new(), &refs, 30);
        assert!(
            dip_faults < lru_faults,
            "DIP {dip_faults} should beat LRU {lru_faults} on a cyclic sweep"
        );
    }

    #[test]
    fn dip_matches_lru_on_friendly_workloads() {
        let refs: Vec<u64> = (0..8).cycle().take(400).collect();
        let faults = replay(&mut Dip::new(), &refs, 16);
        assert_eq!(faults, 8, "working set fits: compulsory faults only");
    }
}
