//! WSClock (Carr & Hennessy, SOSP'81), cited in Section VI-B: CLOCK
//! augmented with working-set ages. A page whose time since last use
//! exceeds the working-set window `tau` is outside the working set and is
//! evicted; referenced pages update their last-use time and get a second
//! chance.
//!
//! Virtual time advances with every page-walk event the policy observes
//! (hits and faults), standing in for process virtual time.

use std::collections::HashMap;
use uvm_types::{PageId, PolicyStats};

use crate::{EvictionPolicy, FaultOutcome};

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    page: PageId,
    prev: usize,
    next: usize,
    referenced: bool,
    last_use: u64,
}

/// WSClock configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WsClockConfig {
    /// Working-set window in virtual-time units (page-walk events).
    pub tau: u64,
}

impl Default for WsClockConfig {
    fn default() -> Self {
        WsClockConfig { tau: 2048 }
    }
}

/// The WSClock eviction policy.
///
/// # Examples
///
/// ```
/// use uvm_policies::{EvictionPolicy, WsClock, WsClockConfig};
/// use uvm_types::PageId;
///
/// let mut ws = WsClock::new(WsClockConfig { tau: 4 });
/// ws.on_fault(PageId(1), 0);
/// ws.on_fault(PageId(2), 1);
/// ws.on_walk_hit(PageId(1));
/// assert_eq!(ws.select_victim(), Some(PageId(2)));
/// ```
#[derive(Debug)]
pub struct WsClock {
    cfg: WsClockConfig,
    nodes: Vec<Node>,
    free: Vec<usize>,
    map: HashMap<PageId, usize>,
    hand: usize,
    vtime: u64,
    stats: PolicyStats,
}

impl WsClock {
    /// Creates an empty WSClock policy.
    pub fn new(cfg: WsClockConfig) -> Self {
        WsClock {
            cfg,
            nodes: Vec::new(),
            free: Vec::new(),
            map: HashMap::new(),
            hand: NIL,
            vtime: 0,
            stats: PolicyStats::default(),
        }
    }

    /// Number of pages the policy believes are resident.
    pub fn resident_len(&self) -> usize {
        self.map.len()
    }

    fn insert_behind_hand(&mut self, page: PageId) {
        let node = Node {
            page,
            prev: NIL,
            next: NIL,
            referenced: false,
            last_use: self.vtime,
        };
        let idx = if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        self.map.insert(page, idx);
        if self.hand == NIL {
            self.nodes[idx].prev = idx;
            self.nodes[idx].next = idx;
            self.hand = idx;
        } else {
            let at = self.hand;
            let prev = self.nodes[at].prev;
            self.nodes[idx].prev = prev;
            self.nodes[idx].next = at;
            self.nodes[prev].next = idx;
            self.nodes[at].prev = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let next = self.nodes[idx].next;
        if next == idx {
            self.hand = NIL;
        } else {
            let prev = self.nodes[idx].prev;
            self.nodes[prev].next = next;
            self.nodes[next].prev = prev;
            if self.hand == idx {
                self.hand = next;
            }
        }
        self.free.push(idx);
    }
}

impl EvictionPolicy for WsClock {
    fn name(&self) -> String {
        "WSClock".to_string()
    }

    fn on_walk_hit(&mut self, page: PageId) {
        self.vtime += 1;
        if let Some(&idx) = self.map.get(&page) {
            self.nodes[idx].referenced = true;
        }
    }

    fn on_fault(&mut self, page: PageId, _fault_num: u64) -> FaultOutcome {
        self.vtime += 1;
        if !self.map.contains_key(&page) {
            self.insert_behind_hand(page);
        }
        FaultOutcome::default()
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.stats.selections += 1;
        if self.map.is_empty() {
            return None;
        }
        let n = self.map.len();
        // First sweep: prefer pages outside the working set.
        let mut oldest: Option<(u64, usize)> = None;
        for _ in 0..n {
            let idx = self.hand;
            self.hand = self.nodes[idx].next;
            let node = &mut self.nodes[idx];
            if node.referenced {
                node.referenced = false;
                node.last_use = self.vtime;
                continue;
            }
            let age = self.vtime.saturating_sub(node.last_use);
            if age > self.cfg.tau {
                let victim = node.page;
                self.map.remove(&victim);
                self.unlink(idx);
                return Some(victim);
            }
            if oldest.map(|(lu, _)| node.last_use < lu).unwrap_or(true) {
                oldest = Some((node.last_use, idx));
            }
        }
        // Whole ring inside the working set: evict the oldest page (the
        // WSClock fallback when no page ages out).
        let (_, idx) = oldest.or({
            // Every page was referenced this sweep; take the hand's page.
            Some((0, self.hand))
        })?;
        let victim = self.nodes[idx].page;
        self.map.remove(&victim);
        self.unlink(idx);
        Some(victim)
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::replay;

    #[test]
    fn ages_out_pages_beyond_tau() {
        let mut ws = WsClock::new(WsClockConfig { tau: 3 });
        ws.on_fault(PageId(1), 0); // vtime 1, last_use 1... inserted at 0
        for p in 10..20u64 {
            ws.on_fault(PageId(p), p); // vtime advances well past tau
            ws.on_walk_hit(PageId(p));
        }
        // Page 1 has age >> tau and no reference bit: first victim.
        assert_eq!(ws.select_victim(), Some(PageId(1)));
    }

    #[test]
    fn referenced_pages_get_second_chance() {
        let mut ws = WsClock::new(WsClockConfig { tau: 2 });
        ws.on_fault(PageId(1), 0);
        ws.on_fault(PageId(2), 1);
        ws.on_walk_hit(PageId(1));
        let v = ws.select_victim().unwrap();
        assert_eq!(v, PageId(2));
        assert_eq!(ws.resident_len(), 1);
    }

    #[test]
    fn falls_back_to_oldest_when_all_in_working_set() {
        let mut ws = WsClock::new(WsClockConfig { tau: 1_000_000 });
        for p in 0..5u64 {
            ws.on_fault(PageId(p), p);
        }
        // Nothing aged out; the oldest last-use (page 0) is evicted.
        assert_eq!(ws.select_victim(), Some(PageId(0)));
    }

    #[test]
    fn drains_completely_and_reuses_slots() {
        let mut ws = WsClock::new(WsClockConfig::default());
        for round in 0..3 {
            for p in 0..6u64 {
                ws.on_fault(PageId(100 * round + p), p);
            }
            let mut seen = std::collections::HashSet::new();
            for _ in 0..6 {
                assert!(seen.insert(ws.select_victim().unwrap()));
            }
            assert_eq!(ws.select_victim(), None);
        }
    }

    #[test]
    fn working_set_within_capacity_hits() {
        let refs: Vec<u64> = (0..6).cycle().take(120).collect();
        let faults = replay(&mut WsClock::new(WsClockConfig::default()), &refs, 8);
        assert_eq!(faults, 6);
    }

    #[test]
    fn thrashing_behaviour_matches_clock_family() {
        // On a cyclic sweep beyond capacity, WSClock inherits the CLOCK
        // family's thrashing (the weakness the paper points out).
        let refs: Vec<u64> = (0..12).cycle().take(60).collect();
        let faults = replay(&mut WsClock::new(WsClockConfig { tau: 4 }), &refs, 8);
        assert_eq!(faults, 60);
    }
}
