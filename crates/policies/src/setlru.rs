//! LRU at page-set granularity: a control policy isolating one HPE design
//! ingredient. Like HPE it manages a chain of page *sets* (reducing chain
//! length and exploiting spatial locality) and evicts a set's pages in
//! address order — but it has no partitions, no counters, no
//! classification, and no adjustment. Comparing SetLru to both LRU and
//! HPE separates "set granularity" from "the rest of HPE".

use std::collections::HashMap;
use uvm_types::{PageId, PageSetId, PolicyStats};

use crate::chain::RecencyChain;
use crate::{EvictionPolicy, FaultOutcome};

/// LRU over page sets; victims are the LRU set's resident pages in
/// address order.
///
/// # Examples
///
/// ```
/// use uvm_policies::{EvictionPolicy, SetLru};
/// use uvm_types::PageId;
///
/// let mut p = SetLru::new(4); // 16-page sets
/// p.on_fault(PageId(0x10), 0);  // set 1
/// p.on_fault(PageId(0x25), 1);  // set 2
/// p.on_walk_hit(PageId(0x10));  // set 1 becomes MRU
/// assert_eq!(p.select_victim(), Some(PageId(0x25)));
/// ```
#[derive(Debug)]
pub struct SetLru {
    set_shift: u32,
    chain: RecencyChain<PageSetId>,
    resident: HashMap<PageSetId, u64>,
    stats: PolicyStats,
}

impl SetLru {
    /// Creates the policy for page sets of `2^set_shift` pages.
    ///
    /// # Panics
    ///
    /// Panics if `set_shift > 6` (the resident bitmask is 64 bits wide).
    pub fn new(set_shift: u32) -> Self {
        assert!(set_shift <= 6, "set_shift must be at most 6");
        SetLru {
            set_shift,
            chain: RecencyChain::new(),
            resident: HashMap::new(),
            stats: PolicyStats::default(),
        }
    }

    /// Number of page sets currently tracked.
    pub fn set_count(&self) -> usize {
        self.chain.len()
    }

    /// Number of resident pages tracked.
    pub fn resident_len(&self) -> usize {
        self.resident
            .values() // lint:allow(hash-iteration) — commutative popcount sum
            .map(|m| m.count_ones() as usize)
            .sum()
    }
}

impl EvictionPolicy for SetLru {
    fn name(&self) -> String {
        format!("SetLRU({})", 1u32 << self.set_shift)
    }

    fn on_walk_hit(&mut self, page: PageId) {
        let set = page.page_set(self.set_shift);
        self.chain.touch(&set);
    }

    fn on_fault(&mut self, page: PageId, _fault_num: u64) -> FaultOutcome {
        let set = page.page_set(self.set_shift);
        let mask = 1u64 << page.set_offset(self.set_shift);
        *self.resident.entry(set).or_insert(0) |= mask;
        self.chain.insert_mru(set);
        FaultOutcome::default()
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.stats.selections += 1;
        let set = *self.chain.lru()?;
        let mask = self
            .resident
            .get_mut(&set)
            .expect("chained set has a resident mask"); // lint:allow(unwrap) — chain and resident are kept in lockstep
        debug_assert_ne!(*mask, 0, "chained set has no resident pages");
        let offset = mask.trailing_zeros();
        *mask &= !(1u64 << offset);
        if *mask == 0 {
            self.resident.remove(&set);
            self.chain.remove(&set);
        }
        Some(set.page_at(self.set_shift, offset))
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::replay;

    #[test]
    fn evicts_lru_set_in_address_order() {
        let mut p = SetLru::new(2); // 4-page sets
        for i in 0..4u64 {
            p.on_fault(PageId(i), i); // set 0
        }
        for i in 4..6u64 {
            p.on_fault(PageId(i), i); // set 1
        }
        p.on_walk_hit(PageId(5)); // set 1 MRU; set 0 is LRU
        for i in 0..4u64 {
            assert_eq!(p.select_victim(), Some(PageId(i)));
        }
        // Set 0 exhausted and removed; set 1 next.
        assert_eq!(p.select_victim(), Some(PageId(4)));
        assert_eq!(p.select_victim(), Some(PageId(5)));
        assert_eq!(p.select_victim(), None);
        assert_eq!(p.set_count(), 0);
    }

    #[test]
    fn hit_refreshes_whole_set() {
        let mut p = SetLru::new(2);
        p.on_fault(PageId(0), 0); // set 0
        p.on_fault(PageId(4), 1); // set 1
        p.on_walk_hit(PageId(1)); // set 0 (different page, same set)
        assert_eq!(p.select_victim(), Some(PageId(4)));
    }

    #[test]
    fn degenerate_shift_zero_is_page_lru() {
        let refs: Vec<u64> = (0..20).cycle().take(100).collect();
        let set_faults = replay(&mut SetLru::new(0), &refs, 12);
        let lru_faults = replay(&mut crate::Lru::new(), &refs, 12);
        assert_eq!(set_faults, lru_faults);
    }

    #[test]
    fn resident_accounting_matches_driver() {
        use uvm_util::Rng;
        let mut rng = Rng::seed_from_u64(3);
        let refs: Vec<u64> = (0..1500).map(|_| rng.gen_range(0u64..96)).collect();
        let mut p = SetLru::new(3);
        let faults = replay(&mut p, &refs, 40);
        assert!(faults >= 96);
        assert_eq!(p.resident_len(), 40);
    }

    #[test]
    #[should_panic(expected = "set_shift must be at most 6")]
    fn rejects_oversized_shift() {
        SetLru::new(7);
    }
}
