//! Page-level LFU (discussed in Section VI-B: frequency alone is not
//! enough for unified memory, which this implementation lets you verify).

use std::collections::{BTreeSet, HashMap};
use uvm_types::{PageId, PolicyStats};

use crate::{EvictionPolicy, FaultOutcome};

/// Least-frequently-used eviction with LRU tie-breaking.
///
/// Frequency counts survive across eviction? No — like the paper's other
/// online baselines, metadata is dropped on eviction, so a re-migrated page
/// starts cold.
///
/// # Examples
///
/// ```
/// use uvm_policies::{EvictionPolicy, Lfu};
/// use uvm_types::PageId;
///
/// let mut lfu = Lfu::new();
/// lfu.on_fault(PageId(1), 0);
/// lfu.on_fault(PageId(2), 1);
/// lfu.on_walk_hit(PageId(1));
/// assert_eq!(lfu.select_victim(), Some(PageId(2)));
/// ```
#[derive(Debug, Default)]
pub struct Lfu {
    // Ordered by (frequency, last-touch stamp): the minimum is the LFU page,
    // oldest first among ties.
    order: BTreeSet<(u64, u64, PageId)>,
    state: HashMap<PageId, (u64, u64)>,
    clock: u64,
    stats: PolicyStats,
}

impl Lfu {
    /// Creates an empty LFU policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages the policy believes are resident.
    pub fn resident_len(&self) -> usize {
        self.state.len()
    }

    fn bump(&mut self, page: PageId) {
        self.clock += 1;
        if let Some(&(freq, stamp)) = self.state.get(&page) {
            self.order.remove(&(freq, stamp, page));
            let entry = (freq + 1, self.clock);
            self.state.insert(page, entry);
            self.order.insert((entry.0, entry.1, page));
        } else {
            let entry = (1, self.clock);
            self.state.insert(page, entry);
            self.order.insert((entry.0, entry.1, page));
        }
    }
}

impl EvictionPolicy for Lfu {
    fn name(&self) -> String {
        "LFU".to_string()
    }

    fn on_walk_hit(&mut self, page: PageId) {
        if self.state.contains_key(&page) {
            self.bump(page);
        }
    }

    fn on_fault(&mut self, page: PageId, _fault_num: u64) -> FaultOutcome {
        self.bump(page);
        FaultOutcome::default()
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.stats.selections += 1;
        let &(freq, stamp, page) = self.order.iter().next()?;
        self.order.remove(&(freq, stamp, page));
        self.state.remove(&page);
        Some(page)
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_lowest_frequency() {
        let mut lfu = Lfu::new();
        for p in 0..3u64 {
            lfu.on_fault(PageId(p), p);
        }
        lfu.on_walk_hit(PageId(0));
        lfu.on_walk_hit(PageId(0));
        lfu.on_walk_hit(PageId(2));
        // Frequencies: 0 -> 3, 1 -> 1, 2 -> 2.
        assert_eq!(lfu.select_victim(), Some(PageId(1)));
        assert_eq!(lfu.select_victim(), Some(PageId(2)));
        assert_eq!(lfu.select_victim(), Some(PageId(0)));
        assert_eq!(lfu.select_victim(), None);
    }

    #[test]
    fn ties_broken_by_recency_oldest_first() {
        let mut lfu = Lfu::new();
        lfu.on_fault(PageId(10), 0);
        lfu.on_fault(PageId(11), 1);
        // Both frequency 1; 10 was touched earlier.
        assert_eq!(lfu.select_victim(), Some(PageId(10)));
    }

    #[test]
    fn metadata_dropped_on_eviction() {
        let mut lfu = Lfu::new();
        lfu.on_fault(PageId(1), 0);
        for _ in 0..10 {
            lfu.on_walk_hit(PageId(1));
        }
        assert_eq!(lfu.select_victim(), Some(PageId(1)));
        // Re-faulted page starts with frequency 1 again.
        lfu.on_fault(PageId(1), 1);
        lfu.on_fault(PageId(2), 2);
        lfu.on_walk_hit(PageId(2));
        assert_eq!(lfu.select_victim(), Some(PageId(1)));
    }

    #[test]
    fn hit_on_absent_page_is_ignored() {
        let mut lfu = Lfu::new();
        lfu.on_walk_hit(PageId(9));
        assert_eq!(lfu.resident_len(), 0);
    }
}
