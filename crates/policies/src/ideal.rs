//! The offline "Ideal" policy (Section III): a Belady-MIN-like upper bound
//! that evicts the resident page whose next reference is farthest in the
//! future, using an oracle over the trace order.

use std::collections::{BTreeSet, HashMap, VecDeque};
use uvm_types::{PageId, PolicyStats};

use crate::{EvictionPolicy, FaultOutcome};

/// Never referenced again.
const NEVER: u64 = u64::MAX;

/// Per-page queues of future reference positions, consumed as the
/// simulation executes accesses.
///
/// Positions come from the deterministic round-robin interleave of the
/// per-warp streams (`uvm_workloads::Trace::round_robin_interleave`), the
/// standard trace-order approximation of MIN for a parallel machine.
///
/// # Examples
///
/// ```
/// use uvm_policies::NextUseOracle;
/// use uvm_types::PageId;
///
/// let order = [PageId(1), PageId(2), PageId(1)];
/// let mut oracle = NextUseOracle::from_order(order);
/// assert_eq!(oracle.next_use(PageId(1)), 0);
/// oracle.advance(PageId(1));
/// assert_eq!(oracle.next_use(PageId(1)), 2);
/// oracle.advance(PageId(1));
/// assert_eq!(oracle.next_use(PageId(1)), u64::MAX); // never again
/// ```
#[derive(Debug, Clone, Default)]
pub struct NextUseOracle {
    queues: HashMap<PageId, VecDeque<u64>>,
}

impl NextUseOracle {
    /// Builds the oracle from a global reference order.
    pub fn from_order<I: IntoIterator<Item = PageId>>(order: I) -> Self {
        let mut queues: HashMap<PageId, VecDeque<u64>> = HashMap::new();
        for (i, page) in order.into_iter().enumerate() {
            queues.entry(page).or_default().push_back(i as u64);
        }
        NextUseOracle { queues }
    }

    /// The position of the next (unconsumed) reference to `page`, or
    /// `u64::MAX` if it is never referenced again.
    pub fn next_use(&self, page: PageId) -> u64 {
        self.queues
            .get(&page)
            .and_then(|q| q.front().copied())
            .unwrap_or(NEVER)
    }

    /// Consumes one reference to `page` (call when the access executes).
    pub fn advance(&mut self, page: PageId) {
        if let Some(q) = self.queues.get_mut(&page) {
            q.pop_front();
            if q.is_empty() {
                self.queues.remove(&page);
            }
        }
    }
}

/// The offline Belady-MIN-like policy the paper normalizes against.
///
/// # Examples
///
/// ```
/// use uvm_policies::{EvictionPolicy, Ideal, NextUseOracle};
/// use uvm_types::PageId;
///
/// let order: Vec<PageId> = [1, 2, 3, 1, 2].map(PageId).to_vec();
/// let mut ideal = Ideal::new(NextUseOracle::from_order(order));
/// for (i, p) in [1u64, 2, 3].into_iter().enumerate() {
///     ideal.on_access(PageId(p));
///     ideal.on_fault(PageId(p), i as u64);
/// }
/// // Next uses: 1 -> pos 3, 2 -> pos 4, 3 -> never. Evict 3.
/// assert_eq!(ideal.select_victim(), Some(PageId(3)));
/// ```
#[derive(Debug)]
pub struct Ideal {
    oracle: NextUseOracle,
    resident: HashMap<PageId, u64>,
    by_next_use: BTreeSet<(u64, PageId)>,
    stats: PolicyStats,
}

impl Ideal {
    /// Creates the policy around a prepared oracle.
    pub fn new(oracle: NextUseOracle) -> Self {
        Ideal {
            oracle,
            resident: HashMap::new(),
            by_next_use: BTreeSet::new(),
            stats: PolicyStats::default(),
        }
    }

    /// Number of pages the policy believes are resident.
    pub fn resident_len(&self) -> usize {
        self.resident.len()
    }

    fn reposition(&mut self, page: PageId) {
        if let Some(&old) = self.resident.get(&page) {
            let new = self.oracle.next_use(page);
            if new != old {
                self.by_next_use.remove(&(old, page));
                self.by_next_use.insert((new, page));
                self.resident.insert(page, new);
            }
        }
    }
}

impl EvictionPolicy for Ideal {
    fn name(&self) -> String {
        "Ideal".to_string()
    }

    fn on_access(&mut self, page: PageId) {
        self.oracle.advance(page);
        self.reposition(page);
    }

    fn on_fault(&mut self, page: PageId, _fault_num: u64) -> FaultOutcome {
        if !self.resident.contains_key(&page) {
            let next = self.oracle.next_use(page);
            self.resident.insert(page, next);
            self.by_next_use.insert((next, page));
        }
        FaultOutcome::default()
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.stats.selections += 1;
        let &(next, page) = self.by_next_use.iter().next_back()?;
        self.by_next_use.remove(&(next, page));
        self.resident.remove(&page);
        Some(page)
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives Ideal exactly as the simulator would: on_access before the
    /// residency check, victim before insertion.
    fn replay_ideal(refs: &[u64], capacity: usize) -> u64 {
        let order: Vec<PageId> = refs.iter().map(|&r| PageId(r)).collect();
        let mut ideal = Ideal::new(NextUseOracle::from_order(order));
        let mut resident = std::collections::HashSet::new();
        let mut faults = 0u64;
        for &r in refs {
            let page = PageId(r);
            ideal.on_access(page);
            if !resident.contains(&page) {
                if resident.len() == capacity {
                    let v = ideal.select_victim().unwrap();
                    assert!(resident.remove(&v));
                }
                ideal.on_fault(page, faults);
                resident.insert(page);
                faults += 1;
            }
        }
        faults
    }

    #[test]
    fn matches_textbook_belady_example() {
        // Classic example: references 1..5 pattern with 3 frames.
        let refs = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
        // Belady's MIN yields 7 faults for this sequence with 3 frames.
        assert_eq!(replay_ideal(&refs, 3), 7);
    }

    #[test]
    fn cyclic_sweep_achieves_min_misses() {
        // k pages, capacity m: MIN misses k + (sweeps-1) * (k - m) times.
        let k = 10u64;
        let m = 7usize;
        let sweeps = 5;
        let refs: Vec<u64> = (0..k).cycle().take((k as usize) * sweeps).collect();
        let expected = k + (sweeps as u64 - 1) * (k - m as u64);
        assert_eq!(replay_ideal(&refs, m), expected);
    }

    #[test]
    fn ideal_never_worse_than_lru() {
        use crate::test_util::replay;
        use crate::Lru;
        use uvm_util::Rng;

        let mut rng = Rng::seed_from_u64(11);
        for trial in 0..5 {
            let refs: Vec<u64> = (0..600).map(|_| rng.gen_range(0u64..40)).collect();
            let cap = 8 + trial * 4;
            let ideal_faults = replay_ideal(&refs, cap);
            let lru_faults = replay(&mut Lru::new(), &refs, cap);
            assert!(
                ideal_faults <= lru_faults,
                "trial {trial}: ideal {ideal_faults} > lru {lru_faults}"
            );
        }
    }

    #[test]
    fn oracle_handles_unknown_pages() {
        let oracle = NextUseOracle::from_order([PageId(1)]);
        assert_eq!(oracle.next_use(PageId(99)), u64::MAX);
        let mut o = oracle.clone();
        o.advance(PageId(99)); // no-op, no panic
        assert_eq!(o.next_use(PageId(1)), 0);
    }

    #[test]
    fn evicts_never_used_again_first() {
        let refs = [1, 2, 3, 1, 2, 4, 1, 2];
        // Page 3 is dead after position 2; with capacity 3, page 4's fault
        // must evict page 3 (the only dead page).
        let faults = replay_ideal(&refs, 3);
        assert_eq!(faults, 4); // compulsory only: 1,2,3,4
    }

    #[test]
    fn victim_none_when_empty() {
        let mut ideal = Ideal::new(NextUseOracle::default());
        assert_eq!(ideal.select_victim(), None);
    }
}
