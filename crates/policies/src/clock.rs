//! The classic CLOCK algorithm (second-chance), the common in-practice
//! LRU approximation (Section VI-B). Inherits LRU's weakness on thrashing
//! patterns, which this implementation lets you measure directly.

use std::collections::HashMap;
use uvm_types::{PageId, PolicyStats};

use crate::{EvictionPolicy, FaultOutcome};

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    page: PageId,
    prev: usize,
    next: usize,
    referenced: bool,
}

/// CLOCK / second-chance eviction.
///
/// Pages sit on a circular list; a hand sweeps it, clearing reference bits
/// and evicting the first unreferenced page it meets.
///
/// # Examples
///
/// ```
/// use uvm_policies::{Clock, EvictionPolicy};
/// use uvm_types::PageId;
///
/// let mut clock = Clock::new();
/// clock.on_fault(PageId(1), 0);
/// clock.on_fault(PageId(2), 1);
/// clock.on_walk_hit(PageId(1));
/// assert_eq!(clock.select_victim(), Some(PageId(2)));
/// ```
#[derive(Debug, Default)]
pub struct Clock {
    nodes: Vec<Node>,
    free: Vec<usize>,
    map: HashMap<PageId, usize>,
    hand: usize,
    stats: PolicyStats,
}

impl Clock {
    /// Creates an empty CLOCK policy.
    pub fn new() -> Self {
        Clock {
            nodes: Vec::new(),
            free: Vec::new(),
            map: HashMap::new(),
            hand: NIL,
            stats: PolicyStats::default(),
        }
    }

    /// Number of pages the policy believes are resident.
    pub fn resident_len(&self) -> usize {
        self.map.len()
    }

    fn insert_behind_hand(&mut self, page: PageId) {
        let node = Node {
            page,
            prev: NIL,
            next: NIL,
            referenced: false,
        };
        let idx = if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        self.map.insert(page, idx);
        if self.hand == NIL {
            self.nodes[idx].prev = idx;
            self.nodes[idx].next = idx;
            self.hand = idx;
        } else {
            // Insert just behind the hand (the "newest" position).
            let at = self.hand;
            let prev = self.nodes[at].prev;
            self.nodes[idx].prev = prev;
            self.nodes[idx].next = at;
            self.nodes[prev].next = idx;
            self.nodes[at].prev = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let next = self.nodes[idx].next;
        if next == idx {
            self.hand = NIL;
        } else {
            let prev = self.nodes[idx].prev;
            self.nodes[prev].next = next;
            self.nodes[next].prev = prev;
            if self.hand == idx {
                self.hand = next;
            }
        }
        self.free.push(idx);
    }
}

impl EvictionPolicy for Clock {
    fn name(&self) -> String {
        "CLOCK".to_string()
    }

    fn on_walk_hit(&mut self, page: PageId) {
        if let Some(&idx) = self.map.get(&page) {
            self.nodes[idx].referenced = true;
        }
    }

    fn on_fault(&mut self, page: PageId, _fault_num: u64) -> FaultOutcome {
        if !self.map.contains_key(&page) {
            self.insert_behind_hand(page);
        }
        FaultOutcome::default()
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.stats.selections += 1;
        if self.map.is_empty() {
            return None;
        }
        loop {
            let idx = self.hand;
            if self.nodes[idx].referenced {
                self.nodes[idx].referenced = false;
                self.hand = self.nodes[idx].next;
            } else {
                let victim = self.nodes[idx].page;
                self.map.remove(&victim);
                self.unlink(idx);
                return Some(victim);
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::replay;

    #[test]
    fn second_chance_spares_referenced_pages() {
        let mut c = Clock::new();
        for p in 0..4u64 {
            c.on_fault(PageId(p), p);
        }
        c.on_walk_hit(PageId(0));
        c.on_walk_hit(PageId(1));
        // Hand starts at 0: 0 and 1 get second chances, 2 is evicted.
        assert_eq!(c.select_victim(), Some(PageId(2)));
        assert_eq!(c.select_victim(), Some(PageId(3)));
        assert_eq!(c.resident_len(), 2);
    }

    #[test]
    fn cyclic_sweep_thrashes_like_lru() {
        let refs: Vec<u64> = (0..10).cycle().take(40).collect();
        let faults = replay(&mut Clock::new(), &refs, 8);
        assert_eq!(faults, 40, "CLOCK inherits LRU's thrashing");
    }

    #[test]
    fn working_set_within_capacity_hits() {
        let refs: Vec<u64> = (0..6).cycle().take(60).collect();
        let faults = replay(&mut Clock::new(), &refs, 8);
        assert_eq!(faults, 6);
    }

    #[test]
    fn drains_completely() {
        let mut c = Clock::new();
        for p in 0..5u64 {
            c.on_fault(PageId(p), p);
            c.on_walk_hit(PageId(p));
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5 {
            assert!(seen.insert(c.select_victim().unwrap()));
        }
        assert_eq!(c.select_victim(), None);
        // Reinsertion after a full drain works.
        c.on_fault(PageId(9), 9);
        assert_eq!(c.select_victim(), Some(PageId(9)));
    }

    #[test]
    fn duplicate_fault_is_idempotent() {
        let mut c = Clock::new();
        c.on_fault(PageId(1), 0);
        c.on_fault(PageId(1), 1);
        assert_eq!(c.resident_len(), 1);
    }
}
