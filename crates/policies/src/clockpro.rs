//! CLOCK-Pro (Jiang, Chen, Zhang; USENIX ATC'05), as configured by the
//! paper: the cold-page allocation `m_c` is *fixed* at 128 pages rather
//! than adapted, which the paper found necessary to alleviate instant
//! thrashing (Section V-B).
//!
//! All page metadata lives on one circular list. Three hands sweep it:
//!
//! * **HAND_cold** — the eviction hand: finds the oldest resident cold
//!   page; referenced cold pages in their test period are promoted to hot,
//!   referenced cold pages past their test period get a fresh test period,
//!   unreferenced cold pages are evicted (their metadata remains as a
//!   non-resident test entry if the test period is still open).
//! * **HAND_hot** — demotes unreferenced hot pages to cold, and terminates
//!   the test period of every cold or non-resident entry it passes.
//! * **HAND_test** — bounds the number of non-resident test entries to the
//!   number of resident pages.
//!
//! A page that faults again while its non-resident test entry is alive is
//! inserted directly as *hot* (its reuse distance is proven shorter than a
//! hot page's).

use std::collections::HashMap;
use uvm_types::{PageId, PolicyStats};

use crate::{EvictionPolicy, FaultOutcome};

const NIL: usize = usize::MAX;

/// CLOCK-Pro configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockProConfig {
    /// Memory allocation for cold pages, in pages. The paper fixes this to
    /// 128 instead of using CLOCK-Pro's adaptive sizing.
    pub m_c: usize,
}

impl Default for ClockProConfig {
    fn default() -> Self {
        ClockProConfig { m_c: 128 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Hot,
    /// Resident cold page inside its test period.
    ColdInTest,
    /// Resident cold page past its test period.
    Cold,
    /// Evicted page whose test period is still open.
    NonResident,
}

#[derive(Debug, Clone)]
struct Node {
    page: PageId,
    prev: usize,
    next: usize,
    status: Status,
    referenced: bool,
}

/// The CLOCK-Pro eviction policy.
///
/// # Examples
///
/// ```
/// use uvm_policies::{ClockPro, ClockProConfig, EvictionPolicy};
/// use uvm_types::PageId;
///
/// let mut cp = ClockPro::new(ClockProConfig { m_c: 2 });
/// cp.on_fault(PageId(1), 0);
/// cp.on_fault(PageId(2), 1);
/// cp.on_walk_hit(PageId(1));
/// // Page 2 is the oldest unreferenced cold page.
/// assert_eq!(cp.select_victim(), Some(PageId(2)));
/// ```
#[derive(Debug)]
pub struct ClockPro {
    cfg: ClockProConfig,
    nodes: Vec<Node>,
    free: Vec<usize>,
    map: HashMap<PageId, usize>,
    hand_hot: usize,
    hand_cold: usize,
    hand_test: usize,
    hot: usize,
    cold_res: usize,
    cold_nonres: usize,
    stats: PolicyStats,
}

impl ClockPro {
    /// Creates a CLOCK-Pro policy.
    pub fn new(cfg: ClockProConfig) -> Self {
        ClockPro {
            cfg,
            nodes: Vec::new(),
            free: Vec::new(),
            map: HashMap::new(),
            hand_hot: NIL,
            hand_cold: NIL,
            hand_test: NIL,
            hot: 0,
            cold_res: 0,
            cold_nonres: 0,
            stats: PolicyStats::default(),
        }
    }

    /// Number of pages the policy believes are resident.
    pub fn resident_len(&self) -> usize {
        self.hot + self.cold_res
    }

    /// Number of hot pages (diagnostic accessor).
    pub fn hot_len(&self) -> usize {
        self.hot
    }

    /// Number of non-resident test entries (diagnostic accessor).
    pub fn nonresident_len(&self) -> usize {
        self.cold_nonres
    }

    fn target_hot(&self) -> usize {
        self.resident_len().saturating_sub(self.cfg.m_c)
    }

    // ----- ring plumbing -------------------------------------------------

    fn alloc(&mut self, page: PageId, status: Status) -> usize {
        let node = Node {
            page,
            prev: NIL,
            next: NIL,
            status,
            referenced: false,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    /// Inserts `idx` at the list head: immediately behind `hand_hot`
    /// (where CLOCK-Pro places new pages).
    fn link_at_head(&mut self, idx: usize) {
        if self.hand_hot == NIL {
            // Empty ring: self-link and aim every hand here.
            self.nodes[idx].prev = idx;
            self.nodes[idx].next = idx;
            self.hand_hot = idx;
            self.hand_cold = idx;
            self.hand_test = idx;
            return;
        }
        let at = self.hand_hot;
        let prev = self.nodes[at].prev;
        self.nodes[idx].prev = prev;
        self.nodes[idx].next = at;
        self.nodes[prev].next = idx;
        self.nodes[at].prev = idx;
    }

    /// Unlinks `idx` from the ring, advancing any hand that points at it.
    fn unlink(&mut self, idx: usize) {
        let next = self.nodes[idx].next;
        if next == idx {
            // Last node.
            self.hand_hot = NIL;
            self.hand_cold = NIL;
            self.hand_test = NIL;
        } else {
            let prev = self.nodes[idx].prev;
            self.nodes[prev].next = next;
            self.nodes[next].prev = prev;
            if self.hand_hot == idx {
                self.hand_hot = next;
            }
            if self.hand_cold == idx {
                self.hand_cold = next;
            }
            if self.hand_test == idx {
                self.hand_test = next;
            }
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn release(&mut self, idx: usize) {
        self.map.remove(&self.nodes[idx].page);
        self.unlink(idx);
        self.free.push(idx);
    }

    fn move_to_head(&mut self, idx: usize) {
        self.unlink(idx);
        self.link_at_head(idx);
    }

    // ----- hands ---------------------------------------------------------

    /// Demotes one unreferenced hot page to cold (returns false if there
    /// are no hot pages). Terminates test periods it passes, as HAND_hot
    /// does in the original algorithm.
    fn run_hand_hot(&mut self) -> bool {
        if self.hot == 0 {
            return false;
        }
        loop {
            let idx = self.hand_hot;
            self.hand_hot = self.nodes[idx].next;
            match self.nodes[idx].status {
                Status::Hot => {
                    if self.nodes[idx].referenced {
                        self.nodes[idx].referenced = false;
                    } else {
                        self.nodes[idx].status = Status::Cold;
                        self.hot -= 1;
                        self.cold_res += 1;
                        return true;
                    }
                }
                Status::ColdInTest => {
                    // HAND_hot passing a cold page ends its test period.
                    self.nodes[idx].status = Status::Cold;
                }
                Status::NonResident => {
                    self.cold_nonres -= 1;
                    self.release(idx);
                }
                Status::Cold => {}
            }
        }
    }

    /// Removes one non-resident test entry (oldest first).
    fn run_hand_test(&mut self) {
        if self.cold_nonres == 0 {
            return;
        }
        loop {
            let idx = self.hand_test;
            self.hand_test = self.nodes[idx].next;
            match self.nodes[idx].status {
                Status::NonResident => {
                    self.cold_nonres -= 1;
                    self.release(idx);
                    return;
                }
                Status::ColdInTest => {
                    self.nodes[idx].status = Status::Cold;
                }
                _ => {}
            }
        }
    }

    fn promote(&mut self, idx: usize) {
        debug_assert_ne!(self.nodes[idx].status, Status::Hot);
        if self.nodes[idx].status == Status::NonResident {
            self.cold_nonres -= 1;
        } else {
            self.cold_res -= 1;
        }
        self.nodes[idx].status = Status::Hot;
        self.nodes[idx].referenced = false;
        self.hot += 1;
        self.move_to_head(idx);
        while self.hot > self.target_hot().max(1) {
            if !self.run_hand_hot() {
                break;
            }
        }
    }
}

impl EvictionPolicy for ClockPro {
    fn name(&self) -> String {
        "CLOCK-Pro".to_string()
    }

    fn on_walk_hit(&mut self, page: PageId) {
        if let Some(&idx) = self.map.get(&page) {
            if self.nodes[idx].status != Status::NonResident {
                self.nodes[idx].referenced = true;
            }
        }
    }

    fn on_fault(&mut self, page: PageId, _fault_num: u64) -> FaultOutcome {
        if let Some(&idx) = self.map.get(&page) {
            match self.nodes[idx].status {
                Status::NonResident => {
                    // Re-accessed within its test period: reuse distance is
                    // shorter than a hot page's — insert as hot.
                    self.nodes[idx].status = Status::ColdInTest;
                    self.cold_nonres -= 1;
                    self.cold_res += 1;
                    self.promote(idx);
                }
                _ => {
                    // Already resident (duplicate notification): no-op.
                }
            }
            return FaultOutcome::default();
        }
        let idx = self.alloc(page, Status::ColdInTest);
        self.map.insert(page, idx);
        self.link_at_head(idx);
        self.cold_res += 1;
        FaultOutcome::default()
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.stats.selections += 1;
        if self.resident_len() == 0 {
            return None;
        }
        loop {
            // The eviction hand only acts on resident cold pages; if all
            // resident pages are hot, demote one first.
            if self.cold_res == 0 && !self.run_hand_hot() {
                return None;
            }
            let idx = self.hand_cold;
            self.hand_cold = self.nodes[idx].next;
            match self.nodes[idx].status {
                Status::ColdInTest | Status::Cold => {
                    let in_test = self.nodes[idx].status == Status::ColdInTest;
                    if self.nodes[idx].referenced {
                        self.nodes[idx].referenced = false;
                        if in_test {
                            self.promote(idx);
                        } else {
                            // Referenced past its test period: fresh test.
                            self.nodes[idx].status = Status::ColdInTest;
                            self.move_to_head(idx);
                        }
                    } else {
                        let victim = self.nodes[idx].page;
                        self.cold_res -= 1;
                        if in_test {
                            self.nodes[idx].status = Status::NonResident;
                            self.cold_nonres += 1;
                            // Bound non-resident entries by resident count.
                            while self.cold_nonres > self.resident_len().max(1) {
                                self.run_hand_test();
                            }
                        } else {
                            self.release(idx);
                        }
                        return Some(victim);
                    }
                }
                Status::Hot | Status::NonResident => {}
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::replay;

    fn small() -> ClockPro {
        ClockPro::new(ClockProConfig { m_c: 2 })
    }

    #[test]
    fn evicts_unreferenced_cold_first() {
        let mut cp = small();
        for p in 0..3u64 {
            cp.on_fault(PageId(p), p);
        }
        cp.on_walk_hit(PageId(0));
        // 0 is referenced (promoted on sweep); oldest unreferenced is 1.
        assert_eq!(cp.select_victim(), Some(PageId(1)));
    }

    #[test]
    fn refault_in_test_period_becomes_hot() {
        let mut cp = small();
        for p in 0..4u64 {
            cp.on_fault(PageId(p), p);
        }
        let v = cp.select_victim().unwrap();
        assert_eq!(v, PageId(0));
        assert_eq!(cp.nonresident_len(), 1);
        // Page 0 faults again while its test entry is alive -> hot.
        cp.on_fault(PageId(0), 4);
        assert_eq!(cp.nonresident_len(), 0);
        assert!(cp.hot_len() >= 1);
        assert_eq!(cp.resident_len(), 4);
    }

    #[test]
    fn counts_stay_consistent_under_churn() {
        let mut cp = ClockPro::new(ClockProConfig { m_c: 8 });
        let mut resident = std::collections::HashSet::new();
        let mut fault_num = 0u64;
        for round in 0..2000u64 {
            let page = PageId(round % 64);
            if resident.contains(&page) {
                cp.on_walk_hit(page);
            } else {
                if resident.len() == 32 {
                    let v = cp.select_victim().expect("victim");
                    assert!(resident.remove(&v), "victim {v} not resident");
                }
                cp.on_fault(page, fault_num);
                fault_num += 1;
                resident.insert(page);
            }
            assert_eq!(cp.resident_len(), resident.len());
            assert!(cp.nonresident_len() <= cp.resident_len().max(1));
        }
    }

    #[test]
    fn cyclic_sweep_is_survivable() {
        // CLOCK-Pro on a cyclic sweep: with test periods, a subset becomes
        // hot and faults drop below 100%.
        let refs: Vec<u64> = (0..40).cycle().take(40 * 10).collect();
        let faults = replay(&mut ClockPro::new(ClockProConfig { m_c: 4 }), &refs, 32);
        assert!(faults < 40 * 10, "got {faults}");
        assert!(faults >= 40);
    }

    #[test]
    fn victim_none_when_empty() {
        assert_eq!(small().select_victim(), None);
    }

    #[test]
    fn all_hot_forces_demotion() {
        let mut cp = ClockPro::new(ClockProConfig { m_c: 1 });
        // Insert pages and promote them all via refault-in-test.
        for p in 0..4u64 {
            cp.on_fault(PageId(p), p);
        }
        for p in 0..3u64 {
            cp.on_walk_hit(PageId(p));
        }
        // Evictions still succeed even when most pages are hot/referenced.
        let mut evicted = std::collections::HashSet::new();
        for _ in 0..4 {
            let v = cp.select_victim().expect("victim even when hot-heavy");
            assert!(evicted.insert(v));
        }
        assert_eq!(cp.resident_len(), 0);
    }

    #[test]
    fn lru_friendly_workload_hits() {
        let mut refs: Vec<u64> = (0..8).collect();
        for _ in 0..10 {
            refs.extend(0..8);
        }
        let faults = replay(&mut ClockPro::new(ClockProConfig { m_c: 2 }), &refs, 8);
        assert_eq!(faults, 8);
    }
}
