//! ARC — adaptive replacement cache (Megiddo & Modha, FAST'03), cited by
//! the paper as the basis of CAR (Section VI-B).
//!
//! ARC partitions resident pages into a recency list T1 and a frequency
//! list T2, shadowed by ghost lists B1/B2 of recently evicted metadata.
//! Ghost hits steer the target size `p` of T1: a hit in B1 (evicted from
//! recency too early) grows `p`; a hit in B2 shrinks it. This makes ARC
//! scan-resistant — a property worth measuring against HPE's page-set
//! approach on streaming patterns.
//!
//! In the unified-memory protocol the driver (not the policy) decides when
//! to evict; ARC's `REPLACE` step runs inside
//! [`EvictionPolicy::select_victim`], and the capacity `c` is learned at
//! the first memory-full notification.

use std::collections::HashMap;
use uvm_types::{PageId, PolicyStats};

use crate::chain::RecencyChain;
use crate::{EvictionPolicy, FaultOutcome};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum List {
    T1,
    T2,
    B1,
    B2,
}

/// The ARC eviction policy.
///
/// # Examples
///
/// ```
/// use uvm_policies::{ArcPolicy, EvictionPolicy};
/// use uvm_types::PageId;
///
/// let mut arc = ArcPolicy::new();
/// arc.on_fault(PageId(1), 0);
/// arc.on_walk_hit(PageId(1)); // promoted to the frequency list
/// arc.on_fault(PageId(2), 1);
/// arc.on_memory_full();
/// // The recency list (holding page 2) is preferred for replacement.
/// assert_eq!(arc.select_victim(), Some(PageId(2)));
/// ```
#[derive(Debug, Default)]
pub struct ArcPolicy {
    t1: RecencyChain<PageId>,
    t2: RecencyChain<PageId>,
    b1: RecencyChain<PageId>,
    b2: RecencyChain<PageId>,
    which: HashMap<PageId, List>,
    /// Target size of T1; adapted on ghost hits.
    p: usize,
    /// Learned capacity (resident pages at first memory-full).
    c: Option<usize>,
    /// Set when the current fault hit in B2, biasing REPLACE toward T1.
    last_fault_from_b2: bool,
    stats: PolicyStats,
}

impl ArcPolicy {
    /// Creates an empty ARC policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages the policy believes are resident.
    pub fn resident_len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    /// Current recency-list target (diagnostics).
    pub fn p(&self) -> usize {
        self.p
    }

    fn move_to(&mut self, page: PageId, to: List) {
        if let Some(from) = self.which.insert(page, to) {
            match from {
                List::T1 => self.t1.remove(&page),
                List::T2 => self.t2.remove(&page),
                List::B1 => self.b1.remove(&page),
                List::B2 => self.b2.remove(&page),
            };
        }
        match to {
            List::T1 => self.t1.insert_mru(page),
            List::T2 => self.t2.insert_mru(page),
            List::B1 => self.b1.insert_mru(page),
            List::B2 => self.b2.insert_mru(page),
        };
    }

    fn drop_lru(&mut self, list: List) {
        let chain = match list {
            List::B1 => &mut self.b1,
            List::B2 => &mut self.b2,
            List::T1 => &mut self.t1,
            List::T2 => &mut self.t2,
        };
        if let Some(page) = chain.pop_lru() {
            self.which.remove(&page);
        }
    }

    /// Bounds the directory per ARC: `|T1|+|B1| <= c`, total `<= 2c`.
    fn trim_ghosts(&mut self) {
        let Some(c) = self.c else { return };
        if self.t1.len() + self.b1.len() > c && !self.b1.is_empty() {
            self.drop_lru(List::B1);
        }
        let total = self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len();
        if total > 2 * c && !self.b2.is_empty() {
            self.drop_lru(List::B2);
        }
    }
}

impl EvictionPolicy for ArcPolicy {
    fn name(&self) -> String {
        "ARC".to_string()
    }

    fn on_walk_hit(&mut self, page: PageId) {
        match self.which.get(&page) {
            Some(List::T1) | Some(List::T2) => self.move_to(page, List::T2),
            _ => {}
        }
    }

    fn on_memory_full(&mut self) {
        if self.c.is_none() {
            let c = self.resident_len();
            self.c = Some(c);
            self.p = self.p.min(c);
        }
    }

    fn on_fault(&mut self, page: PageId, _fault_num: u64) -> FaultOutcome {
        self.last_fault_from_b2 = false;
        match self.which.get(&page).copied() {
            Some(List::B1) => {
                // Case II: ghost hit in B1 -> grow the recency target.
                let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
                self.p = (self.p + delta).min(self.c.unwrap_or(usize::MAX));
                self.move_to(page, List::T2);
            }
            Some(List::B2) => {
                // Case III: ghost hit in B2 -> shrink the recency target.
                let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
                self.p = self.p.saturating_sub(delta);
                self.move_to(page, List::T2);
                self.last_fault_from_b2 = true;
            }
            Some(List::T1) | Some(List::T2) => {
                // Duplicate notification: treat as a hit.
                self.move_to(page, List::T2);
            }
            None => {
                // Case IV: brand-new page -> recency list.
                self.move_to(page, List::T1);
            }
        }
        self.trim_ghosts();
        FaultOutcome::default()
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.stats.selections += 1;
        // ARC's REPLACE: evict from T1 if it exceeds its target (or
        // matches it on a B2 ghost hit); otherwise from T2. The evicted
        // page's metadata moves to the matching ghost list.
        let from_t1 = !self.t1.is_empty()
            && (self.t1.len() > self.p
                || (self.last_fault_from_b2 && self.t1.len() == self.p)
                || self.t2.is_empty());
        let (victim, ghost) = if from_t1 {
            (self.t1.lru().copied()?, List::B1)
        } else {
            (self.t2.lru().copied()?, List::B2)
        };
        self.move_to(victim, ghost);
        self.trim_ghosts();
        Some(victim)
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::replay;

    #[test]
    fn new_pages_go_to_recency_list_first() {
        let mut arc = ArcPolicy::new();
        arc.on_fault(PageId(1), 0);
        arc.on_fault(PageId(2), 1);
        arc.on_walk_hit(PageId(1));
        arc.on_memory_full();
        // 2 sits in T1 (never re-referenced), 1 was promoted to T2.
        assert_eq!(arc.select_victim(), Some(PageId(2)));
        assert_eq!(arc.select_victim(), Some(PageId(1)));
        assert_eq!(arc.select_victim(), None);
    }

    #[test]
    fn ghost_hit_in_b1_grows_recency_target() {
        let mut arc = ArcPolicy::new();
        for p in 0..4u64 {
            arc.on_fault(PageId(p), p);
        }
        arc.on_memory_full();
        let v = arc.select_victim().unwrap(); // goes to B1
        let p_before = arc.p();
        arc.on_fault(v, 10); // ghost hit in B1
        assert!(arc.p() > p_before, "p should grow on a B1 ghost hit");
        assert_eq!(arc.resident_len(), 4);
    }

    #[test]
    fn scan_does_not_flush_frequent_pages() {
        // Hot set 0..8 referenced repeatedly, then a long one-time scan.
        // ARC keeps the hot set mostly resident; pure LRU would flush it.
        let mut refs: Vec<u64> = Vec::new();
        for _ in 0..6 {
            refs.extend(0..8u64);
        }
        refs.extend(100..160); // scan of 60 cold pages
        refs.extend(0..8u64); // hot set again
        let arc_faults = replay(&mut ArcPolicy::new(), &refs, 16);
        let lru_faults = replay(&mut crate::Lru::new(), &refs, 16);
        assert!(
            arc_faults <= lru_faults,
            "ARC {arc_faults} should not fault more than LRU {lru_faults} under a scan"
        );
    }

    #[test]
    fn residency_and_fault_bounds_hold() {
        use uvm_util::Rng;
        let mut rng = Rng::seed_from_u64(99);
        let refs: Vec<u64> = (0..2000).map(|_| rng.gen_range(0u64..64)).collect();
        let faults = replay(&mut ArcPolicy::new(), &refs, 24);
        assert!(faults >= 64);
        assert!(faults <= 2000);
    }

    #[test]
    fn ghost_lists_stay_bounded() {
        let mut arc = ArcPolicy::new();
        let mut resident = std::collections::HashSet::new();
        let mut fault_num = 0;
        let capacity = 16;
        for r in 0..5000u64 {
            let page = PageId(r % 200);
            if resident.contains(&page) {
                arc.on_walk_hit(page);
                continue;
            }
            if resident.len() == capacity {
                arc.on_memory_full();
                let v = arc.select_victim().unwrap();
                assert!(resident.remove(&v));
            }
            arc.on_fault(page, fault_num);
            fault_num += 1;
            resident.insert(page);
            let directory = arc.t1.len() + arc.t2.len() + arc.b1.len() + arc.b2.len();
            assert!(
                directory <= 2 * capacity + 2,
                "directory {directory} exceeds 2c"
            );
        }
    }

    #[test]
    fn victim_none_when_empty() {
        assert_eq!(ArcPolicy::new().select_victim(), None);
    }
}
