//! Uniform-random eviction (Zheng et al. found it competitive with LRU).

use std::collections::HashMap;
use uvm_types::{PageId, PolicyStats};
use uvm_util::Rng;

use crate::{EvictionPolicy, FaultOutcome};

/// Evicts a uniformly random resident page.
///
/// Deterministic for a given seed, so simulations are reproducible.
///
/// # Examples
///
/// ```
/// use uvm_policies::{EvictionPolicy, RandomPolicy};
/// use uvm_types::PageId;
///
/// let mut rnd = RandomPolicy::seeded(7);
/// rnd.on_fault(PageId(1), 0);
/// assert_eq!(rnd.select_victim(), Some(PageId(1)));
/// assert_eq!(rnd.select_victim(), None);
/// ```
#[derive(Debug)]
pub struct RandomPolicy {
    pages: Vec<PageId>,
    index: HashMap<PageId, usize>,
    rng: Rng,
    stats: PolicyStats,
}

impl RandomPolicy {
    /// Creates a policy with a fixed default seed.
    pub fn new() -> Self {
        Self::seeded(0xC0FFEE)
    }

    /// Creates a policy seeded with `seed`.
    pub fn seeded(seed: u64) -> Self {
        RandomPolicy {
            pages: Vec::new(),
            index: HashMap::new(),
            rng: Rng::seed_from_u64(seed),
            stats: PolicyStats::default(),
        }
    }

    /// Number of pages the policy believes are resident.
    pub fn resident_len(&self) -> usize {
        self.pages.len()
    }
}

impl Default for RandomPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl EvictionPolicy for RandomPolicy {
    fn name(&self) -> String {
        "Random".to_string()
    }

    fn on_fault(&mut self, page: PageId, _fault_num: u64) -> FaultOutcome {
        if !self.index.contains_key(&page) {
            self.index.insert(page, self.pages.len());
            self.pages.push(page);
        }
        FaultOutcome::default()
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.stats.selections += 1;
        if self.pages.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..self.pages.len());
        let victim = self.pages.swap_remove(i);
        self.index.remove(&victim);
        if let Some(&moved) = self.pages.get(i) {
            self.index.insert(moved, i);
        }
        Some(victim)
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::replay;
    use std::collections::HashSet;

    #[test]
    fn victims_are_resident_and_unique() {
        let mut rnd = RandomPolicy::seeded(1);
        for p in 0..50u64 {
            rnd.on_fault(PageId(p), p);
        }
        let mut seen = HashSet::new();
        for _ in 0..50 {
            let v = rnd.select_victim().unwrap();
            assert!(v.0 < 50);
            assert!(seen.insert(v), "evicted {v} twice");
        }
        assert_eq!(rnd.select_victim(), None);
    }

    #[test]
    fn same_seed_same_sequence() {
        let run = |seed| {
            let mut rnd = RandomPolicy::seeded(seed);
            for p in 0..20u64 {
                rnd.on_fault(PageId(p), p);
            }
            (0..20)
                .map(|_| rnd.select_victim().unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn duplicate_fault_does_not_duplicate_page() {
        let mut rnd = RandomPolicy::seeded(2);
        rnd.on_fault(PageId(5), 0);
        rnd.on_fault(PageId(5), 1);
        assert_eq!(rnd.resident_len(), 1);
    }

    #[test]
    fn cyclic_sweep_beats_lru_sometimes() {
        // On a cyclic sweep, random eviction retains a random subset, so it
        // faults strictly less than LRU's 100% miss rate after warmup.
        let refs: Vec<u64> = (0..20).cycle().take(200).collect();
        let faults = replay(&mut RandomPolicy::seeded(3), &refs, 16);
        assert!(faults < 200, "random should beat always-miss, got {faults}");
        assert!(faults >= 20, "at least compulsory misses");
    }
}
