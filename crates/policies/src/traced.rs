//! [`Traced`]: a wrapper adding decision events to any eviction policy.
//!
//! Baseline policies predate the tracing layer and carry no event
//! plumbing of their own. Wrapping one in [`Traced`] makes every victim
//! selection observable as a [`PolicyEvent::VictimSelected`] (with the
//! inner policy's comparison count and the victim's residency age in
//! faults) without touching the policy itself — residency bookkeeping is
//! only maintained while tracing is enabled, so an untraced `Traced<P>`
//! behaves and costs exactly like `P`.

use std::collections::HashMap;

use uvm_types::{PageId, PolicyEvent, PolicyStats, SignalDisruption, StrategyTag};

use crate::{EvictionPolicy, FaultOutcome};

/// Wraps an [`EvictionPolicy`], emitting a [`PolicyEvent::VictimSelected`]
/// for every eviction decision while tracing is enabled.
///
/// # Examples
///
/// ```
/// use uvm_policies::{EvictionPolicy, Lru, Traced};
/// use uvm_types::{PageId, PolicyEvent};
///
/// let mut p = Traced::new(Lru::new());
/// p.set_tracing(true);
/// p.on_fault(PageId(1), 0);
/// p.on_fault(PageId(2), 1);
/// assert_eq!(p.select_victim(), Some(PageId(1)));
/// let mut events = Vec::new();
/// p.drain_events(&mut |e| events.push(e));
/// assert!(matches!(
///     events[0],
///     PolicyEvent::VictimSelected { page: PageId(1), victim_age: 2, .. }
/// ));
/// ```
#[derive(Debug)]
pub struct Traced<P> {
    inner: P,
    tracing: bool,
    /// Fault number at which each resident page was inserted (tracing
    /// only; empty otherwise).
    resident_since: HashMap<PageId, u64>,
    fault_count: u64,
    last_comparisons: u64,
    events: Vec<PolicyEvent>,
}

impl<P: EvictionPolicy> Traced<P> {
    /// Wraps `inner`. Tracing starts disabled.
    pub fn new(inner: P) -> Self {
        Traced {
            inner,
            tracing: false,
            resident_since: HashMap::new(),
            fault_count: 0,
            last_comparisons: 0,
            events: Vec::new(),
        }
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Unwraps into the inner policy.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: EvictionPolicy> EvictionPolicy for Traced<P> {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn on_access(&mut self, page: PageId) {
        self.inner.on_access(page);
    }

    fn on_walk_hit(&mut self, page: PageId) {
        self.inner.on_walk_hit(page);
    }

    fn on_fault(&mut self, page: PageId, fault_num: u64) -> FaultOutcome {
        if self.tracing {
            self.fault_count += 1;
            self.resident_since.insert(page, fault_num);
        }
        self.inner.on_fault(page, fault_num)
    }

    fn on_memory_full(&mut self) {
        self.inner.on_memory_full();
    }

    fn select_victim(&mut self) -> Option<PageId> {
        let victim = self.inner.select_victim()?;
        if self.tracing {
            let comparisons = self.inner.stats().search_comparisons;
            let spent = comparisons - self.last_comparisons;
            self.last_comparisons = comparisons;
            let victim_age = self
                .resident_since
                .remove(&victim)
                .map_or(0, |at| self.fault_count.saturating_sub(at));
            self.events.push(PolicyEvent::VictimSelected {
                page: victim,
                strategy: StrategyTag::Native,
                search_comparisons: spent,
                victim_age,
            });
        }
        Some(victim)
    }

    fn on_disruption(&mut self, disruption: SignalDisruption) {
        if let SignalDisruption::ForcedEviction { page } = disruption {
            self.resident_since.remove(&page);
        }
        self.inner.on_disruption(disruption);
    }

    fn stats(&self) -> PolicyStats {
        self.inner.stats()
    }

    fn set_tracing(&mut self, enabled: bool) {
        self.tracing = enabled;
        if !enabled {
            self.resident_since.clear();
            self.events.clear();
        }
        // Forward in case the inner policy has native events too.
        self.inner.set_tracing(enabled);
    }

    fn drain_events(&mut self, sink: &mut dyn FnMut(PolicyEvent)) {
        for e in self.events.drain(..) {
            sink(e);
        }
        self.inner.drain_events(sink);
    }

    fn hir_fill(&self) -> u64 {
        self.inner.hir_fill()
    }

    fn is_degraded(&self) -> bool {
        self.inner.is_degraded()
    }

    fn check_invariants(&self) -> Result<(), String> {
        self.inner.check_invariants()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lru, Rrip, RripConfig};

    #[test]
    fn untraced_wrapper_is_transparent() {
        let mut plain = Lru::new();
        let mut wrapped = Traced::new(Lru::new());
        for i in 0..8u64 {
            plain.on_fault(PageId(i), i);
            wrapped.on_fault(PageId(i), i);
        }
        assert_eq!(plain.select_victim(), wrapped.select_victim());
        assert_eq!(wrapped.name(), "LRU");
        let mut drained = 0;
        wrapped.drain_events(&mut |_| drained += 1);
        assert_eq!(drained, 0, "no events without tracing");
    }

    #[test]
    fn traced_victims_carry_age_and_comparisons() {
        let mut p = Traced::new(Rrip::new(RripConfig::default()));
        p.set_tracing(true);
        for i in 0..4u64 {
            p.on_fault(PageId(i), i);
        }
        let v1 = p.select_victim().unwrap();
        let v2 = p.select_victim().unwrap();
        let mut events = Vec::new();
        p.drain_events(&mut |e| events.push(e));
        assert_eq!(events.len(), 2);
        let pages: Vec<PageId> = events
            .iter()
            .map(|e| match *e {
                PolicyEvent::VictimSelected { page, .. } => page,
                _ => panic!("unexpected event"),
            })
            .collect();
        assert_eq!(pages, vec![v1, v2]);
        // RRIP counts comparisons; each per-victim delta is nonzero.
        for e in &events {
            let PolicyEvent::VictimSelected {
                search_comparisons,
                victim_age,
                strategy,
                ..
            } = *e
            else {
                unreachable!()
            };
            assert!(search_comparisons > 0);
            assert!(victim_age <= 4);
            assert_eq!(strategy, StrategyTag::Native);
        }
        // Buffer is drained.
        let mut again = 0;
        p.drain_events(&mut |_| again += 1);
        assert_eq!(again, 0);
    }

    #[test]
    fn disabling_tracing_clears_state() {
        let mut p = Traced::new(Lru::new());
        p.set_tracing(true);
        p.on_fault(PageId(1), 0);
        p.select_victim();
        p.set_tracing(false);
        let mut n = 0;
        p.drain_events(&mut |_| n += 1);
        assert_eq!(n, 0);
    }
}
