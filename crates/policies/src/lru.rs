//! Page-level LRU, the widely deployed baseline (Section I).

use uvm_types::{PageId, PolicyStats};

use crate::chain::RecencyChain;
use crate::{EvictionPolicy, FaultOutcome};

/// Least-recently-used eviction over individual pages.
///
/// Runs in the paper's ideal model: both page-walk hits and faults move the
/// page to the MRU position in exact reference order; the victim is the LRU
/// page.
///
/// # Examples
///
/// ```
/// use uvm_policies::{EvictionPolicy, Lru};
/// use uvm_types::PageId;
///
/// let mut lru = Lru::new();
/// for p in 0..3 {
///     lru.on_fault(PageId(p), p);
/// }
/// lru.on_walk_hit(PageId(0));
/// assert_eq!(lru.select_victim(), Some(PageId(1)));
/// ```
#[derive(Debug, Default)]
pub struct Lru {
    chain: RecencyChain<PageId>,
    stats: PolicyStats,
}

impl Lru {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages the policy believes are resident.
    pub fn resident_len(&self) -> usize {
        self.chain.len()
    }
}

impl EvictionPolicy for Lru {
    fn name(&self) -> String {
        "LRU".to_string()
    }

    fn on_walk_hit(&mut self, page: PageId) {
        self.chain.touch(&page);
    }

    fn on_fault(&mut self, page: PageId, _fault_num: u64) -> FaultOutcome {
        self.chain.insert_mru(page);
        FaultOutcome::default()
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.stats.selections += 1;
        self.chain.pop_lru()
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::replay;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = Lru::new();
        for p in 0..4u64 {
            lru.on_fault(PageId(p), p);
        }
        lru.on_walk_hit(PageId(0));
        lru.on_walk_hit(PageId(1));
        assert_eq!(lru.select_victim(), Some(PageId(2)));
        assert_eq!(lru.select_victim(), Some(PageId(3)));
        assert_eq!(lru.select_victim(), Some(PageId(0)));
        assert_eq!(lru.resident_len(), 1);
    }

    #[test]
    fn cyclic_sweep_thrashes() {
        // Classic LRU pathology (the paper's type II): sweeping k pages
        // with capacity < k misses on every reference.
        let refs: Vec<u64> = (0..10).chain(0..10).chain(0..10).collect();
        let faults = replay(&mut Lru::new(), &refs, 8);
        assert_eq!(faults, 30);
    }

    #[test]
    fn lru_friendly_reuse_hits() {
        // Re-referencing a small working set inside capacity never faults
        // after warmup.
        let mut refs: Vec<u64> = (0..8).collect();
        for _ in 0..5 {
            refs.extend(0..8);
        }
        let faults = replay(&mut Lru::new(), &refs, 8);
        assert_eq!(faults, 8);
    }

    #[test]
    fn victim_none_when_empty() {
        assert_eq!(Lru::new().select_victim(), None);
    }

    #[test]
    fn stats_count_selections() {
        let mut lru = Lru::new();
        lru.on_fault(PageId(0), 0);
        lru.select_victim();
        lru.select_victim();
        assert_eq!(lru.stats().selections, 2);
    }
}
