//! CAR — CLOCK with adaptive replacement (Bansal & Modha, FAST'04), cited
//! in Section VI-B. ARC's two-list adaptation implemented with CLOCK-style
//! reference bits instead of strict LRU movement: hits only set a bit,
//! and the replacement "hands" promote or rotate pages when they sweep.

use std::collections::HashMap;
use uvm_types::{PageId, PolicyStats};

use crate::chain::RecencyChain;
use crate::{EvictionPolicy, FaultOutcome};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Where {
    T1,
    T2,
    B1,
    B2,
}

/// The CAR eviction policy.
///
/// # Examples
///
/// ```
/// use uvm_policies::{Car, EvictionPolicy};
/// use uvm_types::PageId;
///
/// let mut car = Car::new();
/// car.on_fault(PageId(1), 0);
/// car.on_fault(PageId(2), 1);
/// car.on_walk_hit(PageId(1)); // reference bit set, no movement
/// car.on_memory_full();
/// // Page 2's bit is clear: first eviction candidate; page 1 is promoted.
/// assert_eq!(car.select_victim(), Some(PageId(2)));
/// ```
#[derive(Debug, Default)]
pub struct Car {
    t1: RecencyChain<PageId>,
    t2: RecencyChain<PageId>,
    b1: RecencyChain<PageId>,
    b2: RecencyChain<PageId>,
    place: HashMap<PageId, Where>,
    referenced: HashMap<PageId, bool>,
    p: usize,
    c: Option<usize>,
    stats: PolicyStats,
}

impl Car {
    /// Creates an empty CAR policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pages the policy believes are resident.
    pub fn resident_len(&self) -> usize {
        self.t1.len() + self.t2.len()
    }

    /// Current T1 target size (diagnostics).
    pub fn p(&self) -> usize {
        self.p
    }

    fn relocate(&mut self, page: PageId, to: Where) {
        if let Some(from) = self.place.insert(page, to) {
            match from {
                Where::T1 => self.t1.remove(&page),
                Where::T2 => self.t2.remove(&page),
                Where::B1 => self.b1.remove(&page),
                Where::B2 => self.b2.remove(&page),
            };
        }
        match to {
            Where::T1 => self.t1.insert_mru(page),
            Where::T2 => self.t2.insert_mru(page),
            Where::B1 => self.b1.insert_mru(page),
            Where::B2 => self.b2.insert_mru(page),
        };
    }

    fn forget(&mut self, page: PageId) {
        if let Some(from) = self.place.remove(&page) {
            match from {
                Where::T1 => self.t1.remove(&page),
                Where::T2 => self.t2.remove(&page),
                Where::B1 => self.b1.remove(&page),
                Where::B2 => self.b2.remove(&page),
            };
        }
        self.referenced.remove(&page);
    }

    fn trim_ghosts(&mut self) {
        let Some(c) = self.c else { return };
        if self.t1.len() + self.b1.len() > c {
            if let Some(&old) = self.b1.lru() {
                self.forget(old);
            }
        }
        let total = self.t1.len() + self.t2.len() + self.b1.len() + self.b2.len();
        if total > 2 * c {
            if let Some(&old) = self.b2.lru() {
                self.forget(old);
            }
        }
    }
}

impl EvictionPolicy for Car {
    fn name(&self) -> String {
        "CAR".to_string()
    }

    fn on_walk_hit(&mut self, page: PageId) {
        if matches!(self.place.get(&page), Some(Where::T1) | Some(Where::T2)) {
            self.referenced.insert(page, true);
        }
    }

    fn on_memory_full(&mut self) {
        if self.c.is_none() {
            let c = self.resident_len();
            self.c = Some(c);
            self.p = self.p.min(c);
        }
    }

    fn on_fault(&mut self, page: PageId, _fault_num: u64) -> FaultOutcome {
        match self.place.get(&page).copied() {
            Some(Where::B1) => {
                let delta = (self.b2.len() / self.b1.len().max(1)).max(1);
                self.p = (self.p + delta).min(self.c.unwrap_or(usize::MAX));
                self.relocate(page, Where::T2);
                self.referenced.insert(page, false);
            }
            Some(Where::B2) => {
                let delta = (self.b1.len() / self.b2.len().max(1)).max(1);
                self.p = self.p.saturating_sub(delta);
                self.relocate(page, Where::T2);
                self.referenced.insert(page, false);
            }
            Some(_) => {
                // Already resident (duplicate notification): treat as hit.
                self.referenced.insert(page, true);
            }
            None => {
                self.relocate(page, Where::T1);
                self.referenced.insert(page, false);
            }
        }
        self.trim_ghosts();
        FaultOutcome::default()
    }

    fn select_victim(&mut self) -> Option<PageId> {
        self.stats.selections += 1;
        if self.resident_len() == 0 {
            return None;
        }
        // CAR's REPLACE: sweep T1's hand while T1 exceeds its target;
        // referenced T1 pages promote to T2; then sweep T2's hand,
        // rotating referenced pages. Bounded: each iteration clears a
        // reference bit or evicts.
        loop {
            let t1_first = self.t1.len() >= self.p.max(1) || self.t2.is_empty();
            if t1_first && !self.t1.is_empty() {
                let head = *self.t1.lru().expect("nonempty"); // lint:allow(unwrap) — guarded by !is_empty above
                if self.referenced.get(&head).copied().unwrap_or(false) {
                    // Promote to the tail of T2 with the bit cleared.
                    self.referenced.insert(head, false);
                    self.relocate(head, Where::T2);
                } else {
                    self.relocate(head, Where::B1);
                    self.referenced.remove(&head);
                    self.trim_ghosts();
                    return Some(head);
                }
            } else {
                let head = *self.t2.lru()?;
                if self.referenced.get(&head).copied().unwrap_or(false) {
                    // Rotate: clear the bit, move to the tail.
                    self.referenced.insert(head, false);
                    self.t2.touch(&head);
                } else {
                    self.relocate(head, Where::B2);
                    self.referenced.remove(&head);
                    self.trim_ghosts();
                    return Some(head);
                }
            }
        }
    }

    fn stats(&self) -> PolicyStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::replay;

    #[test]
    fn referenced_t1_pages_promote_instead_of_evict() {
        let mut car = Car::new();
        for p in 0..3u64 {
            car.on_fault(PageId(p), p);
        }
        car.on_walk_hit(PageId(0));
        car.on_memory_full();
        // Page 0 is referenced: promoted to T2; first unreferenced is 1.
        assert_eq!(car.select_victim(), Some(PageId(1)));
        assert_eq!(car.resident_len(), 2);
    }

    #[test]
    fn ghost_hit_adapts_target() {
        let mut car = Car::new();
        for p in 0..4u64 {
            car.on_fault(PageId(p), p);
        }
        car.on_memory_full();
        let v = car.select_victim().unwrap(); // -> B1
        let p_before = car.p();
        car.on_fault(v, 9); // B1 ghost hit
        assert!(car.p() > p_before);
        assert_eq!(car.resident_len(), 4);
    }

    #[test]
    fn t2_rotation_terminates() {
        let mut car = Car::new();
        for p in 0..4u64 {
            car.on_fault(PageId(p), p);
            car.on_walk_hit(PageId(p));
        }
        car.on_memory_full();
        // All referenced: one full promotion/rotation round, then evict.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4 {
            assert!(seen.insert(car.select_victim().expect("victim")));
        }
        assert_eq!(car.select_victim(), None);
    }

    #[test]
    fn directory_stays_bounded() {
        let mut car = Car::new();
        let mut resident = std::collections::HashSet::new();
        let capacity = 12;
        let mut faults = 0u64;
        for r in 0..4000u64 {
            let page = PageId((r * 7) % 120);
            if resident.contains(&page) {
                car.on_walk_hit(page);
                continue;
            }
            if resident.len() == capacity {
                car.on_memory_full();
                let v = car.select_victim().unwrap();
                assert!(resident.remove(&v), "victim {v} not resident");
            }
            car.on_fault(page, faults);
            faults += 1;
            resident.insert(page);
            let dir = car.t1.len() + car.t2.len() + car.b1.len() + car.b2.len();
            assert!(dir <= 2 * capacity + 2, "directory {dir}");
            assert_eq!(car.resident_len(), resident.len());
        }
    }

    #[test]
    fn sane_on_working_set_within_capacity() {
        let refs: Vec<u64> = (0..8).cycle().take(200).collect();
        let faults = replay(&mut Car::new(), &refs, 10);
        assert_eq!(faults, 8);
    }

    #[test]
    fn never_beats_compulsory_bound() {
        use uvm_util::Rng;
        let mut rng = Rng::seed_from_u64(21);
        let refs: Vec<u64> = (0..1200).map(|_| rng.gen_range(0u64..50)).collect();
        let faults = replay(&mut Car::new(), &refs, 20);
        assert!(faults >= 50);
    }
}
