//! The paper-constants manifest: the numeric ground truth of Yu et al.,
//! cross-checked against the config constructors that claim to encode it.
//!
//! Every entry pins the literals of one constructor (Table I / Section
//! IV-B / V-B of the paper). If a constant in the source drifts — an
//! accidental edit, a "temporary" experiment that leaks into a commit —
//! the `paper-constants` rule fails with the exact file:line, before the
//! drift can silently skew an EXPERIMENTS.md table.

use crate::analyze::{is_ident_char, LineInfo};
use crate::rules::RULE_PAPER_CONSTANTS;
use crate::Diagnostic;

/// One constructor whose literal fields are pinned to the paper.
#[derive(Debug, Clone, Copy)]
pub struct ConstantSpec {
    /// Workspace-relative path suffix of the file holding the
    /// constructor.
    pub file_suffix: &'static str,
    /// Human-readable constructor name for messages.
    pub context: &'static str,
    /// Function name to locate (body chosen by field containment when a
    /// file holds several functions of this name).
    pub fn_name: &'static str,
    /// Pinned fields: name, plus every expected literal in order of
    /// appearance inside the constructor body.
    pub fields: &'static [(&'static str, &'static [&'static str])],
}

/// The declared manifest (see DESIGN.md §10 for the catalog rationale).
pub const MANIFEST: &[ConstantSpec] = &[
    // HIR geometry: 1024 entries, 8-way, 2-bit counters (Section IV-B).
    ConstantSpec {
        file_suffix: "crates/types/src/config.rs",
        context: "HirGeometry::paper_default",
        fn_name: "paper_default",
        fields: &[
            ("entries", &["1024"]),
            ("ways", &["8"]),
            ("counter_bits", &["2"]),
        ],
    },
    // Simulator Table I: L1 TLB 128-entry fully-assoc, L2 TLB 512-entry
    // 16-way, 20 us fault service, 16 GB/s PCIe, 16-page sets, 64-fault
    // interval, flush every 16th fault.
    ConstantSpec {
        file_suffix: "crates/types/src/config.rs",
        context: "SimConfig::paper_default",
        fn_name: "paper_default",
        fields: &[
            ("entries", &["128", "512"]),
            ("ways", &["128", "16"]),
            ("fault_service_us", &["20.0"]),
            ("pcie_gbps", &["16.0"]),
            ("page_set_size", &["16"]),
            ("interval_len", &["64"]),
            ("transfer_interval", &["16"]),
        ],
    },
    // HPE policy constants: set size 16, interval 64, flush period 16,
    // classifier threshold 0.3, counter max 64 (Sections IV-B..IV-D).
    ConstantSpec {
        file_suffix: "crates/core/src/config.rs",
        context: "HpeConfig::paper_default",
        fn_name: "paper_default",
        fields: &[
            ("page_set_size", &["16"]),
            ("interval_len", &["64"]),
            ("transfer_interval", &["16"]),
            ("ratio1_threshold", &["0.3"]),
            ("counter_max", &["64"]),
        ],
    },
    // CLOCK-Pro's fixed cold-page target m_c = 128 (Section V-B).
    ConstantSpec {
        file_suffix: "crates/policies/src/clockpro.rs",
        context: "ClockProConfig::default",
        fn_name: "default",
        fields: &[("m_c", &["128"])],
    },
];

/// Runs every manifest entry whose file matches `rel_path`.
pub fn scan(rel_path: &str, lines: &[LineInfo], diags: &mut Vec<Diagnostic>) {
    for spec in MANIFEST {
        if rel_path.ends_with(spec.file_suffix) {
            check_spec(rel_path, lines, spec, diags);
        }
    }
}

/// Checks one spec against one analyzed file (public so tests can run a
/// spec against synthetic sources).
pub fn check_spec(
    rel_path: &str,
    lines: &[LineInfo],
    spec: &ConstantSpec,
    diags: &mut Vec<Diagnostic>,
) {
    let Some((start, end)) = find_body(lines, spec) else {
        diags.push(Diagnostic::new(
            rel_path,
            1,
            RULE_PAPER_CONSTANTS,
            format!(
                "constructor `{}` with fields {:?} not found; the constants \
                 manifest in uvm-lint must be updated together with the code",
                spec.context,
                spec.fields.iter().map(|(f, _)| *f).collect::<Vec<_>>()
            ),
        ));
        return;
    };
    for (field, expected) in spec.fields {
        let found = field_values(lines, start, end, field);
        if found.len() != expected.len() {
            diags.push(Diagnostic::new(
                rel_path,
                start as u64 + 1,
                RULE_PAPER_CONSTANTS,
                format!(
                    "`{}`: field `{field}` appears {} times, manifest pins {} value(s)",
                    spec.context,
                    found.len(),
                    expected.len()
                ),
            ));
            continue;
        }
        for ((line_no, got), want) in found.iter().zip(expected.iter()) {
            if normalize(got) != normalize(want) {
                diags.push(Diagnostic::new(
                    rel_path,
                    *line_no as u64 + 1,
                    RULE_PAPER_CONSTANTS,
                    format!(
                        "paper constant `{field}` is `{got}`, manifest pins `{want}` \
                         ({})",
                        spec.context
                    ),
                ));
            }
        }
    }
}

/// Locates the body (inclusive line range) of the spec's constructor:
/// the first `fn {name}` whose body mentions every pinned field.
fn find_body(lines: &[LineInfo], spec: &ConstantSpec) -> Option<(usize, usize)> {
    let header = format!("fn {}", spec.fn_name);
    for (i, line) in lines.iter().enumerate() {
        let Some(at) = line.code.find(&header) else {
            continue;
        };
        // Boundary: `fn paper_default` must not match `fn paper_defaults`.
        let end = at + header.len();
        if line.code[end..].chars().next().is_some_and(is_ident_char) {
            continue;
        }
        let Some(body_end) = body_end(lines, i) else {
            continue;
        };
        let contains_all = spec.fields.iter().all(|(field, _)| {
            (i..=body_end).any(|j| field_at_line(&lines[j].code, field).is_some())
        });
        if contains_all {
            return Some((i, body_end));
        }
    }
    None
}

/// The line on which the brace opened on `start`'s fn signature closes.
fn body_end(lines: &[LineInfo], start: usize) -> Option<usize> {
    let mut depth: i64 = 0;
    let mut started = false;
    for (j, line) in lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    started = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if started && depth <= 0 {
            return Some(j);
        }
    }
    None
}

/// All `field: value` occurrences (line index, raw value text) within
/// the body range, in appearance order.
fn field_values(lines: &[LineInfo], start: usize, end: usize, field: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (j, line) in lines.iter().enumerate().take(end + 1).skip(start) {
        let mut offset = 0;
        while let Some((at, value)) = field_at_offset(&line.code, field, offset) {
            out.push((j, value));
            offset = at + field.len();
        }
    }
    out
}

/// First `field: value` at or after `offset` in a line; returns the
/// match position and the captured value.
fn field_at_offset(code: &str, field: &str, offset: usize) -> Option<(usize, String)> {
    let mut start = offset;
    while let Some(rel) = code[start..].find(field) {
        let at = start + rel;
        let before_ok = at == 0 || !is_ident_char(code[..at].chars().next_back()?);
        let after = &code[at + field.len()..];
        let after_trim = after.trim_start();
        // Require `name:` but reject `name::` (a path, not a field).
        if before_ok && after_trim.starts_with(':') && !after_trim.starts_with("::") {
            let value_text = after_trim[1..]
                .split([',', '}'])
                .next()
                .unwrap_or("")
                .trim()
                .to_string();
            if !value_text.is_empty() {
                return Some((at, value_text));
            }
        }
        start = at + 1;
    }
    None
}

/// Convenience wrapper for [`field_values`] used by body matching.
fn field_at_line(code: &str, field: &str) -> Option<(usize, String)> {
    field_at_offset(code, field, 0)
}

/// Literal normalization: digit separators and surrounding whitespace
/// are immaterial (`16_384` == `16384`).
fn normalize(v: &str) -> String {
    v.chars().filter(|&c| c != '_' && c != ' ').collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;

    const SPEC: ConstantSpec = ConstantSpec {
        file_suffix: "x.rs",
        context: "Demo::paper_default",
        fn_name: "paper_default",
        fields: &[("alpha", &["16"]), ("beta", &["0.3"])],
    };

    #[test]
    fn matching_body_is_clean() {
        let text = "impl Demo {\n  pub fn paper_default() -> Self {\n    Demo { alpha: 16, beta: 0.3 }\n  }\n}\n";
        let mut d = Vec::new();
        check_spec("x.rs", &analyze(text), &SPEC, &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn drifted_constant_is_reported_with_line() {
        let text = "impl Demo {\n  pub fn paper_default() -> Self {\n    Demo { alpha: 17, beta: 0.3 }\n  }\n}\n";
        let mut d = Vec::new();
        check_spec("x.rs", &analyze(text), &SPEC, &mut d);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("alpha"));
        assert!(d[0].message.contains("17"));
    }

    #[test]
    fn missing_constructor_is_reported() {
        let mut d = Vec::new();
        check_spec("x.rs", &analyze("fn other() {}\n"), &SPEC, &mut d);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Demo::paper_default"));
    }

    #[test]
    fn same_named_fn_disambiguated_by_fields() {
        let text = "fn paper_default() -> A { A { gamma: 1 } }\n\
                    fn paper_default() -> B { B { alpha: 16, beta: 0.3 } }\n";
        let mut d = Vec::new();
        check_spec("x.rs", &analyze(text), &SPEC, &mut d);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn digit_separators_normalize() {
        assert_eq!(normalize("16_384"), normalize("16384"));
    }

    #[test]
    fn repeated_field_checks_appearance_order() {
        let spec = ConstantSpec {
            fields: &[("alpha", &["1", "2"])],
            ..SPEC
        };
        let good = "fn paper_default() { S { alpha: 1, x: X { alpha: 2 } } }\n";
        let bad = "fn paper_default() { S { alpha: 2, x: X { alpha: 1 } } }\n";
        let mut d = Vec::new();
        check_spec("x.rs", &analyze(good), &spec, &mut d);
        assert!(d.is_empty(), "{d:?}");
        check_spec("x.rs", &analyze(bad), &spec, &mut d);
        assert_eq!(d.len(), 2);
    }
}
