//! The workspace call graph and panic-reachability analysis.
//!
//! Built on the [`crate::index`] item index, the graph resolves every
//! call site by name and receiver shape:
//!
//! - `Type::name(..)` resolves to functions owned by `Type` (falling
//!   back to any function of that name when the type is not indexed);
//! - `x.name(..)` resolves to every *method* of that name (we do not
//!   type receivers — a deliberate over-approximation that never
//!   under-reports reachability);
//! - `name(..)` resolves to free functions of that name, falling back
//!   to any function of that name (module-path calls like
//!   `registry::by_abbr(..)` arrive shaped as free calls).
//!
//! Reachability runs BFS from the paper-critical roots — the
//! simulation loop, the `MixState` accessors, and the campaign/mix
//! worker entry points — recording parent pointers so every finding
//! carries its shortest call trail back to a root. Ties break on index
//! order, which follows sorted file order, so trails are deterministic.

use std::collections::BTreeMap;

use crate::index::{CallKind, FnItem, ItemIndex};

/// Qualified names treated as reachability roots when present.
const ROOT_QUALIFIED: &[&str] = &["Simulation::run", "Simulation::run_until"];

/// Free functions treated as reachability roots when present.
const ROOT_FREE: &[&str] = &["run_campaign", "run_mix"];

/// Every method of these types is a reachability root.
const ROOT_IMPLS: &[&str] = &["MixState"];

/// One panic site reachable from a root, with its call trail.
#[derive(Debug, Clone)]
pub struct PanicFinding {
    /// Index into [`ItemIndex::fns`] of the containing function.
    pub fn_idx: usize,
    /// Workspace-relative file of the panic site.
    pub file: String,
    /// 1-based line of the panic site.
    pub line: u32,
    /// The panicking form (`panic!`, `.unwrap()`, ...).
    pub what: &'static str,
    /// Qualified call trail from a root to the containing function
    /// (first element is the root, last is the containing function).
    pub trail: Vec<String>,
}

/// The resolved call graph over an [`ItemIndex`].
pub struct CallGraph<'a> {
    /// The underlying index.
    pub idx: &'a ItemIndex,
    /// Adjacency: `edges[i]` lists callee fn indices, sorted + deduped.
    edges: Vec<Vec<usize>>,
    /// Root fn indices, in index order.
    roots: Vec<usize>,
    /// BFS parent pointers from the roots (`None` = unreachable or is
    /// itself a root).
    parent: Vec<Option<usize>>,
    /// Whether each fn is reachable from some root.
    reachable: Vec<bool>,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph and runs root reachability.
    pub fn build(idx: &'a ItemIndex) -> Self {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut methods_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_owner_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, f) in idx.fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(i);
            match &f.owner {
                Some(o) => {
                    methods_by_name.entry(&f.name).or_default().push(i);
                    by_owner_name
                        .entry((o.as_str(), f.name.as_str()))
                        .or_default()
                        .push(i);
                }
                None => free_by_name.entry(&f.name).or_default().push(i),
            }
        }
        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(idx.fns.len());
        for f in &idx.fns {
            let mut out: Vec<usize> = Vec::new();
            for call in &f.calls {
                let resolved: Option<&Vec<usize>> = match &call.kind {
                    CallKind::Qualified(t) => by_owner_name
                        .get(&(t.as_str(), call.name.as_str()))
                        .or_else(|| by_name.get(call.name.as_str())),
                    CallKind::Method => methods_by_name
                        .get(call.name.as_str())
                        .or_else(|| by_name.get(call.name.as_str())),
                    CallKind::Free => free_by_name
                        .get(call.name.as_str())
                        .or_else(|| by_name.get(call.name.as_str())),
                };
                if let Some(targets) = resolved {
                    out.extend_from_slice(targets);
                }
            }
            out.sort_unstable();
            out.dedup();
            edges.push(out);
        }
        let roots = default_roots(idx);
        let (parent, reachable) = bfs(&edges, &roots);
        CallGraph {
            idx,
            edges,
            roots,
            parent,
            reachable,
        }
    }

    /// Root fn indices, in index order.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Whether fn `i` is reachable from a root.
    pub fn is_reachable(&self, i: usize) -> bool {
        self.reachable[i]
    }

    /// Direct callees of fn `i`.
    pub fn callees(&self, i: usize) -> &[usize] {
        &self.edges[i]
    }

    /// Shortest qualified-name trail from a root to fn `i`, empty if
    /// unreachable.
    pub fn trail_to(&self, i: usize) -> Vec<String> {
        if !self.reachable[i] {
            return Vec::new();
        }
        let mut rev = vec![i];
        let mut cur = i;
        while let Some(p) = self.parent[cur] {
            rev.push(p);
            cur = p;
        }
        rev.reverse();
        rev.into_iter()
            .map(|j| self.idx.fns[j].qualified())
            .collect()
    }

    /// Every hard panic site inside a reachable function, with its
    /// trail, in index order. Suppression (`lint:allow`) is the
    /// caller's concern: `hpe-lint graph` shows suppressed sites too.
    pub fn panic_findings(&self) -> Vec<PanicFinding> {
        let mut out = Vec::new();
        for (i, f) in self.idx.fns.iter().enumerate() {
            if !self.reachable[i] || f.panics.is_empty() {
                continue;
            }
            let trail = self.trail_to(i);
            for p in &f.panics {
                out.push(PanicFinding {
                    fn_idx: i,
                    file: f.file.clone(),
                    line: p.line,
                    what: p.what,
                    trail: trail.clone(),
                });
            }
        }
        out
    }

    /// Reachable functions with at least one slice-indexing expression
    /// (weak panic evidence, reported only by `hpe-lint graph`):
    /// `(fn_idx, index_op_count)` in index order.
    pub fn reachable_index_ops(&self) -> Vec<(usize, u32)> {
        self.idx
            .fns
            .iter()
            .enumerate()
            .filter(|(i, f)| self.reachable[*i] && f.index_ops > 0)
            .map(|(i, f)| (i, f.index_ops))
            .collect()
    }

    /// The function item for index `i`.
    pub fn fn_item(&self, i: usize) -> &FnItem {
        &self.idx.fns[i]
    }

    /// Looks up functions whose qualified name (or bare name) is
    /// `symbol`, in index order.
    pub fn find_symbol(&self, symbol: &str) -> Vec<usize> {
        self.idx
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.qualified() == symbol || f.name == symbol)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The root set actually present in the index, in index order.
fn default_roots(idx: &ItemIndex) -> Vec<usize> {
    let mut roots: Vec<usize> = idx
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            let q = f.qualified();
            ROOT_QUALIFIED.contains(&q.as_str())
                || (f.owner.is_none() && ROOT_FREE.contains(&f.name.as_str()))
                || f.owner.as_deref().is_some_and(|o| ROOT_IMPLS.contains(&o))
        })
        .map(|(i, _)| i)
        .collect();
    roots.sort_unstable();
    roots
}

/// BFS over `edges` from `roots`; returns parent pointers and the
/// reachable set. Neighbor lists are sorted, so ties are deterministic.
fn bfs(edges: &[Vec<usize>], roots: &[usize]) -> (Vec<Option<usize>>, Vec<bool>) {
    let n = edges.len();
    let mut parent = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &r in roots {
        if !seen[r] {
            seen[r] = true;
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &edges[u] {
            if !seen[v] {
                seen[v] = true;
                parent[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    (parent, seen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ItemIndex;
    use crate::lexer::lex;

    /// (panicking fn, panic kind, trail) per finding.
    type Finding = (String, &'static str, Vec<String>);

    fn graph_of(files: &[(&str, &str)]) -> (ItemIndex, Vec<Finding>) {
        let lexed: Vec<(String, crate::lexer::LexedFile)> =
            files.iter().map(|(p, t)| (p.to_string(), lex(t))).collect();
        let idx = ItemIndex::build(lexed.iter().map(|(p, l)| (p.as_str(), l)));
        let graph = CallGraph::build(&idx);
        let findings = graph
            .panic_findings()
            .into_iter()
            .map(|f| (f.file, f.what, f.trail))
            .collect();
        (idx, findings)
    }

    #[test]
    fn panic_reachable_through_two_hops_carries_trail() {
        let (_, findings) = graph_of(&[(
            "crates/sim/src/engine.rs",
            "struct Simulation;\n\
             impl Simulation {\n  pub fn run(self) { step(); }\n}\n\
             fn step() { deep(); }\n\
             fn deep() { panic!(\"boom\"); }\n",
        )]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].1, "panic!");
        assert_eq!(findings[0].2, vec!["Simulation::run", "step", "deep"]);
    }

    #[test]
    fn unreachable_panics_are_not_reported() {
        let (_, findings) = graph_of(&[(
            "crates/sim/src/engine.rs",
            "struct Simulation;\n\
             impl Simulation {\n  pub fn run(self) {}\n}\n\
             fn orphan() { x.unwrap(); }\n",
        )]);
        assert!(findings.is_empty());
    }

    #[test]
    fn cross_file_method_calls_resolve() {
        let (_, findings) = graph_of(&[
            (
                "crates/bench/src/tenant.rs",
                "pub fn run_mix() { let s = MixState::new(); s.record(0); }\n\
                 struct MixState;\n\
                 impl MixState {\n  fn new() -> Self { MixState }\n  fn record(&self, i: u64) { other_helper(i) }\n}\n",
            ),
            (
                "crates/bench/src/lib.rs",
                "pub fn other_helper(i: u64) -> u64 { SLOTS[i as usize].unwrap() }\n",
            ),
        ]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].0, "crates/bench/src/lib.rs");
        assert_eq!(findings[0].1, ".unwrap()");
        // MixState::record is itself a root, so the shortest trail
        // starts there rather than at run_mix.
        assert_eq!(findings[0].2, vec!["MixState::record", "other_helper"]);
    }

    #[test]
    fn cycles_terminate() {
        let (_, findings) = graph_of(&[(
            "crates/sim/src/engine.rs",
            "struct Simulation;\n\
             impl Simulation {\n  pub fn run(self) { a(); }\n}\n\
             fn a() { b(); }\n\
             fn b() { a(); x.unwrap(); }\n",
        )]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].2, vec!["Simulation::run", "a", "b"]);
    }

    #[test]
    fn qualified_calls_prefer_the_named_type() {
        let (idx, findings) = graph_of(&[(
            "crates/sim/src/engine.rs",
            "struct Simulation;\nstruct A;\nstruct B;\n\
             impl Simulation {\n  pub fn run(self) { A::go(); }\n}\n\
             impl A {\n  fn go() {}\n}\n\
             impl B {\n  fn go() { panic!(\"wrong type\") }\n}\n",
        )]);
        assert_eq!(idx.fns.len(), 3);
        assert!(
            findings.is_empty(),
            "B::go should not resolve: {findings:?}"
        );
    }

    #[test]
    fn find_symbol_matches_bare_and_qualified() {
        let lexed = lex("struct S;\nimpl S {\n  fn m(&self) {}\n}\nfn m() {}\n");
        let idx = ItemIndex::build([("crates/sim/src/x.rs", &lexed)]);
        let graph = CallGraph::build(&idx);
        assert_eq!(graph.find_symbol("S::m").len(), 1);
        assert_eq!(graph.find_symbol("m").len(), 2);
    }
}
