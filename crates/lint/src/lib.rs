//! `uvm-lint`: zero-dependency static analysis for the HPE workspace.
//!
//! The reproduction's value rests on properties no compiler checks:
//! bit-exact determinism (golden traces, checkpoint byte-identity),
//! hermeticity (no external crates), error discipline (typed `SimError`
//! instead of panics), and fidelity to the paper's constants. This crate
//! enforces all four as machine-checkable rules over the source tree,
//! with a hand-rolled lexical analyzer (no `syn`, no `regex` — the
//! workspace is its own toolchain) and JSON diagnostics via
//! [`uvm_util::json`].
//!
//! # Rule families
//!
//! | Family | Rules | Scope |
//! |---|---|---|
//! | `determinism` | `wall-clock`, `hash-iteration`, `randomness` | `crates/{sim,core,policies,workloads}/src` |
//! | `hermeticity` | `external-import` | every `.rs` file |
//! | `error-discipline` | `unwrap` | `crates/{sim,core,policies}/src`, non-test |
//! | `paper-constants` | `paper-constants` | manifest files (see [`manifest::MANIFEST`]) |
//!
//! A violation is suppressed by a `// lint:allow(rule-id)` annotation —
//! trailing on the offending line, or as a standalone comment line
//! directly above it. The annotation documents *why* at the call site
//! instead of in a central baseline number.
//!
//! # Examples
//!
//! ```
//! use uvm_lint::{check_source, RuleFamily};
//!
//! let diags = check_source(
//!     "crates/sim/src/demo.rs",
//!     "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
//!     &[RuleFamily::ErrorDiscipline],
//! );
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "unwrap");
//! assert_eq!(diags[0].line, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod manifest;
pub mod rules;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use uvm_util::{json, Json};

/// A family of related rules, selectable on the `hpe-lint` command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleFamily {
    /// Bans wall-clock reads, hash-order iteration, and non-seeded
    /// randomness in the deterministic crates.
    Determinism,
    /// Bans imports of crates outside the workspace.
    Hermeticity,
    /// Bans `.unwrap()` / `.expect(` / `panic!` in non-test library code
    /// without an inline allow annotation.
    ErrorDiscipline,
    /// Cross-checks config literals against the paper-constants
    /// manifest.
    PaperConstants,
    /// Flags direct access to tenant slot state that bypasses the
    /// scoped `MixState` accessors in the tenant-layer files.
    TenantIsolation,
}

impl RuleFamily {
    /// Every family, in reporting order.
    pub const ALL: &'static [RuleFamily] = &[
        RuleFamily::Determinism,
        RuleFamily::Hermeticity,
        RuleFamily::ErrorDiscipline,
        RuleFamily::PaperConstants,
        RuleFamily::TenantIsolation,
    ];

    /// The CLI label (`determinism`, `hermeticity`, `error-discipline`,
    /// `paper-constants`, `tenant-isolation`).
    pub fn label(self) -> &'static str {
        match self {
            RuleFamily::Determinism => "determinism",
            RuleFamily::Hermeticity => "hermeticity",
            RuleFamily::ErrorDiscipline => "error-discipline",
            RuleFamily::PaperConstants => "paper-constants",
            RuleFamily::TenantIsolation => "tenant-isolation",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Option<Self> {
        RuleFamily::ALL.iter().copied().find(|f| f.label() == s)
    }
}

/// One rule violation, locatable as `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line number.
    pub line: u64,
    /// Stable rule id (e.g. `unwrap`, `hash-iteration`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(file: impl Into<String>, line: u64, rule: &'static str, message: String) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            message,
        }
    }

    /// JSON form: `{"file", "line", "rule", "message"}`.
    pub fn to_json(&self) -> Json {
        json!({
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        })
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// An internal lint failure (I/O, not a rule violation) — exit code 2
/// territory for the CLI.
#[derive(Debug)]
pub struct LintError(String);

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint internal error: {}", self.0)
    }
}

impl std::error::Error for LintError {}

/// Lints one in-memory source file. `rel_path` decides which rule
/// scopes apply, so fixtures can impersonate any workspace location.
pub fn check_source(rel_path: &str, text: &str, families: &[RuleFamily]) -> Vec<Diagnostic> {
    let lines = analyze::analyze(text);
    let mut diags = rules::scan(rel_path, &lines, families);
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags
}

/// Lints every `.rs` file under `root` (the workspace checkout),
/// skipping build output, VCS metadata, and the lint fixtures (which
/// contain violations by design). File order — and therefore diagnostic
/// order — is sorted, so output is identical across filesystems.
///
/// # Errors
///
/// Returns [`LintError`] on I/O failure (unreadable tree), never for
/// rule violations.
pub fn check_workspace(root: &Path, families: &[RuleFamily]) -> Result<Vec<Diagnostic>, LintError> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut diags = Vec::new();
    for path in files {
        let text = fs::read_to_string(&path)
            .map_err(|e| LintError(format!("read {}: {e}", path.display())))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        diags.extend(check_source(&rel, &text, families));
    }
    Ok(diags)
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries =
        fs::read_dir(dir).map_err(|e| LintError(format!("read dir {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError(format!("walk {}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Machine-readable report: `{"count": N, "diagnostics": [...]}`.
pub fn report_json(diags: &[Diagnostic]) -> Json {
    let mut obj = Json::object();
    obj.insert("count", Json::UInt(diags.len() as u64));
    obj.insert(
        "diagnostics",
        Json::Array(diags.iter().map(Diagnostic::to_json).collect()),
    );
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_labels_roundtrip() {
        for f in RuleFamily::ALL {
            assert_eq!(RuleFamily::parse(f.label()), Some(*f));
        }
        assert_eq!(RuleFamily::parse("nope"), None);
    }

    #[test]
    fn diagnostics_sort_and_render() {
        let d = Diagnostic::new("a.rs", 3, "unwrap", "x".into());
        assert_eq!(d.to_string(), "a.rs:3: [unwrap] x");
        let j = report_json(&[d]);
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn check_source_orders_by_line() {
        let text = "fn f() {\n  b.unwrap();\n  a.unwrap();\n}\n";
        let d = check_source("crates/sim/src/x.rs", text, RuleFamily::ALL);
        assert_eq!(d.len(), 2);
        assert!(d[0].line < d[1].line);
    }
}
