//! `uvm-lint`: zero-dependency static analysis for the HPE workspace.
//!
//! The reproduction's value rests on properties no compiler checks:
//! bit-exact determinism (golden traces, checkpoint byte-identity),
//! hermeticity (no external crates), error discipline (typed `SimError`
//! instead of panics), and fidelity to the paper's constants. This crate
//! enforces them as machine-checkable rules over the source tree, built
//! on a hand-rolled Rust lexer (no `syn`, no `regex` — the workspace is
//! its own toolchain). One lex pass ([`lexer`]) produces both a blanked
//! per-line view for the substring rule families and a token stream that
//! feeds a workspace item index ([`index`]) and call graph
//! ([`callgraph`]) for the symbol-aware families. JSON diagnostics go
//! through [`uvm_util::json`].
//!
//! # Rule families
//!
//! | Family | Rules | Scope |
//! |---|---|---|
//! | `determinism` | `wall-clock`, `hash-iteration`, `randomness` | `crates/{sim,core,policies,workloads}/src` |
//! | `hermeticity` | `external-import` | every `.rs` file |
//! | `error-discipline` | `unwrap`, `profile-guard` | `crates/{sim,core,policies}/src`, non-test |
//! | `paper-constants` | `paper-constants` | manifest files (see [`manifest::MANIFEST`]) |
//! | `tenant-isolation` | `tenant-isolation` | every indexed file; `impl MixState` is exempt |
//! | `panic-reachability` | `panic-reachability` | call graph from `Simulation::run` / `MixState` / worker roots |
//! | `determinism-taint` | `rng-taint` | every indexed `Rng::seed_from_u64` call |
//! | `stale-allow` | `stale-allow` | every `lint:allow` annotation |
//!
//! A violation is suppressed by a `// lint:allow(rule-id)` annotation —
//! trailing on the offending line, or as a standalone comment line
//! directly above it. The annotation documents *why* at the call site
//! instead of in a central baseline number; the `stale-allow` rule flags
//! annotations that stopped suppressing anything.
//!
//! # Examples
//!
//! ```
//! use uvm_lint::{check_source, RuleFamily};
//!
//! let diags = check_source(
//!     "crates/sim/src/demo.rs",
//!     "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
//!     &[RuleFamily::ErrorDiscipline],
//! );
//! assert_eq!(diags.len(), 1);
//! assert_eq!(diags[0].rule, "unwrap");
//! assert_eq!(diags[0].line, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod callgraph;
pub mod index;
pub mod lexer;
pub mod manifest;
pub mod rules;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use uvm_util::{json, Json};

use index::ItemIndex;
use rules::AllowTracker;

/// A family of related rules, selectable on the `hpe-lint` command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleFamily {
    /// Bans wall-clock reads, hash-order iteration, and non-seeded
    /// randomness in the deterministic crates.
    Determinism,
    /// Bans imports of crates outside the workspace.
    Hermeticity,
    /// Bans `.unwrap()` / `.expect(` / `panic!` in non-test library code
    /// without an inline allow annotation.
    ErrorDiscipline,
    /// Cross-checks config literals against the paper-constants
    /// manifest.
    PaperConstants,
    /// Flags direct access to tenant slot state outside the `MixState`
    /// impl block (symbol-aware since v2; workspace-wide).
    TenantIsolation,
    /// Flags panic sites transitively reachable from the simulation /
    /// campaign roots, with a call trail per finding.
    PanicReachability,
    /// Flags PRNG seeds that do not derive from a seed parameter or
    /// config field of the enclosing function.
    DeterminismTaint,
    /// Flags `lint:allow` annotations that no longer suppress any
    /// diagnostic.
    StaleAllow,
}

impl RuleFamily {
    /// Every family, in reporting order.
    pub const ALL: &'static [RuleFamily] = &[
        RuleFamily::Determinism,
        RuleFamily::Hermeticity,
        RuleFamily::ErrorDiscipline,
        RuleFamily::PaperConstants,
        RuleFamily::TenantIsolation,
        RuleFamily::PanicReachability,
        RuleFamily::DeterminismTaint,
        RuleFamily::StaleAllow,
    ];

    /// The CLI label (`determinism`, `hermeticity`, `error-discipline`,
    /// `paper-constants`, `tenant-isolation`, `panic-reachability`,
    /// `determinism-taint`, `stale-allow`).
    pub fn label(self) -> &'static str {
        match self {
            RuleFamily::Determinism => "determinism",
            RuleFamily::Hermeticity => "hermeticity",
            RuleFamily::ErrorDiscipline => "error-discipline",
            RuleFamily::PaperConstants => "paper-constants",
            RuleFamily::TenantIsolation => "tenant-isolation",
            RuleFamily::PanicReachability => "panic-reachability",
            RuleFamily::DeterminismTaint => "determinism-taint",
            RuleFamily::StaleAllow => "stale-allow",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Option<Self> {
        RuleFamily::ALL.iter().copied().find(|f| f.label() == s)
    }
}

/// One rule violation, locatable as `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line number.
    pub line: u64,
    /// Stable rule id (e.g. `unwrap`, `hash-iteration`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// For call-graph rules: the qualified call trail from a root to
    /// the function containing the violation (empty for per-line
    /// rules, and omitted from JSON when empty — which keeps the v1
    /// diagnostic schema byte-identical).
    pub trail: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic (no trail).
    pub fn new(file: impl Into<String>, line: u64, rule: &'static str, message: String) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            rule,
            message,
            trail: Vec::new(),
        }
    }

    /// Attaches a call trail.
    pub fn with_trail(mut self, trail: Vec<String>) -> Self {
        self.trail = trail;
        self
    }

    /// JSON form: `{"file", "line", "rule", "message"}` plus `"trail"`
    /// (array of qualified names) when a call trail is present.
    pub fn to_json(&self) -> Json {
        let mut obj = json!({
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        });
        if !self.trail.is_empty() {
            obj.insert(
                "trail",
                Json::Array(self.trail.iter().map(|s| Json::Str(s.clone())).collect()),
            );
        }
        obj
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )?;
        if !self.trail.is_empty() {
            write!(f, " (trail: {})", self.trail.join(" -> "))?;
        }
        Ok(())
    }
}

/// An internal lint failure (I/O, not a rule violation) — exit code 2
/// territory for the CLI.
#[derive(Debug)]
pub struct LintError(String);

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint internal error: {}", self.0)
    }
}

impl std::error::Error for LintError {}

/// One in-memory source file: the workspace-relative path (which
/// decides rule scoping) plus its text.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// The file's source text.
    pub text: String,
}

/// Whether a path contributes to the item index / call graph: library
/// sources of workspace crates (binaries, integration tests, and
/// examples have their own entry points and are not simulation roots).
fn indexed_path(rel_path: &str) -> bool {
    rel_path.starts_with("crates/") && rel_path.contains("/src/") && !rel_path.contains("/src/bin/")
}

/// Lints a set of in-memory files as one workspace: per-line rules per
/// file, then the symbol-aware rules over the shared item index, then
/// stale-allow over the recorded suppressions. Diagnostics are sorted
/// by (file, line, rule).
pub fn check_files(files: &[SourceFile], families: &[RuleFamily]) -> Vec<Diagnostic> {
    let lexed: Vec<(String, lexer::LexedFile)> = files
        .iter()
        .map(|f| (f.rel_path.clone(), lexer::lex(&f.text)))
        .collect();
    let mut idx = ItemIndex::default();
    for (rel, lx) in &lexed {
        if indexed_path(rel) {
            idx.add_file(rel, lx);
        }
    }
    let line_files: Vec<(String, Vec<analyze::LineInfo>)> = lexed
        .iter()
        .map(|(rel, lx)| (rel.clone(), analyze::line_infos(lx)))
        .collect();
    let mut tracker = AllowTracker::default();
    let mut diags = Vec::new();
    for (rel, lines) in &line_files {
        diags.extend(rules::scan_lines(rel, lines, families, &mut tracker));
    }
    diags.extend(rules::scan_cross_file(
        &line_files,
        &idx,
        families,
        &mut tracker,
    ));
    diags.extend(rules::scan_stale_allows(
        &line_files,
        families,
        &mut tracker,
    ));
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags
}

/// Lints one in-memory source file. `rel_path` decides which rule
/// scopes apply, so fixtures can impersonate any workspace location.
/// Symbol-aware rules see only this file's items.
pub fn check_source(rel_path: &str, text: &str, families: &[RuleFamily]) -> Vec<Diagnostic> {
    check_files(
        &[SourceFile {
            rel_path: rel_path.to_string(),
            text: text.to_string(),
        }],
        families,
    )
}

/// Builds the item index and call graph over every `.rs` library source
/// under `root`, for `hpe-lint graph` / `explain`.
///
/// # Errors
///
/// Returns [`LintError`] on I/O failure (unreadable tree).
pub fn load_workspace_index(root: &Path) -> Result<ItemIndex, LintError> {
    let files = read_workspace(root)?;
    let mut idx = ItemIndex::default();
    for f in &files {
        if indexed_path(&f.rel_path) {
            idx.add_file(&f.rel_path, &lexer::lex(&f.text));
        }
    }
    Ok(idx)
}

/// Lints every `.rs` file under `root` (the workspace checkout),
/// skipping build output, VCS metadata, and the lint fixtures (which
/// contain violations by design). File order — and therefore diagnostic
/// order — is sorted, so output is identical across filesystems.
///
/// # Errors
///
/// Returns [`LintError`] on I/O failure (unreadable tree), never for
/// rule violations.
pub fn check_workspace(root: &Path, families: &[RuleFamily]) -> Result<Vec<Diagnostic>, LintError> {
    let files = read_workspace(root)?;
    Ok(check_files(&files, families))
}

/// Reads every `.rs` file under `root` into memory, sorted by path.
fn read_workspace(root: &Path) -> Result<Vec<SourceFile>, LintError> {
    let mut paths = Vec::new();
    collect_rs_files(root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)
            .map_err(|e| LintError(format!("read {}: {e}", path.display())))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile {
            rel_path: rel,
            text,
        });
    }
    Ok(files)
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries =
        fs::read_dir(dir).map_err(|e| LintError(format!("read dir {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError(format!("walk {}: {e}", dir.display())))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Machine-readable report: `{"count": N, "diagnostics": [...]}`.
pub fn report_json(diags: &[Diagnostic]) -> Json {
    let mut obj = Json::object();
    obj.insert("count", Json::UInt(diags.len() as u64));
    obj.insert(
        "diagnostics",
        Json::Array(diags.iter().map(Diagnostic::to_json).collect()),
    );
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_labels_roundtrip() {
        for f in RuleFamily::ALL {
            assert_eq!(RuleFamily::parse(f.label()), Some(*f));
        }
        assert_eq!(RuleFamily::parse("nope"), None);
    }

    #[test]
    fn diagnostics_sort_and_render() {
        let d = Diagnostic::new("a.rs", 3, "unwrap", "x".into());
        assert_eq!(d.to_string(), "a.rs:3: [unwrap] x");
        let j = report_json(&[d]);
        assert_eq!(j.get("count").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn trail_appears_in_display_and_json_only_when_present() {
        let plain = Diagnostic::new("a.rs", 3, "unwrap", "x".into());
        assert!(plain.to_json().get("trail").is_none());
        let trailed = Diagnostic::new("a.rs", 3, "panic-reachability", "x".into())
            .with_trail(vec!["Simulation::run".into(), "step".into()]);
        assert!(trailed.to_string().contains("Simulation::run -> step"));
        let j = trailed.to_json();
        let trail = j.get("trail").expect("trail key");
        assert_eq!(
            trail.as_array().map(<[Json]>::len),
            Some(2),
            "trail should be a 2-element array"
        );
    }

    #[test]
    fn check_source_orders_by_line() {
        let text = "fn f() {\n  b.unwrap();\n  a.unwrap();\n}\n";
        let d = check_source("crates/sim/src/x.rs", text, RuleFamily::ALL);
        assert_eq!(d.len(), 2);
        assert!(d[0].line < d[1].line);
    }

    #[test]
    fn indexed_path_excludes_bins_and_tests() {
        assert!(indexed_path("crates/sim/src/engine.rs"));
        assert!(indexed_path("crates/bench/src/tenant.rs"));
        assert!(!indexed_path("crates/bench/src/bin/hpe-lint.rs"));
        assert!(!indexed_path("crates/sim/tests/chaos_props.rs"));
        assert!(!indexed_path("examples/trace_analysis.rs"));
    }
}
