//! The hermetic Rust lexer: one scan, two synchronized views.
//!
//! This is the substrate every rule family sits on. A single pass over
//! the source produces:
//!
//! 1. **A token stream** ([`Token`]): identifiers, lifetimes, integer /
//!    float literals, string / raw-string / char literals, and
//!    punctuation, each carrying its 1-based line, column, and the
//!    brace-nesting depth it sits at. The item index
//!    ([`crate::index`]) and call graph ([`crate::callgraph`]) parse
//!    this stream.
//! 2. **Blanked per-line code** ([`LineMeta`]): the original line with
//!    comment prose and literal contents replaced by spaces (same
//!    character length, so column arithmetic holds). The line-oriented
//!    rule families (determinism, hermeticity, error-discipline,
//!    paper-constants) match against this view exactly as the v1
//!    analyzer did, which is what keeps their golden diagnostics
//!    byte-identical across the engine rewrite.
//!
//! Along the way the lexer harvests `// lint:allow(rule-id)`
//! annotations and the `#[cfg(test)]` tail marker, per line.
//!
//! The lexer is deliberately not a full Rust lexer: raw identifiers
//! (`r#match`) tokenize as `r`, `#`, `match`, and trailing-dot floats
//! (`1.`) as an integer plus punctuation. Neither occurs in this
//! workspace and neither affects blanking.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `Simulation`, `unwrap`).
    Ident,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// An integer literal (`42`, `0xD1B`, `1_000u64`).
    Int,
    /// A float literal (`0.3`, `1e9`, `2.5f64`).
    Float,
    /// A string or byte-string literal (`"…"`, `b"…"`), possibly
    /// spanning lines.
    Str,
    /// A raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`).
    RawStr,
    /// A char or byte-char literal (`'x'`, `'\n'`, `b'\0'`).
    Char,
    /// One punctuation character (`.`, `:`, `{`, …). Multi-character
    /// operators appear as adjacent single-character tokens.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// The token text. Literal tokens keep their opening quote/prefix
    /// but not their (blanked) contents; `Str`/`RawStr` text is the
    /// literal's *contents* for the taint rules, never matched against
    /// code.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based character column of the token's first character.
    pub col: u32,
    /// Brace-nesting depth. An opening `{` and its matching `}` share
    /// the depth of the block they delimit; tokens inside sit one
    /// deeper.
    pub depth: u32,
    /// Whether the token sits at or after the file's `#[cfg(test)]`
    /// marker (this workspace keeps test modules at end of file).
    pub in_test: bool,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Per-line metadata: the blanked code view plus annotations.
#[derive(Debug, Clone)]
pub struct LineMeta {
    /// The line with comments and literal contents blanked (same
    /// character length as the original).
    pub code: String,
    /// Rule ids named by `// lint:allow(...)` annotations on this line.
    pub allows: Vec<String>,
    /// Whether the line sits at or after `#[cfg(test)]`.
    pub in_test: bool,
}

/// The result of lexing one source file.
#[derive(Debug, Clone)]
pub struct LexedFile {
    /// The token stream, in source order.
    pub tokens: Vec<Token>,
    /// Per-line blanked code and annotations, 0-indexed by line.
    pub lines: Vec<LineMeta>,
}

/// Carry state between lines (strings and block comments span lines).
enum Mode {
    Code,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Lexes a whole source text.
pub fn lex(text: &str) -> LexedFile {
    let mut lx = Lexer {
        tokens: Vec::new(),
        lines: Vec::new(),
        mode: Mode::Code,
        depth: 0,
        pending: None,
    };
    for (line_no, line) in text.lines().enumerate() {
        lx.scan_line(line, line_no);
    }
    // An unterminated multi-line literal still yields its token.
    lx.flush_pending();
    // `#[cfg(test)]` marks the rest of the file, lines and tokens both.
    let first_test = lx
        .lines
        .iter()
        .position(|l| l.code.contains("#[cfg(test)]"));
    if let Some(first) = first_test {
        for l in &mut lx.lines[first..] {
            l.in_test = true;
        }
        for t in &mut lx.tokens {
            if t.line as usize > first {
                t.in_test = true;
            }
        }
    }
    LexedFile {
        tokens: lx.tokens,
        lines: lx.lines,
    }
}

/// A literal token under construction (may span lines).
struct Pending {
    kind: TokenKind,
    text: String,
    line: u32,
    col: u32,
    depth: u32,
}

struct Lexer {
    tokens: Vec<Token>,
    lines: Vec<LineMeta>,
    mode: Mode,
    depth: u32,
    pending: Option<Pending>,
}

impl Lexer {
    fn emit(&mut self, kind: TokenKind, text: String, line: usize, col: usize) {
        self.tokens.push(Token {
            kind,
            text,
            line: line as u32 + 1,
            col: col as u32 + 1,
            depth: self.depth,
            in_test: false,
        });
    }

    fn start_pending(&mut self, kind: TokenKind, line: usize, col: usize) {
        self.pending = Some(Pending {
            kind,
            text: String::new(),
            line: line as u32 + 1,
            col: col as u32 + 1,
            depth: self.depth,
        });
    }

    fn flush_pending(&mut self) {
        if let Some(p) = self.pending.take() {
            self.tokens.push(Token {
                kind: p.kind,
                text: p.text,
                line: p.line,
                col: p.col,
                depth: p.depth,
                in_test: false,
            });
        }
    }

    fn scan_line(&mut self, line: &str, line_no: usize) {
        let chars: Vec<char> = line.chars().collect();
        let mut code = String::with_capacity(chars.len());
        let mut allows = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            match self.mode {
                Mode::BlockComment(depth) => {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        self.mode = Mode::BlockComment(depth + 1);
                        code.push_str("  ");
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        self.mode = if depth == 1 {
                            Mode::Code
                        } else {
                            Mode::BlockComment(depth - 1)
                        };
                        code.push_str("  ");
                        i += 2;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Str => {
                    if chars[i] == '\\' {
                        code.push_str("  ");
                        if let Some(p) = &mut self.pending {
                            p.text.push('\\');
                            if let Some(&c) = chars.get(i + 1) {
                                p.text.push(c);
                            }
                        }
                        i += 2;
                    } else if chars[i] == '"' {
                        self.mode = Mode::Code;
                        self.flush_pending();
                        code.push(' ');
                        i += 1;
                    } else {
                        if let Some(p) = &mut self.pending {
                            p.text.push(chars[i]);
                        }
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if chars[i] == '"' && closes_raw(&chars, i + 1, hashes) {
                        self.mode = Mode::Code;
                        self.flush_pending();
                        let skip = 1 + hashes as usize;
                        for _ in 0..skip.min(chars.len() - i) {
                            code.push(' ');
                        }
                        i += skip;
                    } else {
                        if let Some(p) = &mut self.pending {
                            p.text.push(chars[i]);
                        }
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Code => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Line comment: harvest allow annotations, blank
                        // the rest of the line. Doc comments (`///`,
                        // `//!`) are documentation, not directives — an
                        // allow annotation mentioned in prose there must
                        // not suppress anything (or read as a stale
                        // allow).
                        let doc = matches!(chars.get(i + 2), Some(&'/') | Some(&'!'));
                        if !doc {
                            let comment: String = chars[i..].iter().collect();
                            collect_allows(&comment, &mut allows);
                        }
                        for _ in i..chars.len() {
                            code.push(' ');
                        }
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        self.mode = Mode::BlockComment(1);
                        code.push_str("  ");
                        i += 2;
                    } else if let Some(hashes) = raw_string_at(&chars, i) {
                        // r"..", r#".."#, br".." etc.: blank the prefix.
                        let prefix = prefix_len(&chars, i) + hashes as usize + 1;
                        self.start_pending(TokenKind::RawStr, line_no, i);
                        for _ in 0..prefix {
                            code.push(' ');
                        }
                        i += prefix;
                        self.mode = Mode::RawStr(hashes);
                    } else if c == '"'
                        || (c == 'b' && chars.get(i + 1) == Some(&'"') && boundary(&chars, i))
                    {
                        let skip = if c == 'b' { 2 } else { 1 };
                        self.start_pending(TokenKind::Str, line_no, i);
                        for _ in 0..skip {
                            code.push(' ');
                        }
                        i += skip;
                        self.mode = Mode::Str;
                    } else if c == '\'' {
                        // Char literal vs lifetime.
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: the char after the
                            // backslash is consumed (it may itself be a
                            // quote, as in '\''), then blank to the
                            // closing quote.
                            let mut j = i + 3;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            let text: String = chars[i..=j.min(chars.len() - 1)].iter().collect();
                            self.emit(TokenKind::Char, text, line_no, i);
                            for _ in i..=j.min(chars.len() - 1) {
                                code.push(' ');
                            }
                            i = j + 1;
                        } else if chars.get(i + 2) == Some(&'\'') {
                            // 'x' char literal.
                            let text: String = chars[i..i + 3].iter().collect();
                            self.emit(TokenKind::Char, text, line_no, i);
                            code.push_str("   ");
                            i += 3;
                        } else {
                            // Lifetime: the quote is blanked, the name
                            // stays visible in the code view.
                            let mut j = i + 1;
                            while j < chars.len() && is_ident_char(chars[j]) {
                                j += 1;
                            }
                            let text: String = chars[i..j].iter().collect();
                            self.emit(TokenKind::Lifetime, text, line_no, i);
                            code.push(' ');
                            for &ch in &chars[i + 1..j] {
                                code.push(ch);
                            }
                            i = j;
                        }
                    } else if is_ident_start(c) {
                        let mut j = i + 1;
                        while j < chars.len() && is_ident_char(chars[j]) {
                            j += 1;
                        }
                        let text: String = chars[i..j].iter().collect();
                        self.emit(TokenKind::Ident, text, line_no, i);
                        for &ch in &chars[i..j] {
                            code.push(ch);
                        }
                        i = j;
                    } else if c.is_ascii_digit() {
                        let (j, kind) = scan_number(&chars, i);
                        let text: String = chars[i..j].iter().collect();
                        self.emit(kind, text, line_no, i);
                        for &ch in &chars[i..j] {
                            code.push(ch);
                        }
                        i = j;
                    } else {
                        if !c.is_whitespace() {
                            match c {
                                '{' => {
                                    self.emit(TokenKind::Punct, c.to_string(), line_no, i);
                                    self.depth += 1;
                                }
                                '}' => {
                                    self.depth = self.depth.saturating_sub(1);
                                    self.emit(TokenKind::Punct, c.to_string(), line_no, i);
                                }
                                _ => self.emit(TokenKind::Punct, c.to_string(), line_no, i),
                            }
                        }
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        // A line comment never carries across lines.
        self.lines.push(LineMeta {
            code,
            allows,
            in_test: false,
        });
    }
}

/// Consumes a numeric literal starting at `i`; returns the end index and
/// whether it lexed as an integer or float. Handles `0x`/`0o`/`0b`
/// prefixes, `_` separators, type suffixes (`1u64`, `2.5f32`), decimal
/// points followed by a digit (so `0..10` stays integer + range), and
/// exponents (`1e9`, `2.5e-3`).
fn scan_number(chars: &[char], i: usize) -> (usize, TokenKind) {
    let mut j = i;
    let mut kind = TokenKind::Int;
    let radix_prefixed = chars[j] == '0'
        && matches!(
            chars.get(j + 1),
            Some(&'x') | Some(&'X') | Some(&'o') | Some(&'O') | Some(&'b') | Some(&'B')
        );
    if radix_prefixed {
        j += 2;
        while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
        return (j, TokenKind::Int);
    }
    while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
        j += 1;
    }
    if chars.get(j) == Some(&'.') && chars.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
        kind = TokenKind::Float;
        j += 1;
        while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '_') {
            j += 1;
        }
    }
    if matches!(chars.get(j), Some(&'e') | Some(&'E')) {
        let exp_start = if matches!(chars.get(j + 1), Some(&'+') | Some(&'-')) {
            j + 2
        } else {
            j + 1
        };
        if chars.get(exp_start).is_some_and(|c| c.is_ascii_digit()) {
            kind = TokenKind::Float;
            j = exp_start;
            while j < chars.len() && chars[j].is_ascii_digit() {
                j += 1;
            }
        }
    }
    // Type suffix (`u64`, `f64`, `usize`) folds into the literal.
    while j < chars.len() && is_ident_char(chars[j]) {
        if matches!(chars[j], 'f') && kind == TokenKind::Int {
            kind = TokenKind::Float;
        }
        j += 1;
    }
    (j, kind)
}

/// Whether `chars[at..]` holds `hashes` consecutive `#`s (raw-string
/// terminator check).
fn closes_raw(chars: &[char], at: usize, hashes: u32) -> bool {
    let n = hashes as usize;
    chars.len() >= at + n && chars[at..at + n].iter().all(|&c| c == '#')
}

/// Detects a raw-string opener at `i` (`r"`, `r#"`, `br"` ...),
/// returning its hash count.
fn raw_string_at(chars: &[char], i: usize) -> Option<u32> {
    if !boundary(chars, i) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Length of the `r`/`br` prefix of the raw string starting at `i`.
fn prefix_len(chars: &[char], i: usize) -> usize {
    if chars.get(i) == Some(&'b') {
        2
    } else {
        1
    }
}

/// Whether position `i` starts a fresh token (previous char is not an
/// identifier character), so `br"` in `rebr"` is not a string prefix.
fn boundary(chars: &[char], i: usize) -> bool {
    i == 0 || !is_ident_char(chars[i - 1])
}

/// Identifier start character (no leading digits).
fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

/// Identifier character test shared with the rules.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Extracts rule ids from every `lint:allow(a, b)` in a comment.
fn collect_allows(comment: &str, allows: &mut Vec<String>) {
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        let after = &rest[at + "lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            return;
        };
        for id in after[..close].split(',') {
            let id = id.trim();
            if !id.is_empty() {
                allows.push(id.to_string());
            }
        }
        rest = &after[close + 1..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(TokenKind, String)> {
        lex(text)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_numbers_and_punct_tokenize() {
        let ts = kinds("fn f(x: u64) -> u64 { x + 0x1F }");
        assert!(ts.contains(&(TokenKind::Ident, "fn".into())));
        assert!(ts.contains(&(TokenKind::Ident, "f".into())));
        assert!(ts.contains(&(TokenKind::Int, "0x1F".into())));
        assert!(ts.contains(&(TokenKind::Punct, "{".into())));
    }

    #[test]
    fn float_vs_range_disambiguation() {
        let ts = kinds("let a = 0.3; for i in 0..10 {}");
        assert!(ts.contains(&(TokenKind::Float, "0.3".into())));
        assert!(ts.contains(&(TokenKind::Int, "0".into())));
        assert!(ts.contains(&(TokenKind::Int, "10".into())));
    }

    #[test]
    fn suffixed_and_exponent_literals() {
        let ts = kinds("let a = 1u64; let b = 2.5f32; let c = 1e9;");
        assert!(ts.contains(&(TokenKind::Int, "1u64".into())));
        assert!(ts.contains(&(TokenKind::Float, "2.5f32".into())));
        assert!(ts.contains(&(TokenKind::Float, "1e9".into())));
    }

    #[test]
    fn lifetimes_and_char_literals_are_distinct() {
        let ts = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert!(ts.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(ts.contains(&(TokenKind::Char, "'x'".into())));
        assert!(ts.contains(&(TokenKind::Char, "'\\''".into())));
    }

    #[test]
    fn depth_pairs_open_and_close() {
        let lexed = lex("fn f() { if x { y(); } }");
        let braces: Vec<(String, u32)> = lexed
            .tokens
            .iter()
            .filter(|t| t.is_punct('{') || t.is_punct('}'))
            .map(|t| (t.text.clone(), t.depth))
            .collect();
        assert_eq!(
            braces,
            vec![
                ("{".to_string(), 0),
                ("{".to_string(), 1),
                ("}".to_string(), 1),
                ("}".to_string(), 0)
            ]
        );
    }

    #[test]
    fn string_contents_are_token_text_but_blanked_in_code() {
        let lexed = lex("let s = \"panic! inside\"; x.unwrap();");
        assert!(!lexed.lines[0].code.contains("panic!"));
        assert!(lexed.lines[0].code.contains(".unwrap()"));
        let s = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("string token");
        assert_eq!(s.text, "panic! inside");
    }

    #[test]
    fn tokens_carry_line_and_col() {
        let lexed = lex("a\n  bb ccc");
        let t: Vec<(String, u32, u32)> = lexed
            .tokens
            .iter()
            .map(|t| (t.text.clone(), t.line, t.col))
            .collect();
        assert_eq!(
            t,
            vec![
                ("a".to_string(), 1, 1),
                ("bb".to_string(), 2, 3),
                ("ccc".to_string(), 2, 6)
            ]
        );
    }

    #[test]
    fn doc_comments_do_not_harvest_allows() {
        let lexed = lex("/// Suppress with `// lint:allow(unwrap)` at the site.\n\
             //! lint:allow(hash-iteration)\n\
             x.unwrap(); // lint:allow(unwrap)\n");
        assert!(lexed.lines[0].allows.is_empty());
        assert!(lexed.lines[1].allows.is_empty());
        assert_eq!(lexed.lines[2].allows, vec!["unwrap".to_string()]);
    }

    #[test]
    fn cfg_test_marks_lines_and_tokens() {
        let lexed = lex("fn a() {}\n#[cfg(test)]\nmod tests { fn b() {} }\n");
        assert!(!lexed.lines[0].in_test);
        assert!(lexed.lines[1].in_test);
        assert!(lexed.lines[2].in_test);
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).expect("b");
        assert!(b.in_test);
        let a = lexed.tokens.iter().find(|t| t.is_ident("a")).expect("a");
        assert!(!a.in_test);
    }
}
