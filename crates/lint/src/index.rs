//! The workspace item index: a lightweight parse of the token stream.
//!
//! The index records every `fn`, `struct`, `impl`, and `mod` in the
//! workspace with its file and line span, plus the facts the cross-file
//! rules need about each function body: the identifiers it calls (with
//! receiver shape), the identifiers it binds (parameters, `let`, `for`,
//! closure arguments), its direct panic sites, its slice-indexing
//! count, and every `Rng::seed_from_u64` call with the identifiers
//! appearing in the seed argument.
//!
//! This is not a Rust parser — it is a disciplined scan over the
//! [`crate::lexer`] token stream that over-approximates where it must
//! (an unknown callee name matches every function of that name) and
//! never under-approximates reachability. Items inside `#[cfg(test)]`
//! regions are not indexed: test helpers must not alias production
//! symbols in the call graph.

use crate::lexer::{LexedFile, Token, TokenKind};

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// A free-function call: `helper(..)` (also module paths,
    /// `registry::by_abbr(..)`).
    Free,
    /// A method call: `x.helper(..)`.
    Method,
    /// A type-qualified call: `Rng::seed_from_u64(..)`; the payload is
    /// the type name (`Self` already resolved to the enclosing impl).
    Qualified(String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The callee identifier.
    pub name: String,
    /// The receiver shape, for resolution.
    pub kind: CallKind,
    /// 1-based line of the callee token.
    pub line: u32,
}

/// One direct panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// The panicking form, as written (`panic!`, `.unwrap()`,
    /// `.expect(`, `unreachable!`, `todo!`, `unimplemented!`).
    pub what: &'static str,
    /// 1-based line of the site.
    pub line: u32,
}

/// One `Rng::seed_from_u64(..)` call, for the determinism-taint rule.
#[derive(Debug, Clone)]
pub struct SeedCall {
    /// 1-based line of the call.
    pub line: u32,
    /// Identifiers appearing anywhere in the seed argument.
    pub arg_idents: Vec<String>,
}

/// One indexed function.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Workspace-relative file path.
    pub file: String,
    /// The enclosing `impl` type, if any.
    pub owner: Option<String>,
    /// The function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace (= `line` for bodyless
    /// trait signatures).
    pub end_line: u32,
    /// Identifiers the body binds: parameters, `let` / `for` / closure
    /// patterns, and `self` when present.
    pub bindings: Vec<String>,
    /// Call sites, in source order.
    pub calls: Vec<CallSite>,
    /// Direct panic sites, in source order.
    pub panics: Vec<PanicSite>,
    /// Number of `ident[..]` indexing expressions (fallible on slices
    /// and maps; surfaced by `hpe-lint graph`, not as diagnostics).
    pub index_ops: u32,
    /// `Rng::seed_from_u64` calls in the body.
    pub seeds: Vec<SeedCall>,
}

impl FnItem {
    /// Display name: `Type::name` for methods, `name` for free fns.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One indexed `impl` block.
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// Workspace-relative file path.
    pub file: String,
    /// The implemented type (the type after `for` in trait impls).
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// 1-based line of the closing brace.
    pub end_line: u32,
}

/// One indexed `struct` / `enum` definition.
#[derive(Debug, Clone)]
pub struct TypeItem {
    /// Workspace-relative file path.
    pub file: String,
    /// The type name.
    pub name: String,
    /// 1-based line of the definition.
    pub line: u32,
}

/// One indexed `mod` (declaration or inline).
#[derive(Debug, Clone)]
pub struct ModItem {
    /// Workspace-relative file path.
    pub file: String,
    /// The module name.
    pub name: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// The item index over a set of files.
#[derive(Debug, Clone, Default)]
pub struct ItemIndex {
    /// Every non-test function, across all indexed files.
    pub fns: Vec<FnItem>,
    /// Every non-test `impl` block.
    pub impls: Vec<ImplBlock>,
    /// Every non-test `struct` / `enum`.
    pub types: Vec<TypeItem>,
    /// Every non-test `mod`.
    pub mods: Vec<ModItem>,
}

impl ItemIndex {
    /// Indexes one lexed file into the accumulating index.
    pub fn add_file(&mut self, rel_path: &str, lexed: &LexedFile) {
        index_file(rel_path, &lexed.tokens, self);
    }

    /// Builds an index over several lexed files.
    pub fn build<'a>(files: impl IntoIterator<Item = (&'a str, &'a LexedFile)>) -> Self {
        let mut idx = ItemIndex::default();
        for (rel, lexed) in files {
            idx.add_file(rel, lexed);
        }
        idx
    }

    /// Whether 1-based `line` of `file` falls inside an `impl` block of
    /// `type_name`.
    pub fn in_impl_of(&self, file: &str, line: u32, type_name: &str) -> bool {
        self.impls.iter().any(|b| {
            b.file == file && b.type_name == type_name && b.line <= line && line <= b.end_line
        })
    }
}

/// Control-flow keywords that look like calls (`if (..)`) but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "where", "move", "mut", "ref", "dyn", "fn", "let", "impl", "use", "pub", "mod", "struct",
    "enum", "trait", "type", "unsafe", "const", "static", "crate", "super",
];

/// Macro names whose invocation panics.
const PANIC_MACROS: &[(&str, &str)] = &[
    ("panic", "panic!"),
    ("unreachable", "unreachable!"),
    ("todo", "todo!"),
    ("unimplemented", "unimplemented!"),
];

fn index_file(rel_path: &str, tokens: &[Token], idx: &mut ItemIndex) {
    // Pass 1: impl blocks and items (so fn → owner attribution can look
    // them up regardless of order).
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.in_test || t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" => {
                if impl_in_item_position(tokens, i) {
                    if let Some((type_name, open)) = parse_impl_header(tokens, i) {
                        let end = matching_close(tokens, open);
                        idx.impls.push(ImplBlock {
                            file: rel_path.to_string(),
                            type_name,
                            line: t.line,
                            end_line: tokens.get(end).map_or(t.line, |c| c.line),
                        });
                    }
                }
                i += 1;
            }
            "struct" | "enum" => {
                if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    idx.types.push(TypeItem {
                        file: rel_path.to_string(),
                        name: name.text.clone(),
                        line: t.line,
                    });
                }
                i += 1;
            }
            "mod" => {
                if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                    idx.mods.push(ModItem {
                        file: rel_path.to_string(),
                        name: name.text.clone(),
                        line: t.line,
                    });
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    // Pass 2: functions, with bodies scanned for calls/panics/seeds.
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.in_test || !t.is_ident("fn") {
            i += 1;
            continue;
        }
        // `fn` in a type position (`fn(u64) -> u64`) has no name ident.
        let Some(name_tok) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) else {
            i += 1;
            continue;
        };
        let owner = idx
            .impls
            .iter()
            .filter(|b| b.file == rel_path && b.line <= t.line && t.line <= b.end_line)
            .map(|b| b.type_name.clone())
            .next_back();
        let item = parse_fn(rel_path, tokens, i, name_tok.text.clone(), owner);
        let next = item.body_end_idx.unwrap_or(i) + 1;
        idx.fns.push(item.item);
        i = next.max(i + 1);
    }
}

/// Whether the `impl` keyword at token `i` opens an impl block, as
/// opposed to naming an `impl Trait` type in a parameter, return, or
/// bound position. An impl block is only legal where an item is:
/// directly after `{`, `}`, `;`, a closing attribute `]`, `unsafe`, or
/// at the start of the file.
fn impl_in_item_position(tokens: &[Token], i: usize) -> bool {
    match tokens[..i].last() {
        None => true,
        Some(prev) => {
            prev.is_punct('{')
                || prev.is_punct('}')
                || prev.is_punct(';')
                || prev.is_punct(']')
                || prev.is_ident("unsafe")
        }
    }
}

/// Parses the type name and opening-brace index of an `impl` at token
/// `i`. For `impl Trait for Type`, the owner is `Type`.
fn parse_impl_header(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Skip generic parameters on the impl itself.
    if tokens.get(j)?.is_punct('<') {
        j = skip_angle(tokens, j)?;
    }
    let mut last_path_ident: Option<String> = None;
    let mut owner: Option<String> = None;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('{') {
            return Some((owner.or(last_path_ident)?, j));
        }
        if t.is_punct(';') {
            return None;
        }
        if t.is_ident("for") {
            // Trait impl: the type we attribute methods to follows.
            owner = None;
            last_path_ident = None;
        } else if t.is_ident("where") {
            owner = owner.or(last_path_ident.take());
        } else if t.kind == TokenKind::Ident {
            last_path_ident = Some(t.text.clone());
        } else if t.is_punct('<') {
            // Generic arguments of the type just named: skip, keep the
            // name.
            owner = owner.or(last_path_ident.take());
            j = skip_angle(tokens, j)?;
            continue;
        }
        j += 1;
    }
    None
}

/// Skips a balanced `<..>` starting at `open` (which must be `<`);
/// returns the index after the closing `>`.
fn skip_angle(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        } else if t.is_punct('{') || t.is_punct(';') {
            return None;
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at `open` (they share a depth
/// value), or the last token if unterminated.
fn matching_close(tokens: &[Token], open: usize) -> usize {
    let depth = tokens[open].depth;
    let mut j = open + 1;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('}') && t.depth == depth {
            return j;
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

struct ParsedFn {
    item: FnItem,
    body_end_idx: Option<usize>,
}

/// Parses one `fn` starting at token index `fn_idx`.
fn parse_fn(
    rel_path: &str,
    tokens: &[Token],
    fn_idx: usize,
    name: String,
    owner: Option<String>,
) -> ParsedFn {
    let fn_tok = &tokens[fn_idx];
    let mut item = FnItem {
        file: rel_path.to_string(),
        owner,
        name,
        line: fn_tok.line,
        end_line: fn_tok.line,
        bindings: Vec::new(),
        calls: Vec::new(),
        panics: Vec::new(),
        index_ops: 0,
        seeds: Vec::new(),
    };
    // Parameter list: the first `(` after the name (skipping generics).
    let mut j = fn_idx + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_angle(tokens, j).unwrap_or(j + 1);
    }
    if tokens.get(j).is_some_and(|t| t.is_punct('(')) {
        let mut paren = 0i32;
        let mut k = j;
        while let Some(t) = tokens.get(k) {
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren -= 1;
                if paren == 0 {
                    break;
                }
            } else if paren == 1 && t.kind == TokenKind::Ident {
                // `name: Type` at the top level of the list, or `self`.
                if t.text == "self" {
                    push_unique(&mut item.bindings, "self");
                } else if tokens.get(k + 1).is_some_and(|n| n.is_punct(':')) {
                    push_unique(&mut item.bindings, &t.text);
                }
            }
            k += 1;
        }
        j = k;
    }
    // Body: the first `{` at the fn's depth before a `;` at that depth.
    let fn_depth = fn_tok.depth;
    let mut body_open = None;
    while let Some(t) = tokens.get(j) {
        if t.is_punct('{') && t.depth == fn_depth {
            body_open = Some(j);
            break;
        }
        if t.is_punct(';') && t.depth == fn_depth {
            break;
        }
        j += 1;
    }
    let Some(open) = body_open else {
        return ParsedFn {
            item,
            body_end_idx: None,
        };
    };
    let close = matching_close(tokens, open);
    item.end_line = tokens[close].line;
    scan_body(tokens, open + 1, close, &mut item);
    ParsedFn {
        item,
        body_end_idx: Some(close),
    }
}

fn push_unique(v: &mut Vec<String>, s: &str) {
    if !v.iter().any(|x| x == s) {
        v.push(s.to_string());
    }
}

/// Scans a body token range for calls, bindings, panic sites, indexing,
/// and seed calls.
fn scan_body(tokens: &[Token], start: usize, end: usize, item: &mut FnItem) {
    let mut j = start;
    while j < end {
        let t = &tokens[j];
        if t.kind != TokenKind::Ident {
            j += 1;
            continue;
        }
        let next = tokens.get(j + 1);
        match t.text.as_str() {
            "let" => {
                // Bind every ident of the pattern, up to `=`/`;` (type
                // names in `let x: Foo` are harmless over-approx).
                let mut k = j + 1;
                while k < end {
                    let p = &tokens[k];
                    if p.is_punct('=') || p.is_punct(';') {
                        break;
                    }
                    if p.kind == TokenKind::Ident && !NON_CALL_KEYWORDS.contains(&p.text.as_str()) {
                        push_unique(&mut item.bindings, &p.text);
                    }
                    k += 1;
                }
                j += 1;
                continue;
            }
            "for" => {
                // `for pat in ..`: bind the pattern idents.
                let mut k = j + 1;
                while k < end {
                    let p = &tokens[k];
                    if p.is_ident("in") || p.is_punct('{') {
                        break;
                    }
                    if p.kind == TokenKind::Ident {
                        push_unique(&mut item.bindings, &p.text);
                    }
                    k += 1;
                }
                j += 1;
                continue;
            }
            _ => {}
        }
        // Closure parameters: `|a, b|` — a `|` directly after a call
        // opener, comma, or `=`.
        if t.text == "move" {
            j += 1;
            continue;
        }
        // Panic macros.
        if let Some((_, label)) = PANIC_MACROS.iter().find(|(m, _)| t.text == *m) {
            if next.is_some_and(|n| n.is_punct('!')) {
                item.panics.push(PanicSite {
                    what: label,
                    line: t.line,
                });
                j += 2;
                continue;
            }
        }
        let prev = if j > start {
            Some(&tokens[j - 1])
        } else {
            None
        };
        let after_dot = prev.is_some_and(|p| p.is_punct('.'));
        // `.unwrap()` / `.expect(` method panics.
        if after_dot && next.is_some_and(|n| n.is_punct('(')) {
            if t.text == "unwrap" {
                item.panics.push(PanicSite {
                    what: ".unwrap()",
                    line: t.line,
                });
            } else if t.text == "expect" {
                // `Option::expect` / `Result::expect` take a string
                // message. A `.expect(` whose first argument is not a
                // string literal is some type's own fallible `expect`
                // method (e.g. a parser's token matcher), not a panic.
                let arg_is_str = tokens
                    .get(j + 2)
                    .is_some_and(|a| matches!(a.kind, TokenKind::Str | TokenKind::RawStr));
                if arg_is_str {
                    item.panics.push(PanicSite {
                        what: ".expect(",
                        line: t.line,
                    });
                }
            }
        }
        // Indexing: `ident[..]` (not `[..]` literals, not `x.0[..]`).
        if next.is_some_and(|n| n.is_punct('[')) && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            item.index_ops += 1;
        }
        // Calls: `ident(` with receiver shape from the tokens before.
        if next.is_some_and(|n| n.is_punct('(')) && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            let kind = if after_dot {
                CallKind::Method
            } else if j >= start + 2 && tokens[j - 1].is_punct(':') && tokens[j - 2].is_punct(':') {
                // `Path::name(` — qualified if the path segment is a
                // type name (capitalized), else treated as a free call
                // through a module path.
                let seg = (j >= start + 3).then(|| &tokens[j - 3]).filter(|s| {
                    s.kind == TokenKind::Ident && !NON_CALL_KEYWORDS.contains(&s.text.as_str())
                });
                match seg {
                    Some(s) if s.text == "Self" => match &item.owner {
                        Some(o) => CallKind::Qualified(o.clone()),
                        None => CallKind::Free,
                    },
                    Some(s) if s.text.chars().next().is_some_and(char::is_uppercase) => {
                        CallKind::Qualified(s.text.clone())
                    }
                    _ => CallKind::Free,
                }
            } else {
                CallKind::Free
            };
            // Seed calls: capture the argument's identifiers.
            if t.text == "seed_from_u64" {
                item.seeds.push(SeedCall {
                    line: t.line,
                    arg_idents: arg_idents(tokens, j + 1, end),
                });
            }
            item.calls.push(CallSite {
                name: t.text.clone(),
                kind,
                line: t.line,
            });
        }
        j += 1;
    }
    // Closure parameters, second sweep: idents between a `|` pair where
    // the opening `|` follows `(`, `,`, `=`, `{`, or a call boundary.
    let mut j = start;
    while j < end {
        if tokens[j].is_punct('|') {
            let opener = j == start
                || tokens[j - 1].is_punct('(')
                || tokens[j - 1].is_punct(',')
                || tokens[j - 1].is_punct('=')
                || tokens[j - 1].is_punct('{')
                || tokens[j - 1].is_ident("move");
            if opener {
                let mut k = j + 1;
                while k < end && !tokens[k].is_punct('|') {
                    if tokens[k].kind == TokenKind::Ident
                        && !NON_CALL_KEYWORDS.contains(&tokens[k].text.as_str())
                    {
                        push_unique(&mut item.bindings, &tokens[k].text);
                    }
                    k += 1;
                }
                j = k;
            }
        }
        j += 1;
    }
}

/// Identifiers inside the balanced `(..)` starting at `open`.
fn arg_idents(tokens: &[Token], open: usize, end: usize) -> Vec<String> {
    let mut idents = Vec::new();
    let mut paren = 0i32;
    let mut j = open;
    while j < end {
        let t = &tokens[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
            if paren == 0 {
                break;
            }
        } else if t.kind == TokenKind::Ident {
            push_unique(&mut idents, &t.text);
        }
        j += 1;
    }
    idents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index_of(text: &str) -> ItemIndex {
        let lexed = lex(text);
        ItemIndex::build([("test.rs", &lexed)])
    }

    #[test]
    fn free_fn_and_method_are_indexed_with_owner() {
        let idx = index_of(
            "struct S;\n\
             impl S {\n  pub fn m(&self, x: u64) -> u64 { helper(x) }\n}\n\
             fn helper(x: u64) -> u64 { x }\n",
        );
        assert_eq!(idx.types.len(), 1);
        assert_eq!(idx.impls.len(), 1);
        let names: Vec<String> = idx.fns.iter().map(FnItem::qualified).collect();
        assert_eq!(names, vec!["S::m", "helper"]);
        assert_eq!(idx.fns[0].bindings, vec!["self", "x"]);
    }

    #[test]
    fn trait_impl_attributes_to_the_for_type() {
        let idx = index_of("impl Display for Row {\n  fn fmt(&self) {}\n}\n");
        assert_eq!(idx.impls[0].type_name, "Row");
        assert_eq!(idx.fns[0].qualified(), "Row::fmt");
    }

    #[test]
    fn generic_impl_headers_resolve() {
        let idx = index_of("impl<T: Clone> Wrapper<T> {\n  fn get(&self) {}\n}\n");
        assert_eq!(idx.impls[0].type_name, "Wrapper");
        assert_eq!(idx.fns[0].qualified(), "Wrapper::get");
    }

    #[test]
    fn calls_record_receiver_shape() {
        let idx =
            index_of("fn f(x: &S) { free(); x.method(); Rng::seed_from_u64(7); Self::assoc(); }\n");
        let calls = &idx.fns[0].calls;
        assert!(calls
            .iter()
            .any(|c| c.name == "free" && c.kind == CallKind::Free));
        assert!(calls
            .iter()
            .any(|c| c.name == "method" && c.kind == CallKind::Method));
        assert!(calls
            .iter()
            .any(|c| c.name == "seed_from_u64" && c.kind == CallKind::Qualified("Rng".into())));
    }

    #[test]
    fn panic_sites_are_collected() {
        let idx = index_of(
            "fn f(x: Option<u32>) -> u32 {\n  if bad() { panic!(\"no\") }\n  x.unwrap() + y.expect(\"set\")\n}\n",
        );
        let whats: Vec<&str> = idx.fns[0].panics.iter().map(|p| p.what).collect();
        assert_eq!(whats, vec!["panic!", ".unwrap()", ".expect("]);
    }

    #[test]
    fn unwrap_or_variants_are_not_panics() {
        let idx = index_of("fn f(x: Option<u32>) -> u32 { x.unwrap_or(3) }\n");
        assert!(idx.fns[0].panics.is_empty());
    }

    #[test]
    fn bindings_cover_let_for_and_closures() {
        let idx = index_of(
            "fn f(a: u64) {\n  let (b, c) = (1, 2);\n  for d in 0..3 {}\n  g(|e| e + a);\n}\n",
        );
        let b = &idx.fns[0].bindings;
        for name in ["a", "b", "c", "d", "e"] {
            assert!(b.iter().any(|x| x == name), "missing {name} in {b:?}");
        }
    }

    #[test]
    fn seed_calls_capture_arg_idents() {
        let idx = index_of(
            "fn f(seed: u64) { let r = Rng::seed_from_u64(seed ^ 3); let s = Rng::seed_from_u64(42); }\n",
        );
        let seeds = &idx.fns[0].seeds;
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0].arg_idents, vec!["seed"]);
        assert!(seeds[1].arg_idents.is_empty());
    }

    #[test]
    fn test_region_items_are_not_indexed() {
        let idx = index_of("fn real() {}\n#[cfg(test)]\nmod tests { fn fake() { x.unwrap(); } }\n");
        assert_eq!(idx.fns.len(), 1);
        assert_eq!(idx.fns[0].name, "real");
        // The test-module `mod tests` is also skipped.
        assert!(idx.mods.is_empty());
    }

    #[test]
    fn in_impl_of_matches_line_ranges() {
        let idx = index_of("struct M;\nimpl M {\n  fn a(&self) {}\n}\nfn outside() {}\n");
        assert!(idx.in_impl_of("test.rs", 3, "M"));
        assert!(!idx.in_impl_of("test.rs", 5, "M"));
        assert!(!idx.in_impl_of("other.rs", 3, "M"));
    }

    #[test]
    fn index_ops_are_counted() {
        let idx = index_of("fn f(xs: &[u64], i: usize) -> u64 { xs[i] + xs[0] }\n");
        assert_eq!(idx.fns[0].index_ops, 2);
    }

    #[test]
    fn impl_trait_in_type_position_is_not_an_impl_block() {
        let idx = index_of(
            "struct S;\n\
             impl S {\n  fn m(&self, key: impl Into<String>) {}\n}\n\
             fn free(x: impl Clone) -> impl Iterator<Item = u64> { std::iter::empty() }\n",
        );
        assert_eq!(idx.impls.len(), 1);
        assert_eq!(idx.impls[0].type_name, "S");
        let free = idx.fns.iter().find(|f| f.name == "free").unwrap();
        assert_eq!(free.owner, None);
    }

    #[test]
    fn expect_with_non_string_argument_is_not_a_panic_site() {
        let idx = index_of(
            "fn f(p: &mut Parser) {\n\
             \x20 p.expect(b':');\n\
             \x20 q.expect(\"message\");\n\
             }\n",
        );
        let whats: Vec<_> = idx.fns[0].panics.iter().map(|p| (p.what, p.line)).collect();
        assert_eq!(whats, vec![(".expect(", 3)]);
    }
}
