//! The rule families: per-line matchers and cross-file symbol rules.
//!
//! Per-line rules run over [`crate::analyze::LineInfo`] lines — comments
//! and literal contents already blanked — so every matcher is plain,
//! boundary-checked substring search, byte-compatible with the v1
//! engine. Cross-file rules run over the [`crate::index::ItemIndex`]
//! and [`crate::callgraph::CallGraph`] built from the same lex pass.
//! Each hit not covered by a `// lint:allow(rule-id)` annotation becomes
//! one [`crate::Diagnostic`]; every suppression is recorded in an
//! [`AllowTracker`] so the `stale-allow` rule can flag annotations that
//! no longer suppress anything.

use std::collections::BTreeSet;

use crate::analyze::{is_ident_char, LineInfo};
use crate::callgraph::CallGraph;
use crate::index::ItemIndex;
use crate::{Diagnostic, RuleFamily};

/// Rule id: wall-clock / date reads in deterministic crates.
pub const RULE_WALL_CLOCK: &str = "wall-clock";
/// Rule id: iteration over `HashMap`/`HashSet` (unordered) in
/// deterministic crates.
pub const RULE_HASH_ITERATION: &str = "hash-iteration";
/// Rule id: randomness not drawn from `uvm_util::rng`.
pub const RULE_RANDOMNESS: &str = "randomness";
/// Rule id: import of a crate outside the workspace.
pub const RULE_EXTERNAL_IMPORT: &str = "external-import";
/// Rule id: `.unwrap()` / `.expect(` / `panic!` in non-test library code.
pub const RULE_UNWRAP: &str = "unwrap";
/// Rule id: a literal in a config constructor drifted from the paper's
/// constants manifest.
pub const RULE_PAPER_CONSTANTS: &str = "paper-constants";
/// Rule id: profiler accumulation outside the opt-in guard.
pub const RULE_PROFILE_GUARD: &str = "profile-guard";
/// Rule id: direct access to tenant slot state outside the `MixState`
/// impl block.
pub const RULE_TENANT_ISOLATION: &str = "tenant-isolation";
/// Rule id: a panic site transitively reachable from a simulation /
/// campaign root (call-graph rule).
pub const RULE_PANIC_REACHABILITY: &str = "panic-reachability";
/// Rule id: a PRNG seeded from a literal or an expression that does not
/// derive from any binding of the enclosing function.
pub const RULE_RNG_TAINT: &str = "rng-taint";
/// Rule id: a `lint:allow` annotation that no longer suppresses any
/// diagnostic.
pub const RULE_STALE_ALLOW: &str = "stale-allow";

/// Which families can consume an allow with the given rule id. The
/// `stale-allow` rule only judges an unused allow when *every* family
/// listed here ran in the same invocation (so a partial `--rules` run
/// cannot misread a cross-family allow as stale). Ids mapped to an
/// empty list are owned by rules that never consume allows (or live
/// outside this library, like the binary-level `explore-specs` rule)
/// and are never judged; unknown ids are always stale.
const ALLOW_CONSUMERS: &[(&str, &[RuleFamily])] = &[
    (RULE_WALL_CLOCK, &[RuleFamily::Determinism]),
    (RULE_HASH_ITERATION, &[RuleFamily::Determinism]),
    (RULE_RANDOMNESS, &[RuleFamily::Determinism]),
    (RULE_EXTERNAL_IMPORT, &[RuleFamily::Hermeticity]),
    (
        RULE_UNWRAP,
        &[RuleFamily::ErrorDiscipline, RuleFamily::PanicReachability],
    ),
    (RULE_PROFILE_GUARD, &[RuleFamily::ErrorDiscipline]),
    (RULE_PAPER_CONSTANTS, &[]),
    (RULE_TENANT_ISOLATION, &[RuleFamily::TenantIsolation]),
    (RULE_PANIC_REACHABILITY, &[RuleFamily::PanicReachability]),
    (RULE_RNG_TAINT, &[RuleFamily::DeterminismTaint]),
    (RULE_STALE_ALLOW, &[RuleFamily::StaleAllow]),
    ("explore-specs", &[]),
];

/// Crate-path prefixes whose code must be bit-exact deterministic.
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/sim/src/",
    "crates/core/src/",
    "crates/policies/src/",
    "crates/workloads/src/",
];

/// Crate-path prefixes under the error-discipline gate.
const ERROR_DISCIPLINE_SCOPE: &[&str] = &[
    "crates/sim/src/",
    "crates/core/src/",
    "crates/policies/src/",
];

/// Direct reads/writes of the per-tenant slot vector. Since v2 the rule
/// is symbol-aware and workspace-wide: every one of these outside the
/// `impl MixState` block breaks the "one tenant per slot, written
/// exactly once" audit argument. The accessors themselves are exempt by
/// impl-block membership, not by annotation.
const TENANT_STATE_TOKENS: &[&str] = &[
    ".slots[",
    ".slots.get(",
    ".slots.get_mut(",
    ".slots.iter(",
    ".slots.iter_mut(",
    ".slots.len(",
    ".slots.push(",
];

/// The type whose impl block is the tenant slot state's trust boundary.
const TENANT_STATE_OWNER: &str = "MixState";

/// Profiler accumulation methods: mutate profiler state, so every call
/// site outside `profile.rs` itself must sit behind the opt-in guard
/// (`if let Some(prof) = self.profiler.as_mut()` or equivalent) — the
/// profiler is observation-only and must cost nothing when detached.
const PROFILE_ACCUM_TOKENS: &[&str] = &[
    ".charge(",
    ".open_span(",
    ".close_span(",
    ".begin_service(",
    ".note_retry(",
    ".note_coalesce(",
    ".mark_wrong_eviction(",
    ".warp_stalled(",
    ".warp_resumed(",
    ".record_samples(",
];

/// How many lines above an accumulation call the binding guard may sit
/// (the guard block can open well before a multi-line charge
/// computation; the search never crosses a function boundary).
const PROFILE_GUARD_WINDOW: usize = 40;

/// Import roots that keep the workspace hermetic: the language /
/// standard-library roots plus every workspace crate.
const ALLOWED_IMPORT_ROOTS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "crate",
    "self",
    "super",
    "uvm_util",
    "uvm_types",
    "uvm_workloads",
    "uvm_policies",
    "uvm_sim",
    "uvm_lint",
    "hpe_core",
    "hpe_bench",
    "hpe",
];

/// APIs that read the wall clock or a date — nondeterministic across
/// runs, so banned where golden traces must stay bit-exact.
const WALL_CLOCK_TOKENS: &[&str] = &[
    "std::time::Instant",
    "std::time::SystemTime",
    "Instant::now",
    "SystemTime::now",
    "UNIX_EPOCH",
    "Date::now",
    "chrono::",
    "OffsetDateTime",
];

/// Randomness sources other than the workspace's seeded
/// `uvm_util::rng` generator.
const RANDOMNESS_TOKENS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "rand::",
    "getrandom",
    "OsRng",
    "RandomState::new",
];

/// Methods whose call on a `HashMap`/`HashSet` visits entries in hash
/// order.
const HASH_ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain(",
    ".retain(",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
];

/// Records which `lint:allow` annotations actually suppressed a
/// diagnostic, keyed by (file, 0-based line of the annotation, rule id).
#[derive(Debug, Default)]
pub struct AllowTracker {
    used: BTreeSet<(String, usize, String)>,
}

impl AllowTracker {
    /// Whether line `n` carries an allow for `rule` — on the line
    /// itself, or on an immediately preceding comment-only line (the
    /// form rustfmt produces when a trailing comment no longer fits).
    /// A hit marks the annotation as used.
    pub fn allowed(&mut self, file: &str, lines: &[LineInfo], n: usize, rule: &str) -> bool {
        if lines[n].allows(rule) {
            self.used.insert((file.to_string(), n, rule.to_string()));
            return true;
        }
        if n > 0 && lines[n - 1].code.trim().is_empty() && lines[n - 1].allows(rule) {
            self.used
                .insert((file.to_string(), n - 1, rule.to_string()));
            return true;
        }
        false
    }

    /// Like [`AllowTracker::allowed`] for several interchangeable rule
    /// ids (e.g. `panic-reachability` accepts `unwrap` allows). Marks
    /// every matching annotation, so none reads as stale.
    pub fn allowed_any(
        &mut self,
        file: &str,
        lines: &[LineInfo],
        n: usize,
        rules: &[&str],
    ) -> bool {
        let mut any = false;
        for rule in rules {
            if self.allowed(file, lines, n, rule) {
                any = true;
            }
        }
        any
    }

    /// Whether the annotation at (file, 0-based line `n`) for `rule` was
    /// consumed by some diagnostic check.
    pub fn is_used(&self, file: &str, n: usize, rule: &str) -> bool {
        self.used.contains(&(file.to_string(), n, rule.to_string()))
    }
}

/// Whether `rel_path` (normalized with `/` separators) falls under any
/// prefix in `scope`.
fn in_scope(rel_path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| rel_path.starts_with(p))
}

/// Finds `token` in `code` at an identifier boundary (the characters
/// immediately before and after the match are not identifier
/// characters). Returns the match offset.
fn find_token(code: &str, token: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(at) = code[start..].find(token) {
        let at = start + at;
        let before_ok = at == 0
            || !is_ident_char(code[..at].chars().next_back().unwrap_or(' '))
            || !token.starts_with(|c: char| is_ident_char(c));
        let end = at + token.len();
        let after_ok = end >= code.len()
            || !is_ident_char(code[end..].chars().next().unwrap_or(' '))
            || !token.ends_with(|c: char| is_ident_char(c));
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

/// Runs every per-line rule of the requested `families` over one
/// analyzed file, recording consumed allows in `tracker`.
pub fn scan_lines(
    rel_path: &str,
    lines: &[LineInfo],
    families: &[RuleFamily],
    tracker: &mut AllowTracker,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if families.contains(&RuleFamily::Determinism) && in_scope(rel_path, DETERMINISM_SCOPE) {
        scan_tokens(
            rel_path,
            lines,
            WALL_CLOCK_TOKENS,
            RULE_WALL_CLOCK,
            "reads the wall clock; simulated time must come from the event loop",
            tracker,
            &mut diags,
        );
        scan_tokens(
            rel_path,
            lines,
            RANDOMNESS_TOKENS,
            RULE_RANDOMNESS,
            "non-seeded randomness; use uvm_util::rng",
            tracker,
            &mut diags,
        );
        scan_hash_iteration(rel_path, lines, tracker, &mut diags);
    }
    if families.contains(&RuleFamily::Hermeticity) {
        scan_imports(rel_path, lines, tracker, &mut diags);
    }
    if families.contains(&RuleFamily::ErrorDiscipline) && in_scope(rel_path, ERROR_DISCIPLINE_SCOPE)
    {
        scan_unwraps(rel_path, lines, tracker, &mut diags);
    }
    if families.contains(&RuleFamily::ErrorDiscipline)
        && rel_path.starts_with("crates/sim/src/")
        && !rel_path.ends_with("/profile.rs")
    {
        scan_profile_guard(rel_path, lines, tracker, &mut diags);
    }
    if families.contains(&RuleFamily::PaperConstants) {
        crate::manifest::scan(rel_path, lines, &mut diags);
    }
    diags
}

/// Back-compat wrapper over [`scan_lines`] with a throwaway tracker
/// (per-line families only; symbol rules need the whole file set).
pub fn scan(rel_path: &str, lines: &[LineInfo], families: &[RuleFamily]) -> Vec<Diagnostic> {
    scan_lines(rel_path, lines, families, &mut AllowTracker::default())
}

/// Runs the symbol-aware rule families over the whole file set:
/// `tenant-isolation` (v2, impl-block membership), `rng-taint`, and
/// `panic-reachability` (call graph).
pub fn scan_cross_file(
    files: &[(String, Vec<LineInfo>)],
    idx: &ItemIndex,
    families: &[RuleFamily],
    tracker: &mut AllowTracker,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if families.contains(&RuleFamily::TenantIsolation) {
        scan_tenant_isolation(files, idx, tracker, &mut diags);
    }
    if families.contains(&RuleFamily::DeterminismTaint) {
        scan_rng_taint(files, idx, tracker, &mut diags);
    }
    if families.contains(&RuleFamily::PanicReachability) {
        scan_panic_reachability(files, idx, tracker, &mut diags);
    }
    diags
}

/// Tenant-isolation v2: direct slot-state access anywhere in the
/// workspace is flagged unless the line sits inside the `impl MixState`
/// block of the same file. Accessors are exempt by symbol position —
/// no annotation needed (or consumed) inside the impl.
fn scan_tenant_isolation(
    files: &[(String, Vec<LineInfo>)],
    idx: &ItemIndex,
    tracker: &mut AllowTracker,
    diags: &mut Vec<Diagnostic>,
) {
    for (rel_path, lines) in files {
        for (n, line) in lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for token in TENANT_STATE_TOKENS {
                if find_token(&line.code, token).is_none() {
                    continue;
                }
                if !idx.in_impl_of(rel_path, n as u32 + 1, TENANT_STATE_OWNER)
                    && !tracker.allowed(rel_path, lines, n, RULE_TENANT_ISOLATION)
                {
                    diags.push(Diagnostic::new(
                        rel_path,
                        n as u64 + 1,
                        RULE_TENANT_ISOLATION,
                        format!(
                            "`{token}` reaches into tenant slot state outside the \
                             `impl MixState` block; go through the MixState accessors"
                        ),
                    ));
                }
                break;
            }
        }
    }
}

/// Determinism-taint: every `Rng::seed_from_u64(..)` argument must
/// mention at least one identifier bound in the enclosing function (a
/// seed parameter, a config field through `self`/a local, a loop
/// variable). Literal-only or ambient-constant seeds are flagged.
fn scan_rng_taint(
    files: &[(String, Vec<LineInfo>)],
    idx: &ItemIndex,
    tracker: &mut AllowTracker,
    diags: &mut Vec<Diagnostic>,
) {
    for f in &idx.fns {
        let Some((rel_path, lines)) = files.iter().find(|(p, _)| p == &f.file) else {
            continue;
        };
        for seed in &f.seeds {
            let n = seed.line as usize - 1;
            if n >= lines.len() {
                continue;
            }
            if seed
                .arg_idents
                .iter()
                .any(|id| f.bindings.iter().any(|b| b == id))
            {
                continue;
            }
            if tracker.allowed(rel_path, lines, n, RULE_RNG_TAINT) {
                continue;
            }
            let shape = if seed.arg_idents.is_empty() {
                "a literal".to_string()
            } else {
                format!(
                    "`{}`, none of which is bound in `{}`",
                    seed.arg_idents.join("`, `"),
                    f.qualified()
                )
            };
            diags.push(Diagnostic::new(
                rel_path,
                n as u64 + 1,
                RULE_RNG_TAINT,
                format!(
                    "`Rng::seed_from_u64` seeded from {shape}; derive the seed from a \
                     parameter or config field (or annotate with `// lint:allow(rng-taint)`)"
                ),
            ));
        }
    }
}

/// Panic-reachability: every hard panic site (`panic!`, `unreachable!`,
/// `todo!`, `unimplemented!`, `.unwrap()`, `.expect(`) inside a
/// function transitively reachable from a root (`Simulation::run`,
/// `MixState` accessors, the campaign/mix worker entry points) is
/// flagged with its shortest call trail. A `lint:allow(unwrap)`
/// annotation — the error-discipline escape hatch — also suppresses
/// this rule, so a site justified once is justified everywhere.
fn scan_panic_reachability(
    files: &[(String, Vec<LineInfo>)],
    idx: &ItemIndex,
    tracker: &mut AllowTracker,
    diags: &mut Vec<Diagnostic>,
) {
    let graph = CallGraph::build(idx);
    for finding in graph.panic_findings() {
        let Some((rel_path, lines)) = files.iter().find(|(p, _)| p == &finding.file) else {
            continue;
        };
        let n = finding.line as usize - 1;
        if n >= lines.len() || lines[n].in_test {
            continue;
        }
        if tracker.allowed_any(rel_path, lines, n, &[RULE_PANIC_REACHABILITY, RULE_UNWRAP]) {
            continue;
        }
        let root = finding.trail.first().cloned().unwrap_or_default();
        let containing = finding.trail.last().cloned().unwrap_or_default();
        diags.push(
            Diagnostic::new(
                rel_path,
                n as u64 + 1,
                RULE_PANIC_REACHABILITY,
                format!(
                    "`{}` in `{containing}` is reachable from root `{root}`; return a \
                     typed error or annotate with `// lint:allow(panic-reachability)`",
                    finding.what
                ),
            )
            .with_trail(finding.trail),
        );
    }
}

/// Stale-allow: flags `lint:allow(rule-id)` annotations that suppressed
/// nothing in this run. Known ids are only judged when every family
/// that can consume them ran; unknown ids are always stale. Runs after
/// every other rule so the tracker is complete.
pub fn scan_stale_allows(
    files: &[(String, Vec<LineInfo>)],
    families: &[RuleFamily],
    tracker: &mut AllowTracker,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if !families.contains(&RuleFamily::StaleAllow) {
        return diags;
    }
    for (rel_path, lines) in files {
        for n in 0..lines.len() {
            if lines[n].in_test {
                continue;
            }
            let ids: Vec<String> = lines[n].allows.clone();
            for id in ids {
                if id == RULE_STALE_ALLOW {
                    continue;
                }
                if tracker.is_used(rel_path, n, &id) {
                    continue;
                }
                let judged = match ALLOW_CONSUMERS.iter().find(|(known, _)| *known == id) {
                    None => true,
                    Some((_, consumers)) => {
                        !consumers.is_empty() && consumers.iter().all(|f| families.contains(f))
                    }
                };
                if !judged {
                    continue;
                }
                if tracker.allowed(rel_path, lines, n, RULE_STALE_ALLOW) {
                    continue;
                }
                diags.push(Diagnostic::new(
                    rel_path,
                    n as u64 + 1,
                    RULE_STALE_ALLOW,
                    format!("`lint:allow({id})` suppresses nothing; remove the stale annotation"),
                ));
            }
        }
    }
    diags
}

/// Token-list rules (wall clock, randomness).
#[allow(clippy::too_many_arguments)]
fn scan_tokens(
    rel_path: &str,
    lines: &[LineInfo],
    tokens: &[&str],
    rule: &'static str,
    why: &str,
    tracker: &mut AllowTracker,
    diags: &mut Vec<Diagnostic>,
) {
    for (n, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in tokens {
            if find_token(&line.code, token).is_some() {
                // The allow is only consumed (and marked used) when a
                // violation is actually suppressed — a stray annotation
                // must stay visible to the stale-allow rule.
                if !tracker.allowed(rel_path, lines, n, rule) {
                    diags.push(Diagnostic::new(
                        rel_path,
                        n as u64 + 1,
                        rule,
                        format!("`{token}` {why}"),
                    ));
                }
                break;
            }
        }
    }
}

/// Error-discipline rule: `.unwrap()`, `.expect(`, `panic!` in non-test
/// code without an inline allow.
fn scan_unwraps(
    rel_path: &str,
    lines: &[LineInfo],
    tracker: &mut AllowTracker,
    diags: &mut Vec<Diagnostic>,
) {
    for (n, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in [".unwrap()", ".expect(", "panic!"] {
            if find_token(&line.code, token).is_some() {
                if !tracker.allowed(rel_path, lines, n, RULE_UNWRAP) {
                    diags.push(Diagnostic::new(
                        rel_path,
                        n as u64 + 1,
                        RULE_UNWRAP,
                        format!(
                            "`{token}` in non-test code; return a typed error or annotate \
                             with `// lint:allow(unwrap)`"
                        ),
                    ));
                }
                break;
            }
        }
    }
}

/// Error-discipline rule: profiler accumulation behind the opt-in
/// guard.
///
/// Every call to a [`PROFILE_ACCUM_TOKENS`] method in engine code must
/// be visibly conditional on the profiler being attached: a guard token
/// on the call line itself, or the receiver bound by a `Some(<recv>)`
/// pattern within [`PROFILE_GUARD_WINDOW`] lines above it inside the
/// same function. Anything else charges profiler state on untraced runs
/// — exactly the cost the opt-in design promises away.
fn scan_profile_guard(
    rel_path: &str,
    lines: &[LineInfo],
    tracker: &mut AllowTracker,
    diags: &mut Vec<Diagnostic>,
) {
    for (n, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        for token in PROFILE_ACCUM_TOKENS {
            let Some(at) = find_token(code, token) else {
                continue;
            };
            if profile_call_is_guarded(lines, n, code, at) {
                continue;
            }
            if !tracker.allowed(rel_path, lines, n, RULE_PROFILE_GUARD) {
                diags.push(Diagnostic::new(
                    rel_path,
                    n as u64 + 1,
                    RULE_PROFILE_GUARD,
                    format!(
                        "profiler accumulation `{token}..)` outside the opt-in guard; wrap it \
                         in `if let Some(prof) = self.profiler.as_mut()` (or annotate with \
                         `// lint:allow(profile-guard)`)"
                    ),
                ));
            }
            break;
        }
    }
}

/// Whether an accumulation call at offset `at` of line `n` is covered by
/// an opt-in guard: a guard expression on the same line, or a
/// `Some(<receiver>)` binding within the window above, without crossing
/// a function boundary.
fn profile_call_is_guarded(lines: &[LineInfo], n: usize, code: &str, at: usize) -> bool {
    let same_line_guard =
        |s: &str| s.contains("if let Some") || s.contains(".as_mut()") || s.contains("is_some");
    if same_line_guard(code) {
        return true;
    }
    let Some(recv) = receiver_before(code, at) else {
        // No plain identifier receiver (e.g. a parenthesized
        // expression): demand the guard on the same line.
        return false;
    };
    let binding = format!("Some({recv})");
    for i in (n.saturating_sub(PROFILE_GUARD_WINDOW)..n).rev() {
        let above = &lines[i].code;
        if above.contains(&binding) || same_line_guard(above) {
            return true;
        }
        let trimmed = above.trim_start();
        if trimmed.starts_with("fn ") || above.contains(" fn ") {
            // Crossed into the enclosing function's signature (or a
            // previous function) without meeting a guard.
            return false;
        }
    }
    false
}

/// Hermeticity rule: every `use` / `extern crate` must resolve inside
/// the workspace or the standard library. Paths rooted at a module the
/// file itself declares (`mod engine;` → `pub use engine::Sim;`) are
/// local, not external.
fn scan_imports(
    rel_path: &str,
    lines: &[LineInfo],
    tracker: &mut AllowTracker,
    diags: &mut Vec<Diagnostic>,
) {
    let local_mods = collect_local_mods(lines);
    for (n, line) in lines.iter().enumerate() {
        let trimmed = line.code.trim_start();
        let path = if let Some(rest) = trimmed.strip_prefix("extern crate ") {
            rest
        } else if let Some(rest) = trimmed
            .strip_prefix("pub use ")
            .or_else(|| trimmed.strip_prefix("pub(crate) use "))
            .or_else(|| trimmed.strip_prefix("pub(super) use "))
            .or_else(|| trimmed.strip_prefix("use "))
        {
            rest
        } else {
            continue;
        };
        let path = path.trim_start_matches("::");
        let root: String = path.chars().take_while(|&c| is_ident_char(c)).collect();
        if root.is_empty() {
            continue;
        }
        if !ALLOWED_IMPORT_ROOTS.contains(&root.as_str())
            && !local_mods.contains(&root)
            && !tracker.allowed(rel_path, lines, n, RULE_EXTERNAL_IMPORT)
        {
            diags.push(Diagnostic::new(
                rel_path,
                n as u64 + 1,
                RULE_EXTERNAL_IMPORT,
                format!("import of external crate `{root}`; the workspace is hermetic"),
            ));
        }
    }
}

/// Module names the file declares itself (`mod x;`, `pub mod x;`,
/// `mod x {`) — valid un-prefixed import roots within the file.
fn collect_local_mods(lines: &[LineInfo]) -> Vec<String> {
    let mut mods = Vec::new();
    for line in lines {
        let trimmed = line.code.trim_start();
        let rest = if let Some(rest) = trimmed.strip_prefix("mod ") {
            rest
        } else if let Some(after_pub) = trimmed.strip_prefix("pub") {
            // `pub mod x;`, `pub(crate) mod x;`, ...
            let after_vis = after_pub
                .strip_prefix("(crate)")
                .or_else(|| after_pub.strip_prefix("(super)"))
                .unwrap_or(after_pub);
            match after_vis.trim_start().strip_prefix("mod ") {
                Some(rest) => rest,
                None => continue,
            }
        } else {
            continue;
        };
        let name: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
        if !name.is_empty() {
            mods.push(name);
        }
    }
    mods
}

/// Determinism rule: iteration over hash containers.
///
/// Pass 1 collects identifiers declared with a `HashMap`/`HashSet` type
/// or initializer anywhere in the file (struct fields included); pass 2
/// flags unordered-iteration methods invoked on them — same-line
/// (`self.stamps.iter()`), continuation-line (receiver at end of one
/// line, `.iter()` opening the next), and `for _ in &ident` loops.
fn scan_hash_iteration(
    rel_path: &str,
    lines: &[LineInfo],
    tracker: &mut AllowTracker,
    diags: &mut Vec<Diagnostic>,
) {
    let idents = collect_hash_idents(lines);
    if idents.is_empty() {
        return;
    }
    for (n, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let mut hit: Option<String> = None;
        for method in HASH_ITER_METHODS {
            let mut start = 0;
            while let Some(at) = code[start..].find(method) {
                let at = start + at;
                if let Some(recv) = receiver_before(code, at) {
                    if idents.contains(&recv) {
                        hit = Some(recv);
                        break;
                    }
                }
                start = at + 1;
            }
            if hit.is_some() {
                break;
            }
            // Continuation: a chain split across lines, with the
            // receiver closing the previous code line.
            if code.trim_start().starts_with(method) {
                if let Some(prev) = previous_code_line(lines, n) {
                    if let Some(recv) = trailing_ident(&lines[prev].code) {
                        if idents.contains(&recv) {
                            hit = Some(recv);
                            break;
                        }
                    }
                }
            }
        }
        if hit.is_none() {
            if let Some(recv) = for_loop_target(code) {
                if idents.contains(&recv) {
                    hit = Some(recv);
                }
            }
        }
        if let Some(recv) = hit {
            if tracker.allowed(rel_path, lines, n, RULE_HASH_ITERATION) {
                continue;
            }
            diags.push(Diagnostic::new(
                rel_path,
                n as u64 + 1,
                RULE_HASH_ITERATION,
                format!(
                    "iteration over hash container `{recv}` visits entries in hash order; \
                     sort first or annotate an order-insensitive use with \
                     `// lint:allow(hash-iteration)`"
                ),
            ));
        }
    }
}

/// Identifiers bound to a `HashMap`/`HashSet` in this file: `let x =
/// HashMap::new()` bindings and `field: HashMap<..>` declarations.
fn collect_hash_idents(lines: &[LineInfo]) -> Vec<String> {
    let mut idents = Vec::new();
    for line in lines {
        let code = &line.code;
        if !code.contains("HashMap") && !code.contains("HashSet") {
            continue;
        }
        let trimmed = code.trim_start();
        if let Some(rest) = trimmed.strip_prefix("let ") {
            let rest = rest.trim_start_matches("mut ").trim_start();
            let ident: String = rest.chars().take_while(|&c| is_ident_char(c)).collect();
            if !ident.is_empty() {
                idents.push(ident);
            }
            continue;
        }
        // `name: HashMap<..>` — struct fields, typed lets, fn params.
        for ty in ["HashMap", "HashSet"] {
            let mut start = 0;
            while let Some(at) = code[start..].find(ty) {
                let at = start + at;
                let before = code[..at].trim_end();
                if let Some(stripped) = before.strip_suffix(':') {
                    if let Some(ident) = trailing_ident(stripped) {
                        idents.push(ident);
                    }
                }
                start = at + 1;
            }
        }
    }
    idents.sort();
    idents.dedup();
    idents
}

/// The identifier immediately preceding position `at` (a `.method` call
/// site), skipping nothing else: `self.stamps.iter()` yields `stamps`.
fn receiver_before(code: &str, at: usize) -> Option<String> {
    let ident: String = code[..at]
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!ident.is_empty()).then_some(ident)
}

/// The identifier a line's code ends with (ignoring trailing spaces).
fn trailing_ident(code: &str) -> Option<String> {
    let trimmed = code.trim_end();
    let ident: String = trimmed
        .chars()
        .rev()
        .take_while(|&c| is_ident_char(c))
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    (!ident.is_empty() && !ident.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .then_some(ident)
}

/// Index of the nearest preceding line with non-blank code.
fn previous_code_line(lines: &[LineInfo], n: usize) -> Option<usize> {
    (0..n).rev().find(|&i| !lines[i].code.trim().is_empty())
}

/// The iterated identifier of a `for .. in <expr> {` line, stripped of
/// `&`, `&mut`, and a `self.` prefix. Returns `None` for non-loops or
/// compound expressions (method calls handle those).
fn for_loop_target(code: &str) -> Option<String> {
    let trimmed = code.trim_start();
    if !trimmed.starts_with("for ") {
        return None;
    }
    let after_in = trimmed.split(" in ").nth(1)?;
    let expr = after_in
        .split('{')
        .next()
        .unwrap_or("")
        .trim()
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim();
    // A dotted path of plain identifiers (`stamps`, `self.stamps`,
    // `s.stamps`): the hash container is the last segment. Method-call
    // expressions (`map.keys()`) are caught by the method scan instead.
    let mut last = None;
    for seg in expr.split('.') {
        if seg.is_empty() || !seg.chars().all(is_ident_char) {
            return None;
        }
        last = Some(seg);
    }
    last.map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::check_source;

    fn scan_at(path: &str, text: &str, fam: RuleFamily) -> Vec<Diagnostic> {
        scan(path, &analyze(text), &[fam])
    }

    #[test]
    fn unwrap_flagged_only_without_allow() {
        let text = "fn f() {\n  x.unwrap();\n  y.expect(\"z\"); // lint:allow(unwrap)\n}\n";
        let d = scan_at("crates/sim/src/a.rs", text, RuleFamily::ErrorDiscipline);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].rule, RULE_UNWRAP);
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let text = "fn f() { x.unwrap_or_else(|| 3); y.unwrap_or(4); z.expect_err_helper(); }\n";
        let d = scan_at("crates/sim/src/a.rs", text, RuleFamily::ErrorDiscipline);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unwrap_outside_scope_is_ignored() {
        let d = scan_at(
            "crates/bench/src/lib.rs",
            "fn f() { x.unwrap(); }\n",
            RuleFamily::ErrorDiscipline,
        );
        assert!(d.is_empty());
    }

    #[test]
    fn wall_clock_and_randomness_flagged() {
        let text = "use std::time::Instant;\nlet t = Instant::now();\nlet r = thread_rng();\n";
        let d = scan_at("crates/core/src/a.rs", text, RuleFamily::Determinism);
        let rules: Vec<&str> = d.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&RULE_WALL_CLOCK));
        assert!(rules.contains(&RULE_RANDOMNESS));
    }

    #[test]
    fn hash_iteration_same_line_continuation_and_for_loop() {
        let text = "struct S { stamps: HashMap<u64, u64> }\n\
                    fn f(s: &S) {\n\
                    \x20 for (k, v) in &s.stamps {}\n\
                    \x20 s.stamps.iter().count();\n\
                    \x20 s.stamps\n\
                    \x20     .iter()\n\
                    \x20     .count();\n\
                    }\n";
        let d = scan_at("crates/sim/src/a.rs", text, RuleFamily::Determinism);
        let lines: Vec<u64> = d.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![3, 4, 6], "{d:?}");
    }

    #[test]
    fn vec_iteration_is_not_flagged() {
        let text = "fn f() { let v: Vec<u32> = Vec::new(); v.iter().count(); }\n";
        let d = scan_at("crates/sim/src/a.rs", text, RuleFamily::Determinism);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn external_imports_flagged_workspace_allowed() {
        let text = "use serde::Serialize;\nuse std::fmt;\nuse uvm_util::ToJson;\nuse crate::x;\n";
        let d = scan_at("crates/types/src/a.rs", text, RuleFamily::Hermeticity);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("serde"));
    }

    #[test]
    fn standalone_allow_line_covers_the_next_code_line() {
        let text = "fn f() {\n  // lint:allow(unwrap) — guarded by the caller\n  x.unwrap();\n  y.unwrap();\n}\n";
        let d = scan_at("crates/sim/src/a.rs", text, RuleFamily::ErrorDiscipline);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn local_module_reexports_are_allowed() {
        let text = "pub mod engine;\nmod detail;\npub use engine::Sim;\nuse detail::helper;\nuse report::Row;\n";
        let d = scan_at("crates/sim/src/lib.rs", text, RuleFamily::Hermeticity);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 5);
        assert!(d[0].message.contains("report"));
    }

    #[test]
    fn profile_guard_flags_unguarded_accumulation() {
        let text = "fn f(prof: &mut Profiler) {\n  prof.charge(A, 1);\n}\n";
        let d = scan_at(
            "crates/sim/src/engine.rs",
            text,
            RuleFamily::ErrorDiscipline,
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_PROFILE_GUARD);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn profile_guard_accepts_guarded_and_distant_guarded_calls() {
        // Guard on the binding line, accumulation several lines below
        // (multi-line charge computations), still within the window.
        let text = "fn f(&mut self) {\n\
                    \x20 if let Some(prof) = self.profiler.as_mut() {\n\
                    \x20   let a = 1;\n\
                    \x20   let b = 2;\n\
                    \x20   let c = a + b;\n\
                    \x20   prof.charge(A, c);\n\
                    \x20   prof.warp_stalled(0, c);\n\
                    \x20 }\n\
                    }\n";
        let d = scan_at(
            "crates/sim/src/engine.rs",
            text,
            RuleFamily::ErrorDiscipline,
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn profile_guard_stops_at_function_boundaries() {
        // A guard in a *previous* function must not cover this one.
        let text = "fn g(&mut self) {\n\
                    \x20 if let Some(prof) = self.profiler.as_mut() {\n\
                    \x20   prof.charge(A, 1);\n\
                    \x20 }\n\
                    }\n\
                    fn f(prof: &mut Profiler) {\n\
                    \x20 prof.note_retry(1, 2);\n\
                    }\n";
        let d = scan_at(
            "crates/sim/src/engine.rs",
            text,
            RuleFamily::ErrorDiscipline,
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 7);
    }

    #[test]
    fn profile_guard_exempts_profile_rs_and_out_of_scope_files() {
        let text = "fn f(prof: &mut Profiler) {\n  prof.charge(A, 1);\n}\n";
        for path in ["crates/sim/src/profile.rs", "crates/bench/src/runner.rs"] {
            let d = scan_at(path, text, RuleFamily::ErrorDiscipline);
            assert!(d.is_empty(), "{path}: {d:?}");
        }
    }

    #[test]
    fn tenant_isolation_exempts_the_impl_block_without_annotations() {
        let text = "pub struct MixState { slots: Vec<Option<u32>> }\n\
                    impl MixState {\n\
                    \x20 fn record(&mut self, idx: usize) {\n\
                    \x20   self.slots[idx] = Some(1);\n\
                    \x20 }\n\
                    \x20 fn total(&self) -> usize {\n\
                    \x20   self.slots.len()\n\
                    \x20 }\n\
                    }\n\
                    fn bypass(state: &mut MixState) {\n\
                    \x20 state.slots[0] = None;\n\
                    \x20 state.slots.iter().count();\n\
                    }\n";
        let d = check_source(
            "crates/bench/src/tenant.rs",
            text,
            &[RuleFamily::TenantIsolation],
        );
        let lines: Vec<u64> = d.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![11, 12], "{d:?}");
        assert!(d.iter().all(|d| d.rule == RULE_TENANT_ISOLATION));
    }

    #[test]
    fn tenant_isolation_is_workspace_wide_in_v2() {
        // v1 only looked at files named tenant*; v2 follows the symbol.
        let text = "fn f(s: &mut MixState) { s.slots[0] = None; }\n";
        for path in ["crates/bench/src/campaign.rs", "crates/core/src/hir.rs"] {
            let d = check_source(path, text, &[RuleFamily::TenantIsolation]);
            assert_eq!(d.len(), 1, "{path}: {d:?}");
        }
    }

    #[test]
    fn rng_taint_flags_literal_and_untraceable_seeds() {
        let text = "const AMBIENT: u64 = 7;\n\
                    fn good(seed: u64) -> Rng {\n\
                    \x20 Rng::seed_from_u64(seed ^ 0x9E37)\n\
                    }\n\
                    fn literal() -> Rng {\n\
                    \x20 Rng::seed_from_u64(0xD1B)\n\
                    }\n\
                    fn ambient() -> Rng {\n\
                    \x20 Rng::seed_from_u64(AMBIENT)\n\
                    }\n";
        let d = check_source("crates/sim/src/a.rs", text, &[RuleFamily::DeterminismTaint]);
        let lines: Vec<u64> = d.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![6, 9], "{d:?}");
        assert!(d.iter().all(|d| d.rule == RULE_RNG_TAINT));
        assert!(d[1].message.contains("AMBIENT"));
    }

    #[test]
    fn rng_taint_honors_allow() {
        let text = "fn f() -> Rng {\n\
                    \x20 Rng::seed_from_u64(3) // lint:allow(rng-taint) — fixed dither stream\n\
                    }\n";
        let d = check_source("crates/sim/src/a.rs", text, &[RuleFamily::DeterminismTaint]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn panic_reachability_carries_trail_and_honors_unwrap_allow() {
        let text = "pub fn run_campaign() { worker(0); }\n\
                    fn worker(i: u64) {\n\
                    \x20 merge(i);\n\
                    \x20 audit(i);\n\
                    }\n\
                    fn merge(i: u64) { slots(i).unwrap(); }\n\
                    fn audit(i: u64) {\n\
                    \x20 slots(i).expect(\"present\") // lint:allow(unwrap) — audited above\n\
                    }\n\
                    fn slots(i: u64) -> Option<u64> { Some(i) }\n";
        let d = check_source(
            "crates/bench/src/campaign.rs",
            text,
            &[RuleFamily::PanicReachability],
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 6);
        assert_eq!(d[0].rule, RULE_PANIC_REACHABILITY);
        assert_eq!(d[0].trail, vec!["run_campaign", "worker", "merge"]);
        assert!(d[0].message.contains("run_campaign"));
    }

    #[test]
    fn panic_unreachable_from_roots_is_not_flagged() {
        let text = "pub fn run_campaign() { safe(); }\n\
                    fn safe() -> u64 { 3 }\n\
                    fn orphan() { x.unwrap(); }\n";
        let d = check_source(
            "crates/bench/src/campaign.rs",
            text,
            &[RuleFamily::PanicReachability],
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn stale_allow_flags_unused_and_unknown_ids() {
        let text = "fn f(x: Option<u32>) -> u32 {\n\
                    \x20 let y = 3; // lint:allow(unwrap)\n\
                    \x20 let z = 4; // lint:allow(no-such-rule)\n\
                    \x20 x.unwrap() // lint:allow(unwrap) — used, stays clean\n\
                    }\n";
        let d = check_source("crates/sim/src/a.rs", text, RuleFamily::ALL);
        let hits: Vec<(u64, &str)> = d.iter().map(|d| (d.line, d.rule)).collect();
        assert_eq!(
            hits,
            vec![(2, RULE_STALE_ALLOW), (3, RULE_STALE_ALLOW)],
            "{d:?}"
        );
        assert!(d[0].message.contains("unwrap"));
        assert!(d[1].message.contains("no-such-rule"));
    }

    #[test]
    fn stale_allow_skips_ids_whose_consumers_did_not_run() {
        // An unused unwrap allow is only judged when both
        // error-discipline and panic-reachability ran.
        let text = "fn f() {\n  let y = 3; // lint:allow(unwrap)\n}\n";
        let d = check_source(
            "crates/sim/src/a.rs",
            text,
            &[RuleFamily::ErrorDiscipline, RuleFamily::StaleAllow],
        );
        assert!(d.is_empty(), "{d:?}");
        let d = check_source(
            "crates/sim/src/a.rs",
            text,
            &[
                RuleFamily::ErrorDiscipline,
                RuleFamily::PanicReachability,
                RuleFamily::StaleAllow,
            ],
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RULE_STALE_ALLOW);
    }

    #[test]
    fn test_regions_are_exempt() {
        let text = "fn f() {}\n#[cfg(test)]\nmod tests { fn g() { x.unwrap(); } }\n";
        let d = scan_at("crates/sim/src/a.rs", text, RuleFamily::ErrorDiscipline);
        assert!(d.is_empty());
    }
}
