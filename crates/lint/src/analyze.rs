//! The line analyzer: a hand-rolled lexical pass that prepares Rust
//! source for rule matching.
//!
//! The analyzer does not parse Rust; it performs the one lexical job the
//! rules need done *correctly*: deciding which bytes of each line are
//! code, as opposed to comment prose, string/char-literal contents, or
//! test-only regions. Everything that is not code is blanked with
//! spaces, so the rules can use plain substring matching without being
//! fooled by `".unwrap()"` inside a string or a banned API named in a
//! doc comment.
//!
//! Along the way it extracts `// lint:allow(rule-id)` annotations, the
//! per-line allowlist syntax documented in DESIGN.md §10.

/// One analyzed source line.
#[derive(Debug, Clone)]
pub struct LineInfo {
    /// The line with comments and literal contents blanked (same length
    /// in characters as the original, so column arithmetic holds).
    pub code: String,
    /// Rule ids named by `// lint:allow(...)` annotations on this line.
    pub allows: Vec<String>,
    /// Whether the line sits at or after the file's `#[cfg(test)]`
    /// marker (this workspace keeps test modules at end of file).
    pub in_test: bool,
}

impl LineInfo {
    /// Whether `rule` is allowed on this line.
    pub fn allows(&self, rule: &str) -> bool {
        self.allows.iter().any(|a| a == rule)
    }
}

/// Lexer carry state between lines.
enum Mode {
    /// Plain code.
    Code,
    /// Inside a (possibly nested) `/* */` comment at the given depth.
    BlockComment(u32),
    /// Inside a `"..."` string literal.
    Str,
    /// Inside a raw string literal closed by `"` plus this many `#`s.
    RawStr(u32),
}

/// Analyzes a whole source text into per-line code/metadata.
pub fn analyze(text: &str) -> Vec<LineInfo> {
    let mut mode = Mode::Code;
    let mut in_test = false;
    let mut out = Vec::new();
    for line in text.lines() {
        let (code, allows, next_mode) = scan_line(line, mode);
        mode = next_mode;
        if code.contains("#[cfg(test)]") {
            in_test = true;
        }
        out.push(LineInfo {
            code,
            allows,
            in_test,
        });
    }
    out
}

/// Scans one line under the inherited `mode`, producing the blanked code
/// text, any allow annotations, and the mode carried into the next line.
fn scan_line(line: &str, mut mode: Mode) -> (String, Vec<String>, Mode) {
    let chars: Vec<char> = line.chars().collect();
    let mut code = String::with_capacity(chars.len());
    let mut allows = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        match mode {
            Mode::BlockComment(depth) => {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(depth + 1);
                    code.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    code.push_str("  ");
                    i += 2;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Str => {
                if chars[i] == '\\' {
                    code.push_str("  ");
                    i += 2;
                } else if chars[i] == '"' {
                    mode = Mode::Code;
                    code.push(' ');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if chars[i] == '"' && closes_raw(&chars, i + 1, hashes) {
                    mode = Mode::Code;
                    let skip = 1 + hashes as usize;
                    for _ in 0..skip.min(chars.len() - i) {
                        code.push(' ');
                    }
                    i += skip;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            Mode::Code => {
                let c = chars[i];
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    // Line comment: harvest allow annotations, blank the
                    // rest of the line.
                    let comment: String = chars[i..].iter().collect();
                    collect_allows(&comment, &mut allows);
                    for _ in i..chars.len() {
                        code.push(' ');
                    }
                    i = chars.len();
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    mode = Mode::BlockComment(1);
                    code.push_str("  ");
                    i += 2;
                } else if let Some(hashes) = raw_string_at(&chars, i) {
                    // r"..", r#".."#, br".." etc.: blank the prefix.
                    let prefix = prefix_len(&chars, i) + hashes as usize + 1;
                    for _ in 0..prefix {
                        code.push(' ');
                    }
                    i += prefix;
                    mode = Mode::RawStr(hashes);
                } else if c == '"'
                    || (c == 'b' && chars.get(i + 1) == Some(&'"') && boundary(&chars, i))
                {
                    let skip = if c == 'b' { 2 } else { 1 };
                    for _ in 0..skip {
                        code.push(' ');
                    }
                    i += skip;
                    mode = Mode::Str;
                } else if c == '\'' {
                    // Char literal vs lifetime.
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: blank to the closing quote.
                        let mut j = i + 2;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        for _ in i..=j.min(chars.len() - 1) {
                            code.push(' ');
                        }
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        // 'x' char literal.
                        code.push_str("   ");
                        i += 3;
                    } else {
                        // Lifetime: keep scanning, blank just the quote.
                        code.push(' ');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    // A line comment never carries across lines.
    (code, allows, mode)
}

/// Whether `chars[at..]` holds `hashes` consecutive `#`s (raw-string
/// terminator check).
fn closes_raw(chars: &[char], at: usize, hashes: u32) -> bool {
    let n = hashes as usize;
    chars.len() >= at + n && chars[at..at + n].iter().all(|&c| c == '#')
}

/// Detects a raw-string opener at `i` (`r"`, `r#"`, `br"` ...), returning
/// its hash count.
fn raw_string_at(chars: &[char], i: usize) -> Option<u32> {
    if !boundary(chars, i) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Length of the `r`/`br` prefix of the raw string starting at `i`.
fn prefix_len(chars: &[char], i: usize) -> usize {
    if chars.get(i) == Some(&'b') {
        2
    } else {
        1
    }
}

/// Whether position `i` starts a fresh token (previous char is not an
/// identifier character), so `br"` in `rebr"` is not a string prefix.
fn boundary(chars: &[char], i: usize) -> bool {
    i == 0 || !is_ident_char(chars[i - 1])
}

/// Identifier character test shared with the rules.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Extracts rule ids from every `lint:allow(a, b)` in a comment.
fn collect_allows(comment: &str, allows: &mut Vec<String>) {
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        let after = &rest[at + "lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            return;
        };
        for id in after[..close].split(',') {
            let id = id.trim();
            if !id.is_empty() {
                allows.push(id.to_string());
            }
        }
        rest = &after[close + 1..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let lines = analyze("let x = \".unwrap()\"; // .expect( here\nx.unwrap();");
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(!lines[0].code.contains(".expect("));
        assert!(lines[1].code.contains(".unwrap()"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let text = "/* outer /* inner */ still comment .unwrap() */ code();\n/* open\n.unwrap()\n*/ after();";
        let lines = analyze(text);
        assert!(lines[0].code.contains("code()"));
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(!lines[2].code.contains(".unwrap()"));
        assert!(lines[3].code.contains("after()"));
    }

    #[test]
    fn raw_strings_span_lines() {
        let text = "let s = r#\"first .unwrap()\nsecond .expect(\"#; tail();";
        let lines = analyze(text);
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(!lines[1].code.contains(".expect("));
        assert!(lines[1].code.contains("tail()"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let lines = analyze("fn f<'a>(x: &'a str) { x.unwrap(); }");
        assert!(lines[0].code.contains(".unwrap()"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let lines = analyze("let c = '\"'; still_code();");
        assert!(lines[0].code.contains("still_code()"));
        let lines = analyze("let c = '\\''; code();");
        assert!(lines[0].code.contains("code()"));
    }

    #[test]
    fn allow_annotations_are_harvested() {
        let lines = analyze("x.unwrap(); // lint:allow(unwrap, hash-iteration)");
        assert!(lines[0].allows("unwrap"));
        assert!(lines[0].allows("hash-iteration"));
        assert!(!lines[0].allows("wall-clock"));
    }

    #[test]
    fn cfg_test_marks_the_tail_of_the_file() {
        let lines = analyze("fn a() {}\n#[cfg(test)]\nmod tests {}\n");
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
    }

    #[test]
    fn cfg_test_inside_a_string_is_ignored() {
        let lines = analyze("let s = \"#[cfg(test)]\";\nlater();");
        assert!(!lines[1].in_test);
    }
}
