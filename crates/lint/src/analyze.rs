//! The line-view adapter over the lexer.
//!
//! v1 of the engine was a line analyzer: it blanked comment prose and
//! literal contents so rules could use plain substring matching. v2
//! replaces the scanner with the full lexer ([`crate::lexer`]) but
//! keeps this module's [`LineInfo`] surface: the line-oriented rule
//! families still consume blanked per-line code, now derived from the
//! same single lex pass that feeds the item index and call graph. The
//! blanking semantics are unchanged, which is what kept the golden
//! diagnostics byte-identical across the rewrite.

use crate::lexer::{self, LexedFile};

pub use crate::lexer::is_ident_char;

/// One analyzed source line.
#[derive(Debug, Clone)]
pub struct LineInfo {
    /// The line with comments and literal contents blanked (same length
    /// in characters as the original, so column arithmetic holds).
    pub code: String,
    /// Rule ids named by `// lint:allow(...)` annotations on this line.
    pub allows: Vec<String>,
    /// Whether the line sits at or after the file's `#[cfg(test)]`
    /// marker (this workspace keeps test modules at end of file).
    pub in_test: bool,
}

impl LineInfo {
    /// Whether `rule` is allowed on this line.
    pub fn allows(&self, rule: &str) -> bool {
        self.allows.iter().any(|a| a == rule)
    }
}

/// The per-line view of an already-lexed file.
pub fn line_infos(lexed: &LexedFile) -> Vec<LineInfo> {
    lexed
        .lines
        .iter()
        .map(|l| LineInfo {
            code: l.code.clone(),
            allows: l.allows.clone(),
            in_test: l.in_test,
        })
        .collect()
}

/// Analyzes a whole source text into per-line code/metadata
/// (convenience wrapper: lex + [`line_infos`]).
pub fn analyze(text: &str) -> Vec<LineInfo> {
    line_infos(&lexer::lex(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let lines = analyze("let x = \".unwrap()\"; // .expect( here\nx.unwrap();");
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(!lines[0].code.contains(".expect("));
        assert!(lines[1].code.contains(".unwrap()"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let text = "/* outer /* inner */ still comment .unwrap() */ code();\n/* open\n.unwrap()\n*/ after();";
        let lines = analyze(text);
        assert!(lines[0].code.contains("code()"));
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(!lines[2].code.contains(".unwrap()"));
        assert!(lines[3].code.contains("after()"));
    }

    #[test]
    fn raw_strings_span_lines() {
        let text = "let s = r#\"first .unwrap()\nsecond .expect(\"#; tail();";
        let lines = analyze(text);
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(!lines[1].code.contains(".expect("));
        assert!(lines[1].code.contains("tail()"));
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let lines = analyze("fn f<'a>(x: &'a str) { x.unwrap(); }");
        assert!(lines[0].code.contains(".unwrap()"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let lines = analyze("let c = '\"'; still_code();");
        assert!(lines[0].code.contains("still_code()"));
        let lines = analyze("let c = '\\''; code();");
        assert!(lines[0].code.contains("code()"));
    }

    #[test]
    fn allow_annotations_are_harvested() {
        let lines = analyze("x.unwrap(); // lint:allow(unwrap, hash-iteration)");
        assert!(lines[0].allows("unwrap"));
        assert!(lines[0].allows("hash-iteration"));
        assert!(!lines[0].allows("wall-clock"));
    }

    #[test]
    fn cfg_test_marks_the_tail_of_the_file() {
        let lines = analyze("fn a() {}\n#[cfg(test)]\nmod tests {}\n");
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
    }

    #[test]
    fn cfg_test_inside_a_string_is_ignored() {
        let lines = analyze("let s = \"#[cfg(test)]\";\nlater();");
        assert!(!lines[1].in_test);
    }

    #[test]
    fn blanked_lines_keep_character_length() {
        let text = "let s = \"abc\"; // tail\nlet r = r#\"x\"#;\n";
        for (orig, info) in text.lines().zip(analyze(text)) {
            assert_eq!(orig.chars().count(), info.code.chars().count());
        }
    }
}
