//! Integration tests for `uvm-lint`: seeded fixture violations (one per
//! rule family), a clean fixture, a pinned golden diagnostic report, a
//! drift check against every paper-constants manifest entry, and the
//! self-check that the live workspace lints clean.
//!
//! Fixtures live under `tests/fixtures/` (skipped by
//! `check_workspace`, never compiled) and are linted under synthetic
//! workspace-relative paths so rule scoping applies as it would in the
//! real tree. Regenerate the golden report with
//! `UPDATE_GOLDEN=1 cargo test -p uvm-lint` after an intentional
//! diagnostic format change.

use std::fs;
use std::path::{Path, PathBuf};

use uvm_lint::manifest::MANIFEST;
use uvm_lint::{check_source, check_workspace, report_json, Diagnostic, RuleFamily};

/// Each fixture with the workspace path it impersonates.
const FIXTURES: &[(&str, &str)] = &[
    ("determinism.rs", "crates/sim/src/fixture_determinism.rs"),
    ("hermeticity.rs", "crates/util/src/fixture_hermeticity.rs"),
    (
        "error_discipline.rs",
        "crates/core/src/fixture_error_discipline.rs",
    ),
    ("constants.rs", "crates/core/src/config.rs"),
    (
        "profile_guard.rs",
        "crates/sim/src/fixture_profile_guard.rs",
    ),
    ("tenant_isolation.rs", "crates/bench/src/tenant_fixture.rs"),
    ("panic_reachability.rs", "crates/bench/src/fixture_panic.rs"),
    ("rng_taint.rs", "crates/sim/src/fixture_rng_taint.rs"),
    ("stale_allow.rs", "crates/sim/src/fixture_stale_allow.rs"),
    ("clean.rs", "crates/sim/src/fixture_clean.rs"),
];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture(name: &str) -> String {
    let path = fixture_dir().join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let (_, rel) = FIXTURES
        .iter()
        .find(|(f, _)| *f == name)
        .unwrap_or_else(|| panic!("unknown fixture {name}"));
    check_source(rel, &fixture(name), RuleFamily::ALL)
}

fn lines_and_rules(diags: &[Diagnostic]) -> Vec<(u64, &str)> {
    diags.iter().map(|d| (d.line, d.rule)).collect()
}

#[test]
fn determinism_fixture_reports_every_rule_with_location() {
    let d = lint_fixture("determinism.rs");
    assert_eq!(
        lines_and_rules(&d),
        vec![
            (10, "wall-clock"),
            (11, "randomness"),
            (13, "hash-iteration")
        ],
        "{d:?}"
    );
    assert!(d
        .iter()
        .all(|d| d.file == "crates/sim/src/fixture_determinism.rs"));
}

#[test]
fn hermeticity_fixture_reports_external_import() {
    let d = lint_fixture("hermeticity.rs");
    assert_eq!(lines_and_rules(&d), vec![(3, "external-import")], "{d:?}");
    assert!(d[0].message.contains("serde"));
}

#[test]
fn error_discipline_fixture_reports_unannotated_sites_only() {
    let d = lint_fixture("error_discipline.rs");
    assert_eq!(
        lines_and_rules(&d),
        vec![(4, "unwrap"), (5, "unwrap"), (7, "unwrap")],
        "{d:?}"
    );
    // The annotated site on line 13 must be exempt.
    assert!(d.iter().all(|d| d.line != 13));
}

#[test]
fn constants_fixture_reports_drifted_literal() {
    let d = lint_fixture("constants.rs");
    assert_eq!(lines_and_rules(&d), vec![(17, "paper-constants")], "{d:?}");
    assert!(d[0].message.contains("interval_len"));
    assert!(d[0].message.contains("63"));
    assert!(d[0].message.contains("64"));
}

#[test]
fn profile_guard_fixture_reports_the_unguarded_site_only() {
    let d = lint_fixture("profile_guard.rs");
    assert_eq!(lines_and_rules(&d), vec![(13, "profile-guard")], "{d:?}");
    assert!(d[0].message.contains("opt-in guard"));
    // Guarded (line 19) and annotated (line 24) sites must be exempt.
    assert!(d.iter().all(|d| d.line != 19 && d.line != 24));
}

#[test]
fn tenant_isolation_fixture_reports_bypassing_sites_only() {
    let d = lint_fixture("tenant_isolation.rs");
    assert_eq!(
        lines_and_rules(&d),
        vec![
            (11, "tenant-isolation"),
            (12, "tenant-isolation"),
            (13, "tenant-isolation")
        ],
        "{d:?}"
    );
    assert!(d[0].message.contains("impl MixState"));
    // The accessors inside `impl MixState` (lines 18 and 22) are exempt
    // by symbol position — no allow annotations, nothing stale.
    assert!(d.iter().all(|d| d.line != 18 && d.line != 22));
}

#[test]
fn panic_reachability_fixture_reports_reachable_sites_with_trails() {
    let d = lint_fixture("panic_reachability.rs");
    assert_eq!(
        lines_and_rules(&d),
        vec![(15, "panic-reachability"), (20, "panic-reachability")],
        "{d:?}"
    );
    // Each finding carries the call trail from the root.
    assert_eq!(d[0].trail, vec!["run_campaign", "worker"]);
    assert_eq!(d[1].trail, vec!["run_campaign", "worker", "merge"]);
    assert!(d[0].message.contains("reachable from root `run_campaign`"));
    // The annotated site (line 26) and the orphan unreachable from any
    // root (line 34) must both be exempt.
    assert!(d.iter().all(|d| d.line != 26 && d.line != 34));
}

#[test]
fn rng_taint_fixture_reports_untraceable_seeds_only() {
    let d = lint_fixture("rng_taint.rs");
    assert_eq!(
        lines_and_rules(&d),
        vec![(15, "rng-taint"), (19, "rng-taint")],
        "{d:?}"
    );
    assert!(d[0].message.contains("literal"));
    assert!(d[1].message.contains("GLOBAL_MAGIC"));
    // Param-derived (line 7), config-derived (line 11), and annotated
    // (line 23) seeds must be exempt.
    assert!(d
        .iter()
        .all(|d| d.line != 7 && d.line != 11 && d.line != 23));
}

#[test]
fn stale_allow_fixture_reports_unused_and_unknown_allows() {
    let d = lint_fixture("stale_allow.rs");
    assert_eq!(
        lines_and_rules(&d),
        vec![(17, "stale-allow"), (21, "stale-allow")],
        "{d:?}"
    );
    assert!(d[0].message.contains("suppresses nothing"));
    // The consumed allow on the real hash-iteration hit (line 14) is
    // not stale, and the hit itself stays suppressed.
    assert!(d.iter().all(|d| d.line != 14));
}

#[test]
fn clean_fixture_is_clean() {
    let d = lint_fixture("clean.rs");
    assert!(d.is_empty(), "{d:?}");
}

/// The full diagnostic report over every fixture, pinned as golden JSON.
/// Catches silent changes to rule ids, message wording, ordering, or the
/// report envelope.
#[test]
fn fixture_diagnostics_match_golden_json() {
    let mut diags = Vec::new();
    for (name, _) in FIXTURES {
        diags.extend(lint_fixture(name));
    }
    let actual = format!("{}\n", report_json(&diags).pretty());
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/diagnostics.json");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        fs::write(&golden_path, &actual).expect("write golden");
        return;
    }
    let golden = fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", golden_path.display()));
    assert_eq!(
        actual, golden,
        "diagnostic report drifted from tests/golden/diagnostics.json; \
         rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The acceptance gate: the live workspace has zero violations across
/// every rule family.
#[test]
fn live_workspace_lints_clean() {
    let diags = check_workspace(&workspace_root(), RuleFamily::ALL).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace must lint clean:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Editing any pinned constant in the real config sources must trip the
/// paper-constants rule: for each manifest entry, mutate the first
/// pinned literal of the real file in memory and expect a diagnostic.
#[test]
fn every_manifest_entry_detects_drift_in_real_sources() {
    let root = workspace_root();
    for spec in MANIFEST {
        let path = root.join(spec.file_suffix);
        let text =
            fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let (field, values) = spec.fields[0];
        let needle = format!("{field}: {}", values[0]);
        assert!(
            text.contains(&needle),
            "{}: expected literal `{needle}` not found; manifest and source \
             have diverged",
            spec.context
        );
        let drifted = text.replace(&needle, &format!("{field}: 987654321"));
        let diags = check_source(spec.file_suffix, &drifted, &[RuleFamily::PaperConstants]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "paper-constants" && d.message.contains(field)),
            "{}: drifting `{field}` went undetected: {diags:?}",
            spec.context
        );
    }
}
