// Fixture: tenant-isolation violations. Linted under the synthetic path
// crates/bench/src/tenant_fixture.rs (the tenant-layer scope). Since v2
// the rule is symbol-aware: accessors inside the `impl MixState` block
// are exempt by position — no allow annotations needed.

struct MixState {
    slots: Vec<Option<u64>>,
}

fn bypasses_accessors(state: &mut MixState, idx: usize) {
    state.slots[idx] = Some(1);
    let _ = state.slots.get(idx);
    state.slots.iter().count();
}

impl MixState {
    fn record(&mut self, idx: usize) {
        self.slots[idx] = Some(2);
    }

    fn total(&self) -> usize {
        self.slots.len()
    }
}
