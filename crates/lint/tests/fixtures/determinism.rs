//! Seeded determinism violations (lint fixture — never compiled).

use std::collections::HashMap;

pub struct Telemetry {
    samples: HashMap<u64, u64>,
}

pub fn jitter(t: &Telemetry) -> u64 {
    let started = std::time::Instant::now();
    let seed = thread_rng();
    let mut total = 0;
    for (_, v) in &t.samples {
        total += v;
    }
    total + seed + started.elapsed().as_nanos() as u64
}
