//! Seeded profile-guard violation (lint fixture — never compiled).
//!
//! Impersonates engine code under `crates/sim/src/`: profiler
//! accumulation methods must sit behind the opt-in attachment guard.

pub struct Engine {
    profiler: Option<Profiler>,
    cycles: u64,
}

impl Engine {
    pub fn unguarded(&mut self, prof: &mut Profiler) {
        prof.charge(Account::SmStall, self.cycles);
    }

    pub fn guarded(&mut self) {
        if let Some(prof) = self.profiler.as_mut() {
            let walk = self.cycles / 2;
            prof.charge(Account::PageWalk, walk);
        }
    }

    pub fn annotated(&mut self, prof: &mut Profiler) {
        prof.open_span(1, 2); // lint:allow(profile-guard) — fixture: annotated sites exempt
    }
}
