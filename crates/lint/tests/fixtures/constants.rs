//! Seeded paper-constant drift (lint fixture — never compiled).
//! Impersonates `crates/core/src/config.rs`; `interval_len` has drifted
//! from the paper's 64 to 63.

pub struct HpeConfig {
    pub page_set_size: u32,
    pub interval_len: u32,
    pub transfer_interval: u32,
    pub ratio1_threshold: f64,
    pub counter_max: u32,
}

impl HpeConfig {
    pub fn paper_default() -> Self {
        HpeConfig {
            page_set_size: 16,
            interval_len: 63,
            transfer_interval: 16,
            ratio1_threshold: 0.3,
            counter_max: 64,
        }
    }
}
