//! Seeded hermeticity violation (lint fixture — never compiled).

use serde::Serialize;
use std::fmt;

#[derive(Serialize)]
pub struct Row {
    pub label: String,
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}
