// Fixture: determinism-taint (rng-taint) violations. Linted under the
// synthetic path crates/sim/src/fixture_rng_taint.rs. Every generator
// must be seeded from a parameter or config field; literals and
// untraceable idents are flagged.

pub fn fresh_stream(seed: u64) -> Rng {
    Rng::seed_from_u64(seed ^ 0x9E37_79B9)
}

pub fn config_stream(cfg: &SimConfig) -> Rng {
    Rng::seed_from_u64(cfg.seed)
}

pub fn literal_stream() -> Rng {
    Rng::seed_from_u64(0xDEAD)
}

pub fn untraceable_stream() -> Rng {
    Rng::seed_from_u64(GLOBAL_MAGIC)
}

pub fn pinned_stream() -> Rng {
    Rng::seed_from_u64(0xD1B) // lint:allow(rng-taint) — fixture pin
}
