// Fixture: panic-reachability violations. Linted under the synthetic
// path crates/bench/src/fixture_panic.rs — outside the error-discipline
// scope, so only the call-graph rule fires. `run_campaign` is a root;
// everything it transitively calls is on the hook.

pub fn run_campaign(n: u64) -> u64 {
    let mut total = 0;
    for i in 0..n {
        total += worker(i) + audited(i);
    }
    total
}

fn worker(i: u64) -> u64 {
    merge(i).unwrap()
}

fn merge(i: u64) -> Option<u64> {
    if i > 7 {
        panic!("mix overflow");
    }
    Some(i)
}

fn audited(i: u64) -> u64 {
    checked(i).unwrap() // lint:allow(panic-reachability) — bound checked above
}

fn checked(i: u64) -> Option<u64> {
    Some(i.min(7))
}

fn orphan() -> u64 {
    maybe().expect("unreachable from any root, never flagged")
}

fn maybe() -> Option<u64> {
    None
}
