// Fixture: stale-allow detection. Linted under the synthetic path
// crates/sim/src/fixture_stale_allow.rs. An allow that suppresses a
// real violation is consumed; one sitting on a clean line — or naming
// a rule id the engine does not know — is itself flagged.

use std::collections::HashMap;

pub struct Tallies {
    counts: HashMap<u64, u64>,
}

pub fn total(t: &Tallies) -> u64 {
    let mut total = 0;
    for (_, v) in &t.counts { // lint:allow(hash-iteration) — order-free sum
        total += v;
    }
    total // lint:allow(hash-iteration) — suppresses nothing, stale
}

pub fn untouched(x: u64) -> u64 {
    x + 1 // lint:allow(mix-ordering) — unknown rule id, always stale
}
