//! Clean fixture: zero violations under every rule family.

use std::collections::BTreeMap;

/// Deterministic aggregation: BTreeMap iterates in key order.
pub fn total(map: &BTreeMap<u64, u64>) -> u64 {
    map.values().sum()
}

/// Typed fallibility instead of unwrap.
pub fn first_key(map: &BTreeMap<u64, u64>) -> Result<u64, String> {
    map.keys().next().copied().ok_or_else(|| "empty map".to_string())
}
