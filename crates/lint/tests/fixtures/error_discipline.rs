//! Seeded error-discipline violations (lint fixture — never compiled).

pub fn brittle(x: Option<u32>, y: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("y must be set");
    if a > b {
        panic!("a exceeds b");
    }
    a + b
}

pub fn documented(z: Option<u32>) -> u32 {
    z.unwrap() // lint:allow(unwrap) — fixture: annotated sites are exempt
}
