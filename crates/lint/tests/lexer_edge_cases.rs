//! Edge-case tests for the hermetic lexer, exercised through the public
//! API exactly as the rule engine consumes it: the token stream and the
//! blanked per-line code view must both survive the dark corners of
//! Rust's lexical grammar.

use uvm_lint::lexer::{lex, TokenKind};

fn kinds_and_texts(text: &str) -> Vec<(TokenKind, String)> {
    lex(text)
        .tokens
        .iter()
        .map(|t| (t.kind, t.text.clone()))
        .collect()
}

#[test]
fn nested_block_comments_close_at_matching_depth() {
    let lexed = lex("/* outer /* inner */ still a comment */ fn f() {}\n");
    let idents: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(idents, vec!["fn", "f"]);
    // The blanked view keeps only the code after the comment closes.
    assert!(!lexed.lines[0].code.contains("inner"));
    assert!(lexed.lines[0].code.contains("fn f()"));
}

#[test]
fn nested_block_comment_spanning_lines_blanks_every_line() {
    let lexed = lex("/* a /* b\n  c */ d\n*/ let x = 1;\n");
    assert!(lexed.lines[0].code.trim().is_empty());
    assert!(lexed.lines[1].code.trim().is_empty());
    assert!(lexed.lines[2].code.contains("let x = 1;"));
}

#[test]
fn raw_strings_with_hash_fences_swallow_quotes_and_comments() {
    let toks =
        kinds_and_texts("let s = r##\"has \"quote\"# and // not a comment\"##;\nlet t = 1;\n");
    let raw: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::RawStr)
        .collect();
    assert_eq!(raw.len(), 1);
    assert!(raw[0].1.contains("not a comment"));
    // Lexing resumes cleanly after the closing fence.
    assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "t"));
}

#[test]
fn raw_string_contents_never_harvest_allow_annotations() {
    let lexed = lex("let s = r#\"// lint:allow(unwrap) — just text\"#;\nlet x = 1;\n");
    assert!(lexed.lines.iter().all(|l| l.allows.is_empty()));
}

#[test]
fn multi_line_raw_string_blanks_interior_lines() {
    let lexed = lex("let s = r#\"first\nsecond // lint:allow(unwrap)\nthird\"#;\nlet y = 2;\n");
    assert!(lexed.lines.iter().all(|l| l.allows.is_empty()));
    assert!(lexed.lines[1].code.trim().is_empty());
    assert!(lexed.lines[3].code.contains("let y = 2;"));
}

#[test]
fn char_literals_containing_quote_and_slashes_do_not_derail() {
    let toks = kinds_and_texts("let a = '\"'; let b = '/'; let c = '\\''; // done\n");
    let chars: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Char)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(chars, vec!["'\"'", "'/'", "'\\''"]);
    // The trailing comment was recognised (it is not part of any token).
    assert!(!toks.iter().any(|(_, t)| t.contains("done")));
}

#[test]
fn string_containing_line_comment_marker_is_one_token() {
    let lexed = lex("let u = \"a // b\"; let v = 3;\n");
    let strs: Vec<_> = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Str)
        .collect();
    assert_eq!(strs.len(), 1);
    // `v` must still be lexed: the `//` inside the string is not a
    // comment and must not blank the rest of the line.
    assert!(lexed
        .tokens
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "v"));
}

#[test]
fn lifetime_ticks_are_distinct_from_char_literals() {
    let toks = kinds_and_texts("fn f<'a>(x: &'a str) -> &'a str { x }\nconst C: char = 'a';\n");
    let lifetimes = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Lifetime)
        .count();
    let chars = toks.iter().filter(|(k, _)| *k == TokenKind::Char).count();
    assert_eq!(lifetimes, 3);
    assert_eq!(chars, 1);
}

#[test]
fn labelled_loops_lex_the_label_as_a_lifetime() {
    let toks = kinds_and_texts("fn f() { 'outer: loop { break 'outer; } }\n");
    let labels: Vec<_> = toks
        .iter()
        .filter(|(k, _)| *k == TokenKind::Lifetime)
        .map(|(_, t)| t.as_str())
        .collect();
    assert_eq!(labels, vec!["'outer", "'outer"]);
}

#[test]
fn brace_depth_is_tracked_through_literals_with_braces() {
    let lexed = lex("fn f() {\n    let s = \"{ not a block {\";\n    g();\n}\n");
    let g = lexed
        .tokens
        .iter()
        .find(|t| t.kind == TokenKind::Ident && t.text == "g")
        .expect("g token");
    // Braces inside the string must not have bumped the depth: `g` sits
    // directly inside the fn body.
    assert_eq!(g.depth, 1);
}
