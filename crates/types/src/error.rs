//! Error types.

use std::error::Error;
use std::fmt;

use crate::{PageId, TenantId};

/// An invalid configuration parameter.
///
/// # Examples
///
/// ```
/// use uvm_types::SimConfig;
///
/// let err = SimConfig::builder().n_sms(0).build().unwrap_err();
/// assert!(err.to_string().contains("n_sms"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    parameter: &'static str,
    reason: String,
}

impl ConfigError {
    /// Creates an error naming the offending `parameter` and why it is
    /// invalid.
    pub fn invalid(parameter: &'static str, reason: impl Into<String>) -> Self {
        ConfigError {
            parameter,
            reason: reason.into(),
        }
    }

    /// The name of the offending parameter.
    pub fn parameter(&self) -> &str {
        self.parameter
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid configuration parameter `{}`: {}",
            self.parameter, self.reason
        )
    }
}

impl Error for ConfigError {}

/// A structured simulation failure.
///
/// The engine never panics on bad policies, degenerate configurations,
/// or injected faults; every failure mode is reported as one of these
/// variants so chaos campaigns can complete and classify outcomes.
///
/// # Examples
///
/// ```
/// use uvm_types::{ConfigError, SimError};
///
/// let err = SimError::from(ConfigError::invalid("n_sms", "must be nonzero"));
/// assert!(err.to_string().contains("n_sms"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration was rejected by validation.
    Config(ConfigError),
    /// The policy selected a victim that is not resident — a broken
    /// policy residency model.
    NonResidentVictim {
        /// The page the policy offered.
        page: PageId,
        /// Simulated cycle of the selection.
        cycle: u64,
    },
    /// Frames were needed but neither the policy nor the engine-side
    /// fallback could find a resident victim (memory empty).
    NoVictimAvailable {
        /// Simulated cycle of the failed eviction.
        cycle: u64,
    },
    /// A migrated page could not be made resident even after the eviction
    /// loop freed frames — an engine residency-accounting violation.
    ResidencyOverflow {
        /// The page that failed to insert.
        page: PageId,
        /// Simulated cycle of the failure.
        cycle: u64,
    },
    /// The forward-progress watchdog fired: the event loop kept spinning
    /// without retiring an op or completing a fault service (livelock).
    Stalled {
        /// Simulated cycle at which the watchdog fired.
        cycle: u64,
        /// Pages mid-migration when progress stopped.
        in_flight: u64,
    },
    /// The event queue drained while warps were still blocked (deadlock).
    Deadlock {
        /// Simulated cycle at which the queue drained.
        cycle: u64,
        /// Warps left blocked.
        blocked_warps: u64,
    },
    /// The driver's retry policy gave up on a fault completion: every
    /// backoff attempt up to the configured cap was lost in transit.
    RetriesExhausted {
        /// The page whose completion never arrived.
        page: PageId,
        /// Simulated cycle at which the last attempt was abandoned.
        cycle: u64,
        /// Delivery attempts made before giving up.
        attempts: u32,
    },
    /// A resumed simulation did not reproduce the checkpointed state —
    /// the inputs (trace, config, policy, fault plan) differ from the run
    /// that took the snapshot.
    CheckpointDiverged {
        /// The checkpoint cycle at which verification failed.
        cycle: u64,
    },
    /// The runtime sanitizer found a structural invariant broken —
    /// residency accounting, HIR occupancy, chain partitioning, or
    /// recovery state machines are internally inconsistent.
    InvariantViolated {
        /// Short stable name of the violated invariant (e.g.
        /// `residency-conservation`).
        invariant: &'static str,
        /// Human-readable detail: the observed vs expected quantities.
        detail: String,
        /// Simulated cycle at which the check ran.
        cycle: u64,
    },
    /// Admission control shed an arriving tenant instead of committing
    /// quota for it. This is a *contained* outcome: the tenant never ran,
    /// the shared pool is untouched, and the mix continues.
    AdmissionRejected {
        /// The tenant that was turned away.
        tenant: TenantId,
        /// Why admission refused it (quota vs pool, backlog bound, …).
        reason: String,
        /// Arrival time (cycles on the mix clock) of the rejected tenant.
        arrival: u64,
    },
    /// The tenant quota ledger caught an accounting violation: committed
    /// residency for a tenant drifted outside its admitted quota, or the
    /// pool total went out of conservation. Like `InvariantViolated`,
    /// this is reported instead of panicking.
    QuotaViolated {
        /// The tenant whose accounting broke.
        tenant: TenantId,
        /// Pages the ledger has committed for the tenant.
        committed: u64,
        /// The quota the tenant was admitted under.
        quota: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => e.fmt(f),
            SimError::NonResidentVictim { page, cycle } => write!(
                f,
                "policy selected non-resident victim {page} at cycle {cycle}"
            ),
            SimError::NoVictimAvailable { cycle } => write!(
                f,
                "frames needed but no resident victim available at cycle {cycle}"
            ),
            SimError::ResidencyOverflow { page, cycle } => {
                write!(f, "no free frame for migrated page {page} at cycle {cycle}")
            }
            SimError::Stalled { cycle, in_flight } => write!(
                f,
                "simulation stalled at cycle {cycle} with {in_flight} pages in flight"
            ),
            SimError::Deadlock {
                cycle,
                blocked_warps,
            } => write!(
                f,
                "deadlock at cycle {cycle}: {blocked_warps} warps blocked with an empty event queue"
            ),
            SimError::RetriesExhausted {
                page,
                cycle,
                attempts,
            } => write!(
                f,
                "completion for page {page} lost {attempts} times; retries exhausted at cycle {cycle}"
            ),
            SimError::CheckpointDiverged { cycle } => write!(
                f,
                "resumed run diverged from checkpoint taken at cycle {cycle}; inputs differ"
            ),
            SimError::InvariantViolated {
                invariant,
                detail,
                cycle,
            } => write!(
                f,
                "invariant `{invariant}` violated at cycle {cycle}: {detail}"
            ),
            SimError::AdmissionRejected {
                tenant,
                reason,
                arrival,
            } => write!(
                f,
                "tenant {tenant} rejected at admission (arrival {arrival}): {reason}"
            ),
            SimError::QuotaViolated {
                tenant,
                committed,
                quota,
            } => write!(
                f,
                "quota ledger violation for tenant {tenant}: {committed} pages committed against a quota of {quota}"
            ),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl SimError {
    /// Short machine-readable kind label (for JSON campaign reports).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Config(_) => "Config",
            SimError::NonResidentVictim { .. } => "NonResidentVictim",
            SimError::NoVictimAvailable { .. } => "NoVictimAvailable",
            SimError::ResidencyOverflow { .. } => "ResidencyOverflow",
            SimError::Stalled { .. } => "Stalled",
            SimError::Deadlock { .. } => "Deadlock",
            SimError::RetriesExhausted { .. } => "RetriesExhausted",
            SimError::CheckpointDiverged { .. } => "CheckpointDiverged",
            SimError::InvariantViolated { .. } => "InvariantViolated",
            SimError::AdmissionRejected { .. } => "AdmissionRejected",
            SimError::QuotaViolated { .. } => "QuotaViolated",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_parameter_and_reason() {
        let err = ConfigError::invalid("interval_len", "must be nonzero");
        let s = err.to_string();
        assert!(s.contains("interval_len"));
        assert!(s.contains("must be nonzero"));
        assert_eq!(err.parameter(), "interval_len");
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(ConfigError::invalid("x", "y"));
        takes_err(SimError::Stalled {
            cycle: 1,
            in_flight: 2,
        });
    }

    #[test]
    fn sim_error_displays_and_kinds() {
        let cases: Vec<(SimError, &str, &str)> = vec![
            (
                ConfigError::invalid("x", "y").into(),
                "Config",
                "parameter `x`",
            ),
            (
                SimError::NonResidentVictim {
                    page: PageId(7),
                    cycle: 10,
                },
                "NonResidentVictim",
                "non-resident victim",
            ),
            (
                SimError::NoVictimAvailable { cycle: 3 },
                "NoVictimAvailable",
                "no resident victim",
            ),
            (
                SimError::ResidencyOverflow {
                    page: PageId(9),
                    cycle: 4,
                },
                "ResidencyOverflow",
                "no free frame",
            ),
            (
                SimError::Stalled {
                    cycle: 99,
                    in_flight: 2,
                },
                "Stalled",
                "stalled at cycle 99",
            ),
            (
                SimError::Deadlock {
                    cycle: 5,
                    blocked_warps: 3,
                },
                "Deadlock",
                "3 warps blocked",
            ),
            (
                SimError::RetriesExhausted {
                    page: PageId(12),
                    cycle: 77,
                    attempts: 8,
                },
                "RetriesExhausted",
                "lost 8 times",
            ),
            (
                SimError::CheckpointDiverged { cycle: 640 },
                "CheckpointDiverged",
                "checkpoint taken at cycle 640",
            ),
            (
                SimError::InvariantViolated {
                    invariant: "residency-conservation",
                    detail: "resident 5 + in-flight 0 != serviced 9 - evicted 3".to_string(),
                    cycle: 1234,
                },
                "InvariantViolated",
                "invariant `residency-conservation` violated at cycle 1234",
            ),
            (
                SimError::AdmissionRejected {
                    tenant: TenantId(3),
                    reason: "committed quota would exceed the pool bound".to_string(),
                    arrival: 42,
                },
                "AdmissionRejected",
                "tenant T3 rejected at admission (arrival 42)",
            ),
            (
                SimError::QuotaViolated {
                    tenant: TenantId(1),
                    committed: 900,
                    quota: 512,
                },
                "QuotaViolated",
                "900 pages committed against a quota of 512",
            ),
        ];
        for (err, kind, needle) in cases {
            assert_eq!(err.kind(), kind);
            assert!(err.to_string().contains(needle), "{err} missing `{needle}`");
        }
    }

    #[test]
    fn config_error_source_is_preserved() {
        let err: SimError = ConfigError::invalid("a", "b").into();
        assert!(std::error::Error::source(&err).is_some());
    }
}
