//! Error types.

use std::error::Error;
use std::fmt;

/// An invalid configuration parameter.
///
/// # Examples
///
/// ```
/// use uvm_types::SimConfig;
///
/// let err = SimConfig::builder().n_sms(0).build().unwrap_err();
/// assert!(err.to_string().contains("n_sms"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    parameter: &'static str,
    reason: &'static str,
}

impl ConfigError {
    /// Creates an error naming the offending `parameter` and why it is
    /// invalid.
    pub fn invalid(parameter: &'static str, reason: &'static str) -> Self {
        ConfigError { parameter, reason }
    }

    /// The name of the offending parameter.
    pub fn parameter(&self) -> &str {
        self.parameter
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid configuration parameter `{}`: {}",
            self.parameter, self.reason
        )
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_parameter_and_reason() {
        let err = ConfigError::invalid("interval_len", "must be nonzero");
        let s = err.to_string();
        assert!(s.contains("interval_len"));
        assert!(s.contains("must be nonzero"));
        assert_eq!(err.parameter(), "interval_len");
    }

    #[test]
    fn is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(ConfigError::invalid("x", "y"));
    }
}
