//! Tenant vocabulary: identifiers and per-tenant statistics.
//!
//! A *tenant* is one application instance sharing the GPU with others —
//! the "millions of users" axis of the serving story. The tenant layer
//! itself (specs, arrival process, admission control, quota ledger)
//! lives in `uvm-sim`; this module only defines the identifier and the
//! per-tenant statistics container every layer above reports in, so the
//! error type can name tenants without depending on the simulator.

use std::fmt;

use uvm_util::{impl_json_newtype, impl_json_struct};

use crate::SimStats;

/// A tenant identifier, unique within one mix.
///
/// Displays as `T<n>` everywhere (errors, reports, CLI summaries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u64);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl_json_newtype!(TenantId);

/// One tenant's end-to-end result within a mix: its identity and
/// contract echo, the admission outcome, and the simulator statistics
/// of its run (default-zero when it never ran).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: TenantId,
    /// Application abbreviation the tenant ran.
    pub app: String,
    /// Residency quota (pages) the tenant was admitted under.
    pub quota_pages: u64,
    /// Arrival time on the mix clock (cycles).
    pub arrival: u64,
    /// When admission actually let the tenant in (>= `arrival`; equal
    /// when it was admitted immediately, later when it was delayed).
    pub admitted: u64,
    /// Admission outcome label: `"admitted"`, `"delayed"` or
    /// `"rejected"`.
    pub admission: String,
    /// Whether the tenant's simulation completed soundly (`false` for
    /// rejected tenants and contained run failures).
    pub ok: bool,
    /// The `SimError` display text when `ok` is false, else empty.
    pub error: String,
    /// Simulator statistics of the tenant's run (zero when it never
    /// ran).
    pub stats: SimStats,
}

impl_json_struct!(TenantStats {
    tenant = TenantId(0),
    app = String::new(),
    quota_pages = 0,
    arrival = 0,
    admitted = 0,
    admission = String::new(),
    ok = false,
    error = String::new(),
    stats = SimStats::default(),
});

impl TenantStats {
    /// Completion time on the mix clock: admission instant plus the
    /// run's simulated cycles (rejected tenants complete at arrival).
    pub fn completion(&self) -> u64 {
        self.admitted.saturating_add(self.stats.cycles)
    }

    /// Queueing-inflated slowdown: time from arrival to completion over
    /// the run's own service time. 1.0 for a tenant admitted instantly;
    /// grows with admission delay. 0.0 for tenants that never ran.
    pub fn slowdown(&self) -> f64 {
        if self.stats.cycles == 0 {
            return 0.0;
        }
        let span = self.completion().saturating_sub(self.arrival);
        span as f64 / self.stats.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_util::{FromJson, Json, ToJson};

    #[test]
    fn tenant_id_displays_and_roundtrips() {
        let id = TenantId(42);
        assert_eq!(id.to_string(), "T42");
        let back = TenantId::from_json(&id.to_json()).unwrap();
        assert_eq!(back, id);
    }

    #[test]
    fn tenant_stats_roundtrip_and_sparse_default() {
        let s = TenantStats {
            tenant: TenantId(2),
            app: "STN".into(),
            quota_pages: 512,
            arrival: 100,
            admitted: 250,
            admission: "delayed".into(),
            ok: true,
            ..TenantStats::default()
        };
        let text = s.to_json().to_string();
        let back = TenantStats::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        // Sparse document parses to the default.
        let sparse = TenantStats::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(sparse, TenantStats::default());
    }

    #[test]
    fn slowdown_accounts_for_admission_delay() {
        let mut s = TenantStats {
            arrival: 100,
            admitted: 100,
            ..TenantStats::default()
        };
        s.stats.cycles = 1_000;
        assert!((s.slowdown() - 1.0).abs() < 1e-12);
        s.admitted = 600; // delayed 500 cycles
        assert!((s.slowdown() - 1.5).abs() < 1e-12);
        assert_eq!(s.completion(), 1_600);
        let never_ran = TenantStats::default();
        assert_eq!(never_ran.slowdown(), 0.0);
    }
}
