//! Shared vocabulary for the cycle-attribution profiler.
//!
//! The profiler itself lives in `uvm-sim` (`profile.rs`); the account and
//! span-stage enums live here so reports, benches and CLIs can name them
//! without depending on the simulator crate — the same split as
//! [`crate::PolicyEvent`].
//!
//! # Account taxonomy
//!
//! Accounts come in two flavours, distinguished by
//! [`CycleAccount::is_timeline`]:
//!
//! * **Timeline accounts** partition the *driver timeline*: the driver
//!   services at most one fault batch at a time, so its busy windows are
//!   non-overlapping and every simulated cycle belongs to exactly one
//!   timeline account. Their sum equals the run's total simulated cycles
//!   — the conservation law the profiler asserts. `DriverIdle` is the
//!   residual: cycles the driver spent waiting (or dead-scanning, in a
//!   cycle-loop engine) — the "skippable" number that motivates the
//!   event-queue core.
//! * **Overlay accounts** attribute *concurrent* work: SM-side latencies
//!   summed across all warps (which overlap each other and the driver)
//!   and the host-CPU eviction-decision work the paper keeps off the
//!   critical path. They do not participate in the conservation sum.

use uvm_util::impl_json_enum;

/// One component×phase account the profiler charges cycles to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleAccount {
    /// Driver timeline: base fault-service windows (interrupt handling +
    /// the demand migration itself), including injected latency jitter
    /// and tails — they perturb the service time itself.
    FaultService,
    /// Driver timeline: PCIe cycles transferring prefetched and batched
    /// pages beyond the first demand page, including injected congestion.
    PcieTransfer,
    /// Driver timeline: PCIe cycles transferring HIR hit-information
    /// flushes (useful and wasted-on-a-dead-channel alike).
    HirFlush,
    /// Driver timeline: windows spent waiting out lost fault-completion
    /// signals (flat plan re-queues and exponential retry backoff).
    RetryBackoff,
    /// Driver timeline: the residual — cycles with no fault in service.
    /// In a cycle-loop engine these are dead-scanned; in an event-queue
    /// engine they are skipped outright.
    DriverIdle,
    /// Overlay: warp-cycles stalled on a page fault (raise to replay),
    /// summed across warps.
    SmStall,
    /// Overlay: L1/L2 TLB lookup latency on completed translations,
    /// summed across warps.
    SmTlb,
    /// Overlay: page-walk latency (both walk hits and the walks that
    /// discover faults), summed across warps.
    PageWalk,
    /// Overlay: DRAM access latency of completed accesses, summed across
    /// warps.
    SmMem,
    /// Overlay: compute cycles between memory accesses, summed across
    /// warps.
    SmCompute,
    /// Overlay: host-CPU cycles the policy spent deciding evictions
    /// (HPE's chain update); concurrent with the service window, off the
    /// critical path (Section V-C).
    EvictionDecision,
}

impl CycleAccount {
    /// Every account, timeline accounts first, in report order.
    pub const ALL: [CycleAccount; 11] = [
        CycleAccount::FaultService,
        CycleAccount::PcieTransfer,
        CycleAccount::HirFlush,
        CycleAccount::RetryBackoff,
        CycleAccount::DriverIdle,
        CycleAccount::SmStall,
        CycleAccount::SmTlb,
        CycleAccount::PageWalk,
        CycleAccount::SmMem,
        CycleAccount::SmCompute,
        CycleAccount::EvictionDecision,
    ];

    /// Stable snake_case label for reports and folded stacks.
    pub fn label(self) -> &'static str {
        match self {
            CycleAccount::FaultService => "fault_service",
            CycleAccount::PcieTransfer => "pcie_transfer",
            CycleAccount::HirFlush => "hir_flush",
            CycleAccount::RetryBackoff => "retry_backoff",
            CycleAccount::DriverIdle => "driver_idle",
            CycleAccount::SmStall => "sm_stall",
            CycleAccount::SmTlb => "sm_tlb",
            CycleAccount::PageWalk => "page_walk",
            CycleAccount::SmMem => "sm_mem",
            CycleAccount::SmCompute => "sm_compute",
            CycleAccount::EvictionDecision => "eviction_decision",
        }
    }

    /// The component half of the component×phase pair (the folded-stack
    /// root frame).
    pub fn component(self) -> &'static str {
        match self {
            CycleAccount::FaultService | CycleAccount::RetryBackoff | CycleAccount::DriverIdle => {
                "driver"
            }
            CycleAccount::PcieTransfer | CycleAccount::HirFlush => "pcie",
            CycleAccount::SmStall
            | CycleAccount::SmTlb
            | CycleAccount::PageWalk
            | CycleAccount::SmMem
            | CycleAccount::SmCompute => "sm",
            CycleAccount::EvictionDecision => "host",
        }
    }

    /// Whether this account is part of the conserving driver-timeline
    /// partition (see the module docs).
    pub fn is_timeline(self) -> bool {
        matches!(
            self,
            CycleAccount::FaultService
                | CycleAccount::PcieTransfer
                | CycleAccount::HirFlush
                | CycleAccount::RetryBackoff
                | CycleAccount::DriverIdle
        )
    }

    /// Parses a [`CycleAccount::label`] back into the account.
    pub fn parse(label: &str) -> Option<CycleAccount> {
        CycleAccount::ALL.into_iter().find(|a| a.label() == label)
    }
}

impl std::fmt::Display for CycleAccount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl_json_enum!(CycleAccount {
    FaultService,
    PcieTransfer,
    HirFlush,
    RetryBackoff,
    DriverIdle,
    SmStall,
    SmTlb,
    PageWalk,
    SmMem,
    SmCompute,
    EvictionDecision,
});

/// One stage of a fault-lifecycle span (see `uvm-sim`'s `profile`
/// module): a page fault is raised, waits in the driver queue, is
/// serviced (walk + transfer + map), and retires when its page lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanStage {
    /// Raise to service start: time spent queued behind other faults.
    Queue,
    /// Service start to completion: migration (walk + PCIe transfer +
    /// map), including any retry backoff the span suffered.
    Service,
    /// Raise to completion: the whole span.
    Total,
    /// Retry/backoff cycles attributed to this span's completion signal.
    Retry,
}

impl SpanStage {
    /// Every stage, in lifecycle order.
    pub const ALL: [SpanStage; 4] = [
        SpanStage::Queue,
        SpanStage::Service,
        SpanStage::Total,
        SpanStage::Retry,
    ];

    /// Stable snake_case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SpanStage::Queue => "queue",
            SpanStage::Service => "service",
            SpanStage::Total => "total",
            SpanStage::Retry => "retry",
        }
    }
}

impl std::fmt::Display for SpanStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl_json_enum!(SpanStage {
    Queue,
    Service,
    Total,
    Retry,
});

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_util::{FromJson, ToJson};

    #[test]
    fn labels_roundtrip() {
        for a in CycleAccount::ALL {
            assert_eq!(CycleAccount::parse(a.label()), Some(a));
            let back = CycleAccount::from_json(&a.to_json()).unwrap();
            assert_eq!(back, a);
        }
        for s in SpanStage::ALL {
            let back = SpanStage::from_json(&s.to_json()).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn timeline_partition_is_exactly_the_driver_accounts() {
        let timeline: Vec<CycleAccount> = CycleAccount::ALL
            .into_iter()
            .filter(|a| a.is_timeline())
            .collect();
        assert_eq!(timeline.len(), 5);
        assert!(timeline.contains(&CycleAccount::DriverIdle));
        assert!(!CycleAccount::EvictionDecision.is_timeline());
    }
}
