//! Metric containers reported by the simulator and the policies.

use uvm_util::impl_json_struct;

/// TLB hierarchy counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// L1 TLB hits (summed over all SMs).
    pub l1_hits: u64,
    /// L1 TLB misses.
    pub l1_misses: u64,
    /// Shared L2 TLB hits.
    pub l2_hits: u64,
    /// Shared L2 TLB misses (each becomes a page walk).
    pub l2_misses: u64,
}

impl TlbStats {
    /// L1 hit rate in `[0, 1]`, or 0 if there were no lookups.
    pub fn l1_hit_rate(&self) -> f64 {
        ratio(self.l1_hits, self.l1_hits + self.l1_misses)
    }

    /// L2 hit rate in `[0, 1]`, or 0 if there were no lookups.
    pub fn l2_hit_rate(&self) -> f64 {
        ratio(self.l2_hits, self.l2_hits + self.l2_misses)
    }
}

impl_json_struct!(TlbStats {
    l1_hits,
    l1_misses,
    l2_hits,
    l2_misses
});

/// CPU-side driver counters (Section V-C's core-load analysis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Cycles the host core spent busy on fault handling and (for HPE)
    /// chain updates.
    pub busy_cycles: u64,
    /// Distinct page faults serviced.
    pub faults_serviced: u64,
    /// Pages evicted from GPU memory.
    pub evictions: u64,
    /// Evictions that faulted again ("wrong evictions", Section IV-E).
    pub wrong_evictions: u64,
    /// Cycles spent transferring HIR hit information over PCIe (HPE only;
    /// zero for the ideal-model baselines).
    pub hit_transfer_cycles: u64,
    /// Pages migrated by sequential prefetching (0 with prefetch off).
    pub prefetched_pages: u64,
}

impl DriverStats {
    /// Host core load: busy cycles divided by total execution cycles.
    pub fn core_load(&self, total_cycles: u64) -> f64 {
        ratio(self.busy_cycles, total_cycles)
    }
}

impl_json_struct!(DriverStats {
    busy_cycles,
    faults_serviced,
    evictions,
    wrong_evictions,
    hit_transfer_cycles,
    prefetched_pages = 0,
});

/// Resilience and fault-injection counters.
///
/// All fields stay zero on clean runs with no fault plan attached, so
/// attaching a no-op plan leaves [`SimStats`] bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Evictions where the policy offered no victim and the engine fell
    /// back to evicting the lowest resident page itself.
    pub fallback_victims: u64,
    /// Extra fault-service cycles added by injected latency jitter, tail
    /// events, and congestion windows.
    pub injected_delay_cycles: u64,
    /// Fault services that drew an injected tail latency.
    pub tail_latency_events: u64,
    /// Fault services whose PCIe transfer fell inside an injected
    /// congestion window.
    pub congested_services: u64,
    /// Driver completion signals lost and re-serviced (each loss delays
    /// the waiting warps by the plan's retry latency).
    pub completions_lost: u64,
    /// Faults serviced while the injected HIR channel outage was active.
    pub faults_during_hir_outage: u64,
    /// Spurious wrong-eviction signals injected into the policy.
    pub spurious_wrong_evictions: u64,
    /// HIR flushes that left the GPU while the channel was down and never
    /// reached the driver (their PCIe cost was paid for nothing).
    pub hir_flushes_lost: u64,
    /// PCIe cycles burned transferring flushes that were then lost.
    pub wasted_flush_cycles: u64,
    /// Times the driver's HIR circuit breaker tripped open.
    pub circuit_breaker_trips: u64,
    /// HIR flushes the plan delayed in transit (partial outage).
    pub delayed_hir_flushes: u64,
    /// Completion retries scheduled by the driver's backoff policy (only
    /// nonzero when a retry policy is installed on the simulation).
    pub retry_attempts: u64,
    /// Cycles the driver spent waiting in retry backoff.
    pub retry_backoff_cycles: u64,
    /// Victim responses corrupted in transit: the engine discarded the
    /// policy's answer and used its fallback victim instead.
    pub victims_dropped: u64,
}

impl ResilienceStats {
    /// Whether any fault injection or fallback was recorded.
    pub fn any(&self) -> bool {
        *self != ResilienceStats::default()
    }
}

impl_json_struct!(ResilienceStats {
    fallback_victims,
    injected_delay_cycles,
    tail_latency_events,
    congested_services,
    completions_lost,
    faults_during_hir_outage,
    spurious_wrong_evictions,
    hir_flushes_lost = 0,
    wasted_flush_cycles = 0,
    circuit_breaker_trips = 0,
    delayed_hir_flushes = 0,
    retry_attempts = 0,
    retry_backoff_cycles = 0,
    victims_dropped = 0,
});

/// Counters a policy reports about its own operation.
///
/// Policies fill only the fields that apply to them; the rest stay zero.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicyStats {
    /// Victim selections performed.
    pub selections: u64,
    /// Chain-entry comparisons performed across all victim searches
    /// (Fig. 14's search overhead for HPE's MRU-C).
    pub search_comparisons: u64,
    /// HIR flushes to the driver (HPE only).
    pub hir_flushes: u64,
    /// Total HIR entries transferred across all flushes (Fig. 15).
    pub hir_entries_transferred: u64,
    /// HIR insertions lost to way conflicts (Section IV-B issue 2).
    pub hir_conflict_evictions: u64,
    /// Eviction-strategy switches performed by dynamic adjustment (Fig. 13).
    pub strategy_switches: u64,
    /// Intervals during which the LRU strategy was active (HPE only).
    pub intervals_lru: u64,
    /// Intervals during which the MRU-C strategy was active (HPE only).
    pub intervals_mruc: u64,
    /// Page sets divided into primary/secondary (Section IV-C).
    pub page_sets_divided: u64,
    /// Times the policy entered its degraded fallback mode (HPE only).
    pub degraded_entries: u64,
    /// Faults handled while in degraded fallback mode (HPE only).
    pub degraded_faults: u64,
    /// Delayed HIR flushes that arrived within the staleness bound and
    /// were applied late (HPE only).
    pub late_flushes_applied: u64,
    /// Delayed HIR flushes that arrived too stale and were discarded
    /// (HPE only).
    pub stale_flushes_dropped: u64,
    /// Flush boundaries skipped while the HIR circuit breaker was open,
    /// saving their PCIe transfer (HPE only).
    pub suspended_flushes: u64,
}

impl PolicyStats {
    /// Average comparisons per victim search (Fig. 14), or 0 with no
    /// searches.
    pub fn avg_search_comparisons(&self) -> f64 {
        ratio(self.search_comparisons, self.selections)
    }

    /// Average HIR entries transferred per flush (Fig. 15), or 0 with no
    /// flushes.
    pub fn avg_hir_entries_per_flush(&self) -> f64 {
        ratio(self.hir_entries_transferred, self.hir_flushes)
    }
}

impl_json_struct!(PolicyStats {
    selections,
    search_comparisons,
    hir_flushes,
    hir_entries_transferred,
    hir_conflict_evictions,
    strategy_switches,
    intervals_lru,
    intervals_mruc,
    page_sets_divided,
    degraded_entries = 0,
    degraded_faults = 0,
    late_flushes_applied = 0,
    stale_flushes_dropped = 0,
    suspended_flushes = 0,
});

/// End-to-end simulation results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total simulated cycles until every warp retired.
    pub cycles: u64,
    /// Instructions executed (memory + compute).
    pub instructions: u64,
    /// Memory instructions executed.
    pub mem_accesses: u64,
    /// Page walks performed (L2 TLB misses).
    pub walks: u64,
    /// Page walks that hit in the page table (resident pages).
    pub walk_hits: u64,
    /// TLB hierarchy counters.
    pub tlb: TlbStats,
    /// Driver-side counters.
    pub driver: DriverStats,
    /// Policy-side counters.
    pub policy: PolicyStats,
    /// Resilience / fault-injection counters (all zero on clean runs).
    pub resilience: ResilienceStats,
}

impl_json_struct!(SimStats {
    cycles,
    instructions,
    mem_accesses,
    walks,
    walk_hits,
    tlb,
    driver,
    policy,
    resilience = ResilienceStats::default(),
});

impl SimStats {
    /// Instructions per cycle, or 0 for an empty run.
    pub fn ipc(&self) -> f64 {
        ratio(self.instructions, self.cycles)
    }

    /// Page faults serviced (alias for the driver counter, for readability
    /// at call sites comparing policies).
    pub fn faults(&self) -> u64 {
        self.driver.faults_serviced
    }

    /// Pages evicted (alias for the driver counter).
    pub fn evictions(&self) -> u64 {
        self.driver.evictions
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let t = TlbStats::default();
        assert_eq!(t.l1_hit_rate(), 0.0);
        assert_eq!(t.l2_hit_rate(), 0.0);
        let d = DriverStats::default();
        assert_eq!(d.core_load(0), 0.0);
        let p = PolicyStats::default();
        assert_eq!(p.avg_search_comparisons(), 0.0);
        assert_eq!(p.avg_hir_entries_per_flush(), 0.0);
        assert_eq!(SimStats::default().ipc(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let t = TlbStats {
            l1_hits: 3,
            l1_misses: 1,
            l2_hits: 1,
            l2_misses: 3,
        };
        assert!((t.l1_hit_rate() - 0.75).abs() < 1e-12);
        assert!((t.l2_hit_rate() - 0.25).abs() < 1e-12);

        let d = DriverStats {
            busy_cycles: 30,
            ..Default::default()
        };
        assert!((d.core_load(100) - 0.3).abs() < 1e-12);

        let s = SimStats {
            cycles: 100,
            instructions: 250,
            ..Default::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn aliases_track_driver_counters() {
        let mut s = SimStats::default();
        s.driver.faults_serviced = 7;
        s.driver.evictions = 5;
        assert_eq!(s.faults(), 7);
        assert_eq!(s.evictions(), 5);
    }

    #[test]
    fn stats_json_roundtrip() {
        use uvm_util::{FromJson, Json, ToJson};
        let s = SimStats {
            cycles: 100,
            instructions: 250,
            mem_accesses: 60,
            walks: 10,
            walk_hits: 8,
            tlb: TlbStats {
                l1_hits: 3,
                l1_misses: 1,
                l2_hits: 1,
                l2_misses: 3,
            },
            driver: DriverStats {
                busy_cycles: 30,
                faults_serviced: 7,
                evictions: 5,
                wrong_evictions: 2,
                hit_transfer_cycles: 9,
                prefetched_pages: 4,
            },
            policy: PolicyStats {
                selections: 4,
                search_comparisons: 100,
                degraded_entries: 1,
                degraded_faults: 12,
                ..Default::default()
            },
            resilience: ResilienceStats {
                fallback_victims: 1,
                injected_delay_cycles: 500,
                tail_latency_events: 2,
                congested_services: 3,
                completions_lost: 4,
                faults_during_hir_outage: 5,
                spurious_wrong_evictions: 6,
                hir_flushes_lost: 7,
                wasted_flush_cycles: 8,
                circuit_breaker_trips: 1,
                delayed_hir_flushes: 2,
                retry_attempts: 3,
                retry_backoff_cycles: 9,
                victims_dropped: 1,
            },
        };
        let text = s.to_json().to_string();
        let back = SimStats::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        assert!(s.resilience.any());
        assert!(!ResilienceStats::default().any());
    }

    #[test]
    fn stats_parse_without_resilience_defaults_to_zero() {
        use uvm_util::{FromJson, Json, ToJson};
        // Pre-resilience serialized form (older pinned data) still parses;
        // `resilience` serializes last, so cutting it yields the old form.
        let text = SimStats::default().to_json().to_string();
        let cut = text.find(",\"resilience\"").expect("resilience is last");
        let old = format!("{}}}", &text[..cut]);
        let back = SimStats::from_json(&Json::parse(&old).unwrap()).unwrap();
        assert_eq!(back.resilience, ResilienceStats::default());
    }

    #[test]
    fn policy_averages() {
        let p = PolicyStats {
            selections: 4,
            search_comparisons: 100,
            hir_flushes: 2,
            hir_entries_transferred: 30,
            ..Default::default()
        };
        assert!((p.avg_search_comparisons() - 25.0).abs() < 1e-12);
        assert!((p.avg_hir_entries_per_flush() - 15.0).abs() < 1e-12);
    }
}
