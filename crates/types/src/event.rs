//! Policy-decision events: the vocabulary policies use to explain *why*
//! they acted, independent of the simulator that timestamps and sinks
//! them.
//!
//! Policies cannot depend on the simulator crate, so the decision-event
//! types live here in the shared vocabulary. A policy buffers
//! [`PolicyEvent`]s while tracing is enabled; the engine drains the buffer
//! after each policy call, stamps each event with the simulated cycle, and
//! forwards it to the attached observer (see `uvm-sim`).

use uvm_util::{impl_json_enum, Json, JsonError, ToJson};

use crate::PageId;

/// The eviction strategy a decision event is attributed to.
///
/// Mirrors HPE's strategy vocabulary (`LRU` / `MRU-C`); policies outside
/// the HPE family report [`StrategyTag::Native`], meaning "the policy's
/// own replacement logic".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyTag {
    /// The LRU strategy (page set at the LRU position).
    Lru,
    /// The MRU-counter strategy (search from the MRU position).
    MruC,
    /// A non-HPE policy's native replacement logic.
    Native,
    /// HPE's graceful-degradation fallback: driver signals are lost or
    /// undefined, so victims come from plain LRU until signals resume.
    Degraded,
}

impl std::fmt::Display for StrategyTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StrategyTag::Lru => "LRU",
            StrategyTag::MruC => "MRU-C",
            StrategyTag::Native => "native",
            StrategyTag::Degraded => "degraded",
        })
    }
}

impl_json_enum!(StrategyTag {
    Lru,
    MruC,
    Native,
    Degraded
});

/// An out-of-band disruption of the policy's signal path, injected by the
/// simulator's fault plan (or raised by the engine itself for forced
/// evictions). Policies may ignore these entirely; HPE uses them to enter
/// and leave its degraded LRU fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalDisruption {
    /// The GPU-to-driver HIR channel went down: flushes are being lost
    /// until [`SignalDisruption::HirChannelUp`] arrives.
    HirChannelDown,
    /// The HIR channel recovered.
    HirChannelUp,
    /// The engine evicted `page` without consulting the policy (fallback
    /// eviction); the policy should drop it from its residency view.
    ForcedEviction {
        /// The force-evicted page.
        page: PageId,
    },
    /// A spurious wrong-eviction signal reached the driver (chaos
    /// injection modelling a corrupted fault report).
    SpuriousWrongEviction {
        /// Global fault number the spurious signal was attributed to.
        fault_num: u64,
    },
    /// The driver's HIR circuit breaker tripped: enough flushes were lost
    /// in transit that the GPU side should stop transferring flushes (and
    /// stop paying their PCIe cost) until the breaker closes.
    HirCircuitOpen,
    /// The HIR circuit breaker closed again: flush transfers may resume.
    HirCircuitClosed,
    /// The next HIR flush will be delivered late by this many faults
    /// (partial outage: delayed, not dropped). The policy decides whether
    /// a flush that stale is still worth applying.
    HirFlushDelayed {
        /// Delivery delay, in serviced faults.
        faults: u64,
    },
}

/// One policy-internal decision, without a timestamp (the engine stamps
/// it on drain).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyEvent {
    /// The policy picked an eviction victim.
    VictimSelected {
        /// The page chosen for eviction.
        page: PageId,
        /// Strategy that made the choice.
        strategy: StrategyTag,
        /// Entry comparisons spent finding this victim.
        search_comparisons: u64,
        /// Faults elapsed since the victim became resident (0 when the
        /// policy cannot tell).
        victim_age: u64,
    },
    /// Dynamic adjustment switched the active eviction strategy.
    StrategySwitch {
        /// Strategy before the switch.
        from: StrategyTag,
        /// Strategy after the switch.
        to: StrategyTag,
        /// Classification ratio₁ in force at the switch (0 if the policy
        /// never classified).
        ratio1: f64,
        /// Classification ratio₂ in force at the switch.
        ratio2: f64,
        /// Global fault number of the switch.
        fault_num: u64,
    },
    /// The GPU-side HIR cache flushed its records to the driver.
    HirFlush {
        /// Records transferred in this flush.
        entries: u64,
        /// Insertions lost to way conflicts since the previous flush.
        dropped: u64,
    },
}

impl ToJson for PolicyEvent {
    fn to_json(&self) -> Json {
        match *self {
            PolicyEvent::VictimSelected {
                page,
                strategy,
                search_comparisons,
                victim_age,
            } => uvm_util::json!({
                "kind": "VictimSelected",
                "page": page.0,
                "strategy": strategy,
                "search_comparisons": search_comparisons,
                "victim_age": victim_age,
            }),
            PolicyEvent::StrategySwitch {
                from,
                to,
                ratio1,
                ratio2,
                fault_num,
            } => uvm_util::json!({
                "kind": "StrategySwitch",
                "from": from,
                "to": to,
                "ratio1": ratio1,
                "ratio2": ratio2,
                "fault_num": fault_num,
            }),
            PolicyEvent::HirFlush { entries, dropped } => uvm_util::json!({
                "kind": "HirFlush",
                "entries": entries,
                "dropped": dropped,
            }),
        }
    }
}

impl uvm_util::FromJson for PolicyEvent {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let field = |k: &str| {
            v.get(k)
                .ok_or_else(|| JsonError::new(format!("missing field `{k}`")))
        };
        let num = |k: &str| {
            field(k)?
                .as_u64()
                .ok_or_else(|| JsonError::new(format!("field `{k}` must be an unsigned integer")))
        };
        match field("kind")?.as_str() {
            Some("VictimSelected") => Ok(PolicyEvent::VictimSelected {
                page: PageId(num("page")?),
                strategy: StrategyTag::from_json(field("strategy")?)?,
                search_comparisons: num("search_comparisons")?,
                victim_age: num("victim_age")?,
            }),
            Some("StrategySwitch") => Ok(PolicyEvent::StrategySwitch {
                from: StrategyTag::from_json(field("from")?)?,
                to: StrategyTag::from_json(field("to")?)?,
                ratio1: field("ratio1")?
                    .as_f64()
                    .ok_or_else(|| JsonError::new("field `ratio1` must be a number"))?,
                ratio2: field("ratio2")?
                    .as_f64()
                    .ok_or_else(|| JsonError::new("field `ratio2` must be a number"))?,
                fault_num: num("fault_num")?,
            }),
            Some("HirFlush") => Ok(PolicyEvent::HirFlush {
                entries: num("entries")?,
                dropped: num("dropped")?,
            }),
            _ => Err(JsonError::new("unknown PolicyEvent kind")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_util::FromJson;

    #[test]
    fn strategy_tag_displays_and_roundtrips() {
        assert_eq!(StrategyTag::Lru.to_string(), "LRU");
        assert_eq!(StrategyTag::MruC.to_string(), "MRU-C");
        assert_eq!(StrategyTag::Native.to_string(), "native");
        assert_eq!(StrategyTag::Degraded.to_string(), "degraded");
        for tag in [
            StrategyTag::Lru,
            StrategyTag::MruC,
            StrategyTag::Native,
            StrategyTag::Degraded,
        ] {
            assert_eq!(StrategyTag::from_json(&tag.to_json()).unwrap(), tag);
        }
    }

    #[test]
    fn policy_events_roundtrip_through_json() {
        let events = [
            PolicyEvent::VictimSelected {
                page: PageId(42),
                strategy: StrategyTag::MruC,
                search_comparisons: 7,
                victim_age: 130,
            },
            PolicyEvent::StrategySwitch {
                from: StrategyTag::Lru,
                to: StrategyTag::MruC,
                ratio1: 0.25,
                ratio2: 3.5,
                fault_num: 900,
            },
            PolicyEvent::HirFlush {
                entries: 12,
                dropped: 1,
            },
        ];
        for e in events {
            let back = PolicyEvent::from_json(&e.to_json()).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn malformed_policy_event_rejected() {
        let v = Json::parse(r#"{"kind":"Nope"}"#).unwrap();
        assert!(PolicyEvent::from_json(&v).is_err());
        let v = Json::parse(r#"{"kind":"HirFlush","entries":1}"#).unwrap();
        assert!(PolicyEvent::from_json(&v).is_err());
    }
}
