//! Common types for the HPE GPU unified-memory stack.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: virtual addresses, [`PageId`]s and [`PageSetId`]s (the paper's
//! "page set" is a group of virtually contiguous pages, Section IV), the
//! simulated-system configuration of Table I ([`SimConfig`]), and the metric
//! containers the simulator and benchmark harness report.
//!
//! # Examples
//!
//! ```
//! use uvm_types::{PageId, PageSetId, SimConfig};
//!
//! let cfg = SimConfig::paper_default();
//! assert_eq!(cfg.n_sms, 15);
//!
//! let page = PageId(0x8000_3);
//! let set = page.page_set(cfg.page_set_shift());
//! assert_eq!(set, PageSetId(0x8000));
//! assert_eq!(page.set_offset(cfg.page_set_shift()), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod addr;
mod config;
mod error;
mod event;
mod metrics;
mod profile;
mod tenant;

pub use addr::{PageId, PageSetId, VirtAddr, PAGE_SHIFT, PAGE_SIZE};
pub use config::{HirGeometry, Oversubscription, SimConfig, SimConfigBuilder, TlbConfig};
pub use error::{ConfigError, SimError};
pub use event::{PolicyEvent, SignalDisruption, StrategyTag};
pub use metrics::{DriverStats, PolicyStats, ResilienceStats, SimStats, TlbStats};
pub use profile::{CycleAccount, SpanStage};
pub use tenant::{TenantId, TenantStats};
