//! Simulated-system configuration (Table I of the paper).

use uvm_util::{impl_json_struct, FromJson, Json, JsonError, ToJson};

use crate::error::ConfigError;

/// TLB geometry and access latency.
///
/// # Examples
///
/// ```
/// use uvm_types::TlbConfig;
///
/// let l1 = TlbConfig { entries: 128, ways: 128, latency_cycles: 1 };
/// assert_eq!(l1.sets(), 1); // fully associative
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    /// Total number of entries.
    pub entries: u32,
    /// Associativity. `ways == entries` means fully associative.
    pub ways: u32,
    /// Lookup latency in core cycles.
    pub latency_cycles: u32,
}

impl TlbConfig {
    /// Number of sets (`entries / ways`).
    pub fn sets(&self) -> u32 {
        self.entries / self.ways
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `entries` is zero, `ways` is zero, or
    /// `ways` does not divide `entries`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.entries == 0 {
            return Err(ConfigError::invalid("tlb.entries", "must be nonzero"));
        }
        if self.ways == 0 || !self.entries.is_multiple_of(self.ways) {
            return Err(ConfigError::invalid(
                "tlb.ways",
                "must be nonzero and divide entries",
            ));
        }
        Ok(())
    }
}

impl_json_struct!(TlbConfig {
    entries,
    ways,
    latency_cycles
});

/// Geometry of the GPU-side hit-information record cache (HIR, Section IV-B).
///
/// The paper's configuration is an 8-way set-associative cache with 1024
/// entries and 2-bit per-page reference counters (10 KB total).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HirGeometry {
    /// Total number of entries (paper: 1024).
    pub entries: u32,
    /// Associativity (paper: 8).
    pub ways: u32,
    /// Bits per per-page reference counter (paper: 2, saturating at 3).
    pub counter_bits: u32,
}

impl HirGeometry {
    /// The paper's HIR configuration: 1024 entries, 8-way, 2-bit counters.
    pub fn paper_default() -> Self {
        HirGeometry {
            entries: 1024,
            ways: 8,
            counter_bits: 2,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.entries / self.ways
    }

    /// Saturation value of a per-page counter (`2^counter_bits - 1`).
    pub fn counter_max(&self) -> u32 {
        (1 << self.counter_bits) - 1
    }

    /// Storage cost in bytes assuming a 48-bit tag and
    /// `pages_per_set * counter_bits` data bits, rounded up per entry
    /// (Section V-C arrives at 10 bytes/entry for 16 pages × 2 bits).
    pub fn storage_bytes(&self, pages_per_set: u32) -> u64 {
        let bits_per_entry = 48 + pages_per_set as u64 * self.counter_bits as u64;
        self.entries as u64 * bits_per_entry.div_ceil(8)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the geometry is degenerate (zero entries or
    /// ways, ways not dividing entries, or zero-width counters).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.entries == 0 {
            return Err(ConfigError::invalid("hir.entries", "must be nonzero"));
        }
        if self.ways == 0 || !self.entries.is_multiple_of(self.ways) {
            return Err(ConfigError::invalid(
                "hir.ways",
                "must be nonzero and divide entries",
            ));
        }
        if self.counter_bits == 0 || self.counter_bits > 8 {
            return Err(ConfigError::invalid("hir.counter_bits", "must be in 1..=8"));
        }
        Ok(())
    }
}

impl Default for HirGeometry {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl_json_struct!(HirGeometry {
    entries,
    ways,
    counter_bits
});

/// Oversubscription rate: the fraction of the application footprint that
/// fits in GPU memory (Section V evaluates 75% and 50%).
///
/// # Examples
///
/// ```
/// use uvm_types::Oversubscription;
///
/// assert_eq!(Oversubscription::Rate75.capacity_pages(1000), 750);
/// assert_eq!(Oversubscription::Rate50.capacity_pages(1000), 500);
/// // A custom rate clamps capacity to at least one page.
/// assert_eq!(Oversubscription::Custom(0.0001).capacity_pages(1000), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Oversubscription {
    /// 75% of the footprint fits in GPU memory.
    Rate75,
    /// 50% of the footprint fits in GPU memory.
    Rate50,
    /// An arbitrary fraction in `(0, 1]`.
    Custom(f64),
}

impl Oversubscription {
    /// The fraction of the footprint that fits in memory.
    pub fn fraction(self) -> f64 {
        match self {
            Oversubscription::Rate75 => 0.75,
            Oversubscription::Rate50 => 0.50,
            Oversubscription::Custom(f) => f,
        }
    }

    /// GPU memory capacity in pages for a given footprint, at least 1.
    pub fn capacity_pages(self, footprint_pages: u64) -> u64 {
        ((footprint_pages as f64 * self.fraction()).floor() as u64).max(1)
    }

    /// Short label used in benchmark output ("75%", "50%", ...).
    pub fn label(self) -> String {
        match self {
            Oversubscription::Rate75 => "75%".to_string(),
            Oversubscription::Rate50 => "50%".to_string(),
            Oversubscription::Custom(f) => format!("{:.0}%", f * 100.0),
        }
    }
}

// Serialized in serde's externally-tagged form: unit variants as their
// name strings, `Custom(f)` as `{"Custom": f}`.
impl ToJson for Oversubscription {
    fn to_json(&self) -> Json {
        match self {
            Oversubscription::Rate75 => Json::Str("Rate75".to_string()),
            Oversubscription::Rate50 => Json::Str("Rate50".to_string()),
            Oversubscription::Custom(f) => {
                let mut obj = Json::object();
                obj.insert("Custom", f.to_json());
                obj
            }
        }
    }
}

impl FromJson for Oversubscription {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("Rate75") => return Ok(Oversubscription::Rate75),
            Some("Rate50") => return Ok(Oversubscription::Rate50),
            Some(other) => {
                return Err(JsonError::new(format!(
                    "unknown Oversubscription variant '{other}'"
                )))
            }
            None => {}
        }
        match v.get("Custom") {
            Some(f) => Ok(Oversubscription::Custom(f64::from_json(f)?)),
            None => Err(JsonError::new("expected Oversubscription")),
        }
    }
}

/// Configuration of the simulated GPU system (Table I) plus the HPE
/// parameters fixed by the paper's sensitivity study (Section V-A).
///
/// Construct with [`SimConfig::paper_default`] or through
/// [`SimConfig::builder`].
///
/// # Examples
///
/// ```
/// use uvm_types::SimConfig;
///
/// let cfg = SimConfig::builder()
///     .n_sms(4)
///     .warps_per_sm(2)
///     .page_set_size(8)
///     .build()?;
/// assert_eq!(cfg.page_set_shift(), 3);
/// # Ok::<(), uvm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of streaming multiprocessors (Table I: 15).
    pub n_sms: u32,
    /// Warps simulated per SM; each warp is an independent instruction
    /// stream that may continue while others wait on far-faults.
    pub warps_per_sm: u32,
    /// Core clock in GHz (Table I: 1.4).
    pub clock_ghz: f64,
    /// Per-SM L1 TLB (Table I: 128-entry, 1-cycle).
    pub l1_tlb: TlbConfig,
    /// Shared L2 TLB (Table I: 512-entry, 16-way, 10-cycle).
    pub l2_tlb: TlbConfig,
    /// Fixed page walk latency in cycles (Section III: 8).
    pub page_walk_cycles: u32,
    /// Fixed cost of the data access itself once translated, in cycles.
    /// The paper abstracts the data path; this keeps memory ops from being
    /// free without modelling caches.
    pub mem_access_cycles: u32,
    /// Page fault service time in microseconds (Table I: 20 µs), covering
    /// driver interaction, eviction decision, and page migration.
    pub fault_service_us: f64,
    /// CPU–GPU interconnect bandwidth in GB/s (Table I: 16).
    pub pcie_gbps: f64,
    /// Pages per page set (Section V-A selects 16; sensitivity tests 8/32).
    pub page_set_size: u32,
    /// HPE interval length in page faults (Section V-A selects 64).
    pub interval_len: u32,
    /// HIR flush ("transfer") interval in page faults (Section V-A: 16).
    pub transfer_interval: u32,
    /// HIR cache geometry.
    pub hir: HirGeometry,
    /// Sequential fault prefetching: on each demand fault, also migrate up
    /// to this many following contiguous non-resident pages in the same
    /// service (0 = off, the paper's configuration). An extension in the
    /// direction Zheng et al. motivate; extra pages pay PCIe transfer time
    /// and may trigger extra evictions.
    pub prefetch_pages: u32,
    /// Fault batching: the driver services up to this many *queued* demand
    /// faults in one 20 µs window, amortizing the fixed handling cost
    /// (real UVM drivers batch up to 256 faults per interrupt; the paper's
    /// model — and the default here — is 1, one fault per service).
    pub fault_batch: u32,
}

impl SimConfig {
    /// The configuration of Table I with the paper's chosen HPE parameters.
    pub fn paper_default() -> Self {
        SimConfig {
            n_sms: 15,
            warps_per_sm: 8,
            clock_ghz: 1.4,
            l1_tlb: TlbConfig {
                entries: 128,
                ways: 128,
                latency_cycles: 1,
            },
            l2_tlb: TlbConfig {
                entries: 512,
                ways: 16,
                latency_cycles: 10,
            },
            page_walk_cycles: 8,
            mem_access_cycles: 4,
            fault_service_us: 20.0,
            pcie_gbps: 16.0,
            page_set_size: 16,
            interval_len: 64,
            transfer_interval: 16,
            hir: HirGeometry::paper_default(),
            prefetch_pages: 0,
            fault_batch: 1,
        }
    }

    /// The configuration used by the reproduction experiments: identical
    /// latencies and structure to [`SimConfig::paper_default`], but with the
    /// TLB reach and warp count scaled down by the same factor (~8x) as the
    /// workload footprints, so that the ratio of TLB reach to footprint —
    /// which controls how much page reuse the eviction policy can observe
    /// at the page-walk level — matches the paper's setup.
    pub fn scaled_default() -> Self {
        let mut cfg = Self::paper_default();
        cfg.warps_per_sm = 2;
        cfg.l1_tlb = TlbConfig {
            entries: 16,
            ways: 16,
            latency_cycles: 1,
        };
        cfg.l2_tlb = TlbConfig {
            entries: 64,
            ways: 8,
            latency_cycles: 10,
        };
        cfg
    }

    /// Starts building a configuration from [`SimConfig::paper_default`].
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: Self::paper_default(),
        }
    }

    /// `log2(page_set_size)`.
    ///
    /// # Panics
    ///
    /// Panics if `page_set_size` is not a power of two; [`Self::validate`]
    /// rejects such configurations first.
    pub fn page_set_shift(&self) -> u32 {
        assert!(
            self.page_set_size.is_power_of_two(),
            "page_set_size must be a power of two"
        );
        self.page_set_size.trailing_zeros()
    }

    /// Page fault service time converted to GPU core cycles
    /// (20 µs × 1.4 GHz = 28,000 cycles for the paper configuration).
    pub fn fault_service_cycles(&self) -> u64 {
        (self.fault_service_us * 1e-6 * self.clock_ghz * 1e9).round() as u64
    }

    /// Cycles to transfer `bytes` over the CPU–GPU interconnect.
    pub fn pcie_transfer_cycles(&self, bytes: u64) -> u64 {
        let secs = bytes as f64 / (self.pcie_gbps * 1e9);
        (secs * self.clock_ghz * 1e9).ceil() as u64
    }

    /// Validates every field.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the first offending parameter.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_sms == 0 {
            return Err(ConfigError::invalid("n_sms", "must be nonzero"));
        }
        if self.warps_per_sm == 0 {
            return Err(ConfigError::invalid("warps_per_sm", "must be nonzero"));
        }
        if !self.clock_ghz.is_finite() || self.clock_ghz <= 0.0 {
            return Err(ConfigError::invalid("clock_ghz", "must be positive"));
        }
        self.l1_tlb.validate()?;
        self.l2_tlb.validate()?;
        if !self.fault_service_us.is_finite() || self.fault_service_us <= 0.0 {
            return Err(ConfigError::invalid("fault_service_us", "must be positive"));
        }
        if !self.pcie_gbps.is_finite() || self.pcie_gbps <= 0.0 {
            return Err(ConfigError::invalid("pcie_gbps", "must be positive"));
        }
        if !self.page_set_size.is_power_of_two() {
            return Err(ConfigError::invalid(
                "page_set_size",
                "must be a power of two",
            ));
        }
        if self.page_set_size > 64 {
            return Err(ConfigError::invalid(
                "page_set_size",
                "must be at most 64 (bit-vector width)",
            ));
        }
        if self.interval_len == 0 {
            return Err(ConfigError::invalid("interval_len", "must be nonzero"));
        }
        if self.transfer_interval == 0 {
            return Err(ConfigError::invalid("transfer_interval", "must be nonzero"));
        }
        if self.prefetch_pages > 64 {
            return Err(ConfigError::invalid("prefetch_pages", "must be at most 64"));
        }
        if self.fault_batch == 0 || self.fault_batch > 256 {
            return Err(ConfigError::invalid("fault_batch", "must be in 1..=256"));
        }
        self.hir.validate()?;
        Ok(())
    }
}

impl_json_struct!(SimConfig {
    n_sms,
    warps_per_sm,
    clock_ghz,
    l1_tlb,
    l2_tlb,
    page_walk_cycles,
    mem_access_cycles,
    fault_service_us,
    pcie_gbps,
    page_set_size,
    interval_len,
    transfer_interval,
    hir,
    prefetch_pages = 0,
    fault_batch = 1,
});

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Builder for [`SimConfig`]; starts from [`SimConfig::paper_default`].
///
/// # Examples
///
/// ```
/// use uvm_types::SimConfig;
///
/// let cfg = SimConfig::builder().interval_len(128).build()?;
/// assert_eq!(cfg.interval_len, 128);
/// # Ok::<(), uvm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

macro_rules! builder_setters {
    ($($(#[$meta:meta])* $field:ident : $ty:ty),* $(,)?) => {
        $(
            $(#[$meta])*
            pub fn $field(&mut self, value: $ty) -> &mut Self {
                self.cfg.$field = value;
                self
            }
        )*
    };
}

impl SimConfigBuilder {
    builder_setters! {
        /// Sets the number of SMs.
        n_sms: u32,
        /// Sets the number of warps per SM.
        warps_per_sm: u32,
        /// Sets the core clock in GHz.
        clock_ghz: f64,
        /// Sets the per-SM L1 TLB configuration.
        l1_tlb: TlbConfig,
        /// Sets the shared L2 TLB configuration.
        l2_tlb: TlbConfig,
        /// Sets the fixed page walk latency in cycles.
        page_walk_cycles: u32,
        /// Sets the fixed post-translation access cost in cycles.
        mem_access_cycles: u32,
        /// Sets the page fault service time in microseconds.
        fault_service_us: f64,
        /// Sets the interconnect bandwidth in GB/s.
        pcie_gbps: f64,
        /// Sets the number of pages per page set (power of two, ≤ 64).
        page_set_size: u32,
        /// Sets the HPE interval length in page faults.
        interval_len: u32,
        /// Sets the HIR flush interval in page faults.
        transfer_interval: u32,
        /// Sets the HIR geometry.
        hir: HirGeometry,
        /// Sets the sequential prefetch depth (0 disables prefetching).
        prefetch_pages: u32,
        /// Sets the fault batch size (1 = the paper's one-per-service).
        fault_batch: u32,
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is invalid.
    pub fn build(&self) -> Result<SimConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table1() {
        let cfg = SimConfig::paper_default();
        assert_eq!(cfg.n_sms, 15);
        assert!((cfg.clock_ghz - 1.4).abs() < 1e-12);
        assert_eq!(cfg.l1_tlb.entries, 128);
        assert_eq!(cfg.l1_tlb.latency_cycles, 1);
        assert_eq!(cfg.l2_tlb.entries, 512);
        assert_eq!(cfg.l2_tlb.ways, 16);
        assert_eq!(cfg.l2_tlb.latency_cycles, 10);
        assert_eq!(cfg.page_walk_cycles, 8);
        assert!((cfg.fault_service_us - 20.0).abs() < 1e-12);
        assert!((cfg.pcie_gbps - 16.0).abs() < 1e-12);
        assert_eq!(cfg.page_set_size, 16);
        assert_eq!(cfg.interval_len, 64);
        assert_eq!(cfg.transfer_interval, 16);
        cfg.validate().expect("paper default must validate");
    }

    #[test]
    fn scaled_default_preserves_structure() {
        let cfg = SimConfig::scaled_default();
        cfg.validate().expect("scaled default must validate");
        let paper = SimConfig::paper_default();
        // Latencies and HPE parameters unchanged.
        assert_eq!(cfg.page_walk_cycles, paper.page_walk_cycles);
        assert_eq!(cfg.fault_service_us, paper.fault_service_us);
        assert_eq!(cfg.page_set_size, paper.page_set_size);
        assert_eq!(cfg.interval_len, paper.interval_len);
        // L2:L1 reach ratio preserved (512:128 = 64:16 = 4).
        assert_eq!(
            paper.l2_tlb.entries / paper.l1_tlb.entries,
            cfg.l2_tlb.entries / cfg.l1_tlb.entries
        );
    }

    #[test]
    fn fault_service_is_28k_cycles() {
        // 20 µs at 1.4 GHz.
        assert_eq!(SimConfig::paper_default().fault_service_cycles(), 28_000);
    }

    #[test]
    fn pcie_page_transfer_cost() {
        // 4 KB at 16 GB/s = 256 ns = 358.4 cycles at 1.4 GHz, rounded up.
        let cfg = SimConfig::paper_default();
        assert_eq!(cfg.pcie_transfer_cycles(4096), 359);
        assert_eq!(cfg.pcie_transfer_cycles(0), 0);
    }

    #[test]
    fn hir_storage_matches_paper_estimate() {
        // Section V-C: 80 bits = 10 bytes per entry, 1024 entries = 10 KB.
        let hir = HirGeometry::paper_default();
        assert_eq!(hir.storage_bytes(16), 10 * 1024);
        assert_eq!(hir.counter_max(), 3);
        assert_eq!(hir.sets(), 128);
    }

    #[test]
    fn builder_rejects_bad_page_set_size() {
        let err = SimConfig::builder().page_set_size(12).build().unwrap_err();
        assert!(err.to_string().contains("page_set_size"));
        let err = SimConfig::builder().page_set_size(128).build().unwrap_err();
        assert!(err.to_string().contains("page_set_size"));
    }

    #[test]
    fn builder_rejects_zero_fields() {
        assert!(SimConfig::builder().n_sms(0).build().is_err());
        assert!(SimConfig::builder().warps_per_sm(0).build().is_err());
        assert!(SimConfig::builder().interval_len(0).build().is_err());
        assert!(SimConfig::builder().transfer_interval(0).build().is_err());
        assert!(SimConfig::builder().clock_ghz(0.0).build().is_err());
        assert!(SimConfig::builder().fault_service_us(0.0).build().is_err());
        assert!(SimConfig::builder().pcie_gbps(-1.0).build().is_err());
    }

    #[test]
    fn tlb_validate_rejects_nondividing_ways() {
        let tlb = TlbConfig {
            entries: 512,
            ways: 7,
            latency_cycles: 1,
        };
        assert!(tlb.validate().is_err());
        assert!(SimConfig::builder().l2_tlb(tlb).build().is_err());
    }

    #[test]
    fn hir_validate_rejects_degenerate() {
        let mut hir = HirGeometry::paper_default();
        hir.ways = 3;
        assert!(hir.validate().is_err());
        hir = HirGeometry::paper_default();
        hir.counter_bits = 0;
        assert!(hir.validate().is_err());
        hir.counter_bits = 9;
        assert!(hir.validate().is_err());
    }

    #[test]
    fn prefetch_bounds() {
        assert_eq!(SimConfig::paper_default().prefetch_pages, 0);
        assert!(SimConfig::builder().prefetch_pages(8).build().is_ok());
        assert!(SimConfig::builder().prefetch_pages(65).build().is_err());
    }

    #[test]
    fn fault_batch_bounds() {
        assert_eq!(SimConfig::paper_default().fault_batch, 1);
        assert!(SimConfig::builder().fault_batch(256).build().is_ok());
        assert!(SimConfig::builder().fault_batch(0).build().is_err());
        assert!(SimConfig::builder().fault_batch(257).build().is_err());
    }

    #[test]
    fn oversubscription_capacity() {
        assert_eq!(Oversubscription::Rate75.capacity_pages(1024), 768);
        assert_eq!(Oversubscription::Rate50.capacity_pages(1024), 512);
        assert_eq!(Oversubscription::Custom(1.0).capacity_pages(5), 5);
        assert_eq!(Oversubscription::Rate75.label(), "75%");
        assert_eq!(Oversubscription::Rate50.label(), "50%");
        assert_eq!(Oversubscription::Custom(0.25).label(), "25%");
    }

    #[test]
    fn config_json_roundtrip() {
        let cfg = SimConfig::paper_default();
        let json = cfg.to_json().to_string();
        let back = SimConfig::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn config_json_defaults_absent_fields() {
        // prefetch_pages / fault_batch were added after the first snapshot
        // format; older documents omit them.
        let mut j = SimConfig::paper_default().to_json();
        let Json::Object(entries) = &mut j else {
            panic!()
        };
        entries.retain(|(k, _)| k != "prefetch_pages" && k != "fault_batch");
        let back = SimConfig::from_json(&j).unwrap();
        assert_eq!(back.prefetch_pages, 0);
        assert_eq!(back.fault_batch, 1);
    }

    #[test]
    fn oversubscription_json_roundtrip() {
        for o in [
            Oversubscription::Rate75,
            Oversubscription::Rate50,
            Oversubscription::Custom(0.3),
        ] {
            let j = o.to_json();
            let back = Oversubscription::from_json(&j).unwrap();
            assert_eq!(back, o);
        }
        assert!(Oversubscription::from_json(&Json::Str("Rate99".into())).is_err());
    }
}
