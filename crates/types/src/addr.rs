//! Virtual addresses, pages, and page sets.

use std::fmt;

use uvm_util::impl_json_newtype;

/// Base-2 logarithm of the page size: the paper uses 4 KB OS pages
/// (Section III), the default page size of current GPUs.
pub const PAGE_SHIFT: u32 = 12;

/// Page size in bytes (4 KB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// A byte-granular virtual address in the unified address space.
///
/// # Examples
///
/// ```
/// use uvm_types::{VirtAddr, PageId};
///
/// let va = VirtAddr(0x8000_0123);
/// assert_eq!(va.page(), PageId(0x8000_0));
/// assert_eq!(va.page_offset(), 0x123);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VirtAddr(pub u64);

impl VirtAddr {
    /// Returns the virtual page containing this address.
    pub fn page(self) -> PageId {
        PageId(self.0 >> PAGE_SHIFT)
    }

    /// Returns the byte offset of this address within its page.
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

impl From<PageId> for VirtAddr {
    fn from(page: PageId) -> Self {
        VirtAddr(page.0 << PAGE_SHIFT)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A virtual page number (a virtual address shifted right by [`PAGE_SHIFT`]).
///
/// This is the granularity at which demand paging migrates data between CPU
/// and GPU memory and at which the baseline policies (LRU, RRIP, CLOCK-Pro)
/// keep their metadata.
///
/// # Examples
///
/// ```
/// use uvm_types::{PageId, PageSetId};
///
/// // With the paper's default page set size of 16 pages (shift = 4),
/// // pages 0x80000..=0x8000f all belong to page set 0x8000.
/// let page = PageId(0x8000_f);
/// assert_eq!(page.page_set(4), PageSetId(0x8000));
/// assert_eq!(page.set_offset(4), 0xf);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl PageId {
    /// Returns the page set this page belongs to, for a page set of
    /// `1 << set_shift` pages.
    pub fn page_set(self, set_shift: u32) -> PageSetId {
        PageSetId(self.0 >> set_shift)
    }

    /// Returns this page's index within its page set (0-based).
    pub fn set_offset(self, set_shift: u32) -> u32 {
        (self.0 & ((1u64 << set_shift) - 1)) as u32
    }

    /// Returns the base virtual address of this page.
    pub fn base_addr(self) -> VirtAddr {
        VirtAddr::from(self)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:0x{:x}", self.0)
    }
}

/// A page set identifier: a group of `2^k` virtually contiguous pages
/// (Section IV, Definition 1 — analogous to a "chunk" in NVIDIA Pascal).
///
/// HPE manages its chain at page-set rather than page granularity, which
/// both shortens the chain and exposes the spatial locality of contiguous
/// virtual pages.
///
/// # Examples
///
/// ```
/// use uvm_types::{PageId, PageSetId};
///
/// let set = PageSetId(0x8000);
/// let pages: Vec<PageId> = set.pages(4).collect();
/// assert_eq!(pages.len(), 16);
/// assert_eq!(pages[0], PageId(0x80000));
/// assert_eq!(pages[15], PageId(0x8000f));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageSetId(pub u64);

impl PageSetId {
    /// Returns an iterator over the pages of this set in ascending address
    /// order, for a page set of `1 << set_shift` pages.
    ///
    /// HPE evicts the pages of a selected set in exactly this order
    /// (Section IV-A).
    pub fn pages(self, set_shift: u32) -> impl Iterator<Item = PageId> {
        let base = self.0 << set_shift;
        (0..(1u64 << set_shift)).map(move |i| PageId(base + i))
    }

    /// Returns the `index`-th page of this set.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 1 << set_shift`.
    pub fn page_at(self, set_shift: u32, index: u32) -> PageId {
        assert!(
            (index as u64) < (1u64 << set_shift),
            "page index {index} out of range for page set of 2^{set_shift} pages"
        );
        PageId((self.0 << set_shift) + index as u64)
    }
}

impl_json_newtype!(VirtAddr, PageId, PageSetId);

impl fmt::Display for PageSetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "set:0x{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_roundtrip() {
        let va = VirtAddr(0xdead_beef);
        assert_eq!(va.page(), PageId(0xdead_beef >> 12));
        assert_eq!(va.page_offset(), 0xeef);
        let back = VirtAddr::from(va.page());
        assert_eq!(back.0, va.0 & !(PAGE_SIZE - 1));
    }

    #[test]
    fn page_set_membership_matches_paper_example() {
        // Paper Section IV: "page set 8000 with a size of 16 constitutes
        // virtual pages 80000, 80001, ..., 8000f".
        let set = PageSetId(0x8000);
        for (i, page) in set.pages(4).enumerate() {
            assert_eq!(page, PageId(0x80000 + i as u64));
            assert_eq!(page.page_set(4), set);
            assert_eq!(page.set_offset(4), i as u32);
        }
    }

    #[test]
    fn page_at_agrees_with_pages_iter() {
        let set = PageSetId(77);
        for shift in [3u32, 4, 5] {
            let via_iter: Vec<PageId> = set.pages(shift).collect();
            for (i, want) in via_iter.iter().enumerate() {
                assert_eq!(set.page_at(shift, i as u32), *want);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn page_at_rejects_out_of_range() {
        PageSetId(1).page_at(4, 16);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", VirtAddr(0)).is_empty());
        assert!(!format!("{}", PageId(0)).is_empty());
        assert!(!format!("{}", PageSetId(0)).is_empty());
    }

    #[test]
    fn set_shift_zero_makes_singleton_sets() {
        // Degenerate configuration: one page per set.
        let p = PageId(42);
        assert_eq!(p.page_set(0), PageSetId(42));
        assert_eq!(p.set_offset(0), 0);
        assert_eq!(PageSetId(42).pages(0).count(), 1);
    }
}
