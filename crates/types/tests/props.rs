//! Property-based tests for the address/page/page-set arithmetic.

use proptest::prelude::*;
use uvm_types::{Oversubscription, PageId, PageSetId, VirtAddr, PAGE_SIZE};

proptest! {
    #[test]
    fn addr_page_offset_roundtrip(addr in 0u64..(1u64 << 52)) {
        let va = VirtAddr(addr);
        let page = va.page();
        let off = va.page_offset();
        prop_assert!(off < PAGE_SIZE);
        prop_assert_eq!(VirtAddr::from(page).0 + off, addr);
    }

    #[test]
    fn page_set_partition_is_exact(page in 0u64..(1u64 << 40), shift in 0u32..7) {
        let p = PageId(page);
        let set = p.page_set(shift);
        let off = p.set_offset(shift);
        prop_assert!(u64::from(off) < (1u64 << shift));
        prop_assert_eq!(set.page_at(shift, off), p);
        // Every page of the set maps back to the set.
        for q in set.pages(shift) {
            prop_assert_eq!(q.page_set(shift), set);
        }
    }

    #[test]
    fn set_pages_are_contiguous_and_sorted(set in 0u64..(1u64 << 30), shift in 0u32..7) {
        let pages: Vec<PageId> = PageSetId(set).pages(shift).collect();
        prop_assert_eq!(pages.len() as u64, 1u64 << shift);
        for w in pages.windows(2) {
            prop_assert_eq!(w[1].0, w[0].0 + 1);
        }
    }

    #[test]
    fn capacity_is_monotone_in_rate_and_footprint(
        footprint in 1u64..1_000_000,
        f1 in 0.01f64..1.0,
        f2 in 0.01f64..1.0,
    ) {
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let c_lo = Oversubscription::Custom(lo).capacity_pages(footprint);
        let c_hi = Oversubscription::Custom(hi).capacity_pages(footprint);
        prop_assert!(c_lo <= c_hi);
        prop_assert!(c_hi <= footprint);
        prop_assert!(c_lo >= 1);
    }
}
