//! Property-based tests for the address/page/page-set arithmetic.

use uvm_types::{Oversubscription, PageId, PageSetId, VirtAddr, PAGE_SIZE};
use uvm_util::prop::Checker;

#[test]
fn addr_page_offset_roundtrip() {
    Checker::new().run(
        |rng| rng.gen_range(0u64..(1u64 << 52)),
        |&addr| {
            let va = VirtAddr(addr);
            let page = va.page();
            let off = va.page_offset();
            assert!(off < PAGE_SIZE);
            assert_eq!(VirtAddr::from(page).0 + off, addr);
        },
    );
}

#[test]
fn page_set_partition_is_exact() {
    Checker::new().run(
        |rng| (rng.gen_range(0u64..(1u64 << 40)), rng.gen_range(0u32..7)),
        |&(page, shift)| {
            let p = PageId(page);
            let set = p.page_set(shift);
            let off = p.set_offset(shift);
            assert!(u64::from(off) < (1u64 << shift));
            assert_eq!(set.page_at(shift, off), p);
            // Every page of the set maps back to the set.
            for q in set.pages(shift) {
                assert_eq!(q.page_set(shift), set);
            }
        },
    );
}

#[test]
fn set_pages_are_contiguous_and_sorted() {
    Checker::new().run(
        |rng| (rng.gen_range(0u64..(1u64 << 30)), rng.gen_range(0u32..7)),
        |&(set, shift)| {
            let pages: Vec<PageId> = PageSetId(set).pages(shift).collect();
            assert_eq!(pages.len() as u64, 1u64 << shift);
            for w in pages.windows(2) {
                assert_eq!(w[1].0, w[0].0 + 1);
            }
        },
    );
}

#[test]
fn capacity_is_monotone_in_rate_and_footprint() {
    Checker::new().run(
        |rng| {
            (
                rng.gen_range(1u64..1_000_000),
                rng.gen_range(0.01f64..1.0),
                rng.gen_range(0.01f64..1.0),
            )
        },
        |&(footprint, f1, f2)| {
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            let c_lo = Oversubscription::Custom(lo).capacity_pages(footprint);
            let c_hi = Oversubscription::Custom(hi).capacity_pages(footprint);
            assert!(c_lo <= c_hi);
            assert!(c_hi <= footprint);
            assert!(c_lo >= 1);
        },
    );
}
