//! Deterministic mid-run snapshots of a simulation.
//!
//! The engine's determinism contract (same inputs + same seeds → a
//! byte-identical run) makes checkpointing cheap: instead of serializing
//! every queue, TLB and policy structure, a [`Checkpoint`] records *where*
//! the run was paused plus enough state fingerprints to prove a resumed
//! run reconstructed the identical machine. `Simulation::resume` replays
//! the same inputs up to [`Checkpoint::cycle`], regenerates the snapshot,
//! and byte-compares the two JSON forms; any mismatch (different trace,
//! config, policy or fault plan) surfaces as
//! [`uvm_types::SimError::CheckpointDiverged`] instead of silently
//! producing a different run.
//!
//! The most sensitive hidden state is carried explicitly so divergence
//! cannot hide: the fault plan's RNG words (every injected perturbation
//! depends on the exact stream position), the completion-loss streak, the
//! HIR channel and circuit-breaker state, and the driver's retry-attempt
//! counter.
//!
//! # Examples
//!
//! ```
//! use uvm_sim::Checkpoint;
//! use uvm_util::{FromJson, ToJson};
//!
//! let ckpt = Checkpoint::default();
//! let text = ckpt.to_json().to_string();
//! let back = Checkpoint::from_json(&uvm_util::Json::parse(&text).unwrap()).unwrap();
//! assert_eq!(back.to_json().to_string(), text);
//! ```

use uvm_types::SimStats;
use uvm_util::impl_json_struct;

/// A snapshot of a paused simulation, taken by `Simulation::checkpoint`
/// after `Simulation::run_until` returned without completing.
///
/// Serializes to deterministic JSON (insertion-ordered keys); two
/// checkpoints of the same machine state are byte-identical, which is
/// exactly how `Simulation::resume` verifies a resumed run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    /// The cycle limit the run was paused at (`run_until`'s argument).
    /// Resuming replays events with `time <= cycle` — replaying to
    /// `now` instead would be wrong, as later events below the limit may
    /// already have been processed.
    pub cycle: u64,
    /// Simulated clock of the last processed event (`<= cycle`).
    pub now: u64,
    /// Statistics at the pause (policy counters not yet folded in; they
    /// are folded only when a run finishes).
    pub stats: SimStats,
    /// xoshiro256** state words of the fault plan's RNG stream (empty
    /// when no plan is installed).
    pub fault_rng: Vec<u64>,
    /// Consecutive completion losses for the in-service fault.
    pub fault_lost_in_row: u32,
    /// Whether the injected HIR outage was active at the pause.
    pub hir_down: bool,
    /// HIR circuit-breaker failure count.
    pub breaker_failures: u32,
    /// Whether the HIR circuit breaker was open.
    pub breaker_open: bool,
    /// Backoff attempts made for the in-service fault's completion.
    pub completion_attempts: u32,
    /// Event sequence counter (total events ever scheduled).
    pub next_seq: u64,
    /// Warps still running.
    pub live_warps: u64,
    /// Pages resident in GPU memory.
    pub resident_pages: u64,
    /// Pages mid-migration.
    pub in_flight: u64,
    /// Faults waiting in the driver queue.
    pub queue_len: u64,
    /// Pages tracked by the LRU fallback shadow (0 unless enabled).
    pub shadow_pages: u64,
    /// Logical clock of the LRU fallback shadow.
    pub shadow_clock: u64,
    /// Outcome bits of the adaptive-retry loss estimator (0 unless
    /// `RetryPolicy::Adaptive` is installed).
    pub loss_bits: u64,
    /// Outcomes the adaptive-retry loss estimator has observed.
    pub loss_len: u32,
}

impl_json_struct!(Checkpoint {
    cycle = 0,
    now = 0,
    stats = SimStats::default(),
    fault_rng = Vec::new(),
    fault_lost_in_row = 0,
    hir_down = false,
    breaker_failures = 0,
    breaker_open = false,
    completion_attempts = 0,
    next_seq = 0,
    live_warps = 0,
    resident_pages = 0,
    in_flight = 0,
    queue_len = 0,
    shadow_pages = 0,
    shadow_clock = 0,
    loss_bits = 0,
    loss_len = 0,
});

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_util::{FromJson, Json, ToJson};

    #[test]
    fn json_roundtrip_is_byte_identical() {
        let ckpt = Checkpoint {
            cycle: 1_000_000,
            now: 999_972,
            stats: SimStats {
                cycles: 999_972,
                instructions: 1234,
                ..SimStats::default()
            },
            fault_rng: vec![1, 2, 3, 4],
            fault_lost_in_row: 2,
            hir_down: true,
            breaker_failures: 1,
            breaker_open: false,
            completion_attempts: 3,
            next_seq: 500,
            live_warps: 6,
            resident_pages: 576,
            in_flight: 1,
            queue_len: 4,
            shadow_pages: 576,
            shadow_clock: 4_000,
            loss_bits: 0b1011,
            loss_len: 4,
        };
        let text = ckpt.to_json().to_string();
        let back = Checkpoint::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn sparse_json_fills_defaults() {
        let sparse = Json::parse(r#"{"cycle": 42, "fault_rng": [9]}"#).unwrap();
        let c = Checkpoint::from_json(&sparse).unwrap();
        assert_eq!(c.cycle, 42);
        assert_eq!(c.fault_rng, vec![9]);
        assert_eq!(c.stats, SimStats::default());
        assert!(!c.hir_down);
    }
}
