//! Trace sinks: composable observers over the simulation event stream.
//!
//! Everything here implements [`SimObserver`] and can be attached to a
//! [`Simulation`](crate::Simulation) directly or fanned out through a
//! [`MultiObserver`]:
//!
//! * [`EventCounters`] — counters only, one `u64` increment per event;
//!   the cheapest way to answer "how many of each kind".
//! * [`IntervalCollector`] — windowed time series (faults, evictions,
//!   wrong evictions, ... per cycle- or fault-count bucket).
//! * [`TraceHistograms`] — fixed-bucket distributions (inter-fault gap,
//!   page residency lifetime, victim age, search comparisons, HIR flush
//!   sizes) built on [`uvm_util::Histogram`].
//! * [`JsonlWriter`] — one compact JSON object per event, newline
//!   delimited; [`parse_jsonl`] reads the stream back.
//!
//! All sinks serialize through [`uvm_util::json`], so their output is
//! deterministic for a deterministic simulation.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::rc::Rc;

use uvm_types::PageId;
use uvm_util::{json, Histogram, Json, JsonError, ToJson};

use crate::observer::{SimEvent, SimObserver};

/// Fans every event out to multiple observers, in attachment order.
///
/// # Examples
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use uvm_sim::{EventCounters, EventLog, MultiObserver, SimEvent, SimObserver};
/// use uvm_types::PageId;
///
/// let log = Rc::new(RefCell::new(EventLog::new()));
/// let counters = Rc::new(RefCell::new(EventCounters::default()));
/// let mut multi = MultiObserver::new();
/// multi.push(log.clone());
/// multi.push(counters.clone());
/// multi.on_event(SimEvent::FaultRaised { time: 1, page: PageId(7) });
/// assert_eq!(log.borrow().fault_count(), 1);
/// assert_eq!(counters.borrow().faults_raised, 1);
/// ```
#[derive(Debug, Default)]
pub struct MultiObserver {
    sinks: Vec<Rc<RefCell<dyn SimObserver>>>,
}

impl MultiObserver {
    /// Creates an empty fan-out.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink; it receives every subsequent event.
    pub fn push(&mut self, sink: Rc<RefCell<dyn SimObserver>>) {
        self.sinks.push(sink);
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sink is attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl SimObserver for MultiObserver {
    fn on_event(&mut self, event: SimEvent) {
        for sink in &self.sinks {
            sink.borrow_mut().on_event(event);
        }
    }
}

/// A counters-only sink: one integer increment per event, no allocation.
///
/// This is the near-zero-cost way to watch a run; attach it when only
/// totals matter and the full [`EventLog`](crate::EventLog) would be
/// wasteful.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EventCounters {
    /// `FaultRaised` events.
    pub faults_raised: u64,
    /// `FaultServiced` events.
    pub faults_serviced: u64,
    /// `Eviction` events.
    pub evictions: u64,
    /// `MemoryFull` events.
    pub memory_full: u64,
    /// `PageWalk` events.
    pub page_walks: u64,
    /// `PageWalk` events with `hit == true`.
    pub walk_hits: u64,
    /// `PrefetchIssued` events.
    pub prefetches: u64,
    /// `WrongEviction` events.
    pub wrong_evictions: u64,
    /// `VictimSelected` events.
    pub victims_selected: u64,
    /// `StrategySwitch` events.
    pub strategy_switches: u64,
    /// `HirFlush` events.
    pub hir_flushes: u64,
    /// Sum of `entries` across `HirFlush` events.
    pub hir_entries: u64,
    /// Sum of `dropped` across `HirFlush` events.
    pub hir_dropped: u64,
}

uvm_util::impl_json_struct!(EventCounters {
    faults_raised,
    faults_serviced,
    evictions,
    memory_full,
    page_walks,
    walk_hits,
    prefetches,
    wrong_evictions,
    victims_selected,
    strategy_switches,
    hir_flushes,
    hir_entries = 0,
    hir_dropped = 0,
});

impl EventCounters {
    /// Total events observed.
    pub fn total(&self) -> u64 {
        self.faults_raised
            + self.faults_serviced
            + self.evictions
            + self.memory_full
            + self.page_walks
            + self.prefetches
            + self.wrong_evictions
            + self.victims_selected
            + self.strategy_switches
            + self.hir_flushes
    }
}

impl SimObserver for EventCounters {
    fn on_event(&mut self, event: SimEvent) {
        match event {
            SimEvent::FaultRaised { .. } => self.faults_raised += 1,
            SimEvent::FaultServiced { .. } => self.faults_serviced += 1,
            SimEvent::Eviction { .. } => self.evictions += 1,
            SimEvent::MemoryFull { .. } => self.memory_full += 1,
            SimEvent::PageWalk { hit, .. } => {
                self.page_walks += 1;
                if hit {
                    self.walk_hits += 1;
                }
            }
            SimEvent::PrefetchIssued { .. } => self.prefetches += 1,
            SimEvent::WrongEviction { .. } => self.wrong_evictions += 1,
            SimEvent::VictimSelected { .. } => self.victims_selected += 1,
            SimEvent::StrategySwitch { .. } => self.strategy_switches += 1,
            SimEvent::HirFlush {
                entries, dropped, ..
            } => {
                self.hir_flushes += 1;
                self.hir_entries += entries;
                self.hir_dropped += dropped;
            }
        }
    }
}

/// How an [`IntervalCollector`] assigns events to windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalKey {
    /// Fixed windows of this many simulated cycles.
    Cycles(u64),
    /// Fixed windows of this many raised faults (the paper's interval
    /// clock: HPE rotates partitions every `interval_len` faults, so
    /// fault-indexed series line up with policy phases).
    Faults(u64),
}

impl IntervalKey {
    fn width(self) -> u64 {
        match self {
            IntervalKey::Cycles(w) | IntervalKey::Faults(w) => w,
        }
    }

    fn name(self) -> &'static str {
        match self {
            IntervalKey::Cycles(_) => "cycles",
            IntervalKey::Faults(_) => "faults",
        }
    }
}

/// One window of an [`IntervalCollector`] series.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IntervalRow {
    /// Faults raised in the window.
    pub faults: u64,
    /// Pages made resident (demand + prefetch).
    pub serviced: u64,
    /// Evictions.
    pub evictions: u64,
    /// Wrong evictions (re-fault on a recently evicted page).
    pub wrong_evictions: u64,
    /// Prefetched pages.
    pub prefetches: u64,
    /// Page-table walks.
    pub walks: u64,
    /// Walks that hit a resident page.
    pub walk_hits: u64,
    /// HIR records flushed to the driver.
    pub hir_entries: u64,
    /// Strategy switches.
    pub strategy_switches: u64,
}

/// Windowed time series over the event stream.
///
/// Events fall into fixed-width buckets keyed by simulated cycle or by
/// running fault count ([`IntervalKey`]); each bucket accumulates an
/// [`IntervalRow`]. Serialization is columnar: one array per field, all
/// the same length, ready for plotting or diffing.
///
/// # Examples
///
/// ```
/// use uvm_sim::{IntervalCollector, IntervalKey, SimEvent, SimObserver};
/// use uvm_types::PageId;
///
/// let mut iv = IntervalCollector::new(IntervalKey::Cycles(100));
/// iv.on_event(SimEvent::FaultRaised { time: 10, page: PageId(1) });
/// iv.on_event(SimEvent::FaultRaised { time: 250, page: PageId(2) });
/// let faults: Vec<u64> = iv.rows().iter().map(|r| r.faults).collect();
/// assert_eq!(faults, vec![1, 0, 1]);
/// ```
#[derive(Debug)]
pub struct IntervalCollector {
    key: IntervalKey,
    rows: Vec<IntervalRow>,
    faults_seen: u64,
}

impl IntervalCollector {
    /// Creates a collector with the given bucketing.
    ///
    /// # Panics
    ///
    /// Panics if the window width is zero.
    pub fn new(key: IntervalKey) -> Self {
        assert!(key.width() > 0, "interval width must be nonzero");
        IntervalCollector {
            key,
            rows: Vec::new(),
            faults_seen: 0,
        }
    }

    /// The bucketing in use.
    pub fn key(&self) -> IntervalKey {
        self.key
    }

    /// The accumulated windows, oldest first.
    pub fn rows(&self) -> &[IntervalRow] {
        &self.rows
    }

    fn row(&mut self, time: u64) -> &mut IntervalRow {
        let pos = match self.key {
            IntervalKey::Cycles(w) => time / w,
            IntervalKey::Faults(w) => self.faults_seen / w,
        } as usize;
        if pos >= self.rows.len() {
            self.rows.resize(pos + 1, IntervalRow::default());
        }
        &mut self.rows[pos]
    }
}

impl SimObserver for IntervalCollector {
    fn on_event(&mut self, event: SimEvent) {
        let time = event.time();
        match event {
            SimEvent::FaultRaised { .. } => {
                self.row(time).faults += 1;
                self.faults_seen += 1;
            }
            SimEvent::FaultServiced { .. } => self.row(time).serviced += 1,
            SimEvent::Eviction { .. } => self.row(time).evictions += 1,
            SimEvent::MemoryFull { .. } => {}
            SimEvent::PageWalk { hit, .. } => {
                let row = self.row(time);
                row.walks += 1;
                if hit {
                    row.walk_hits += 1;
                }
            }
            SimEvent::PrefetchIssued { .. } => self.row(time).prefetches += 1,
            SimEvent::WrongEviction { .. } => self.row(time).wrong_evictions += 1,
            SimEvent::VictimSelected { .. } => {}
            SimEvent::StrategySwitch { .. } => self.row(time).strategy_switches += 1,
            SimEvent::HirFlush { entries, .. } => self.row(time).hir_entries += entries,
        }
    }
}

impl ToJson for IntervalCollector {
    fn to_json(&self) -> Json {
        macro_rules! column {
            ($field:ident) => {
                Json::Array(
                    self.rows
                        .iter()
                        .map(|r| Json::UInt(r.$field))
                        .collect::<Vec<_>>(),
                )
            };
        }
        json!({
            "key": self.key.name(),
            "width": self.key.width(),
            "intervals": self.rows.len() as u64,
            "series": json!({
                "faults": column!(faults),
                "serviced": column!(serviced),
                "evictions": column!(evictions),
                "wrong_evictions": column!(wrong_evictions),
                "prefetches": column!(prefetches),
                "walks": column!(walks),
                "walk_hits": column!(walk_hits),
                "hir_entries": column!(hir_entries),
                "strategy_switches": column!(strategy_switches),
            }),
        })
    }
}

/// Distribution sink: fixed-bucket histograms over the event stream.
///
/// Records five distributions:
///
/// * `inter_fault_cycles` — gap between consecutive `FaultRaised` events,
/// * `residency_cycles` — lifetime of a page from `FaultServiced` to its
///   `Eviction` (pages never evicted are not recorded),
/// * `victim_age_faults` — `victim_age` of each `VictimSelected`,
/// * `search_comparisons` — comparisons of each `VictimSelected`,
/// * `hir_flush_entries` — `entries` of each `HirFlush`.
#[derive(Debug)]
pub struct TraceHistograms {
    inter_fault: Histogram,
    residency: Histogram,
    victim_age: Histogram,
    search_comparisons: Histogram,
    hir_flush_entries: Histogram,
    last_fault_time: Option<u64>,
    serviced_at: HashMap<PageId, u64>,
}

impl TraceHistograms {
    /// Creates the sink with bucket geometry sized for the scaled paper
    /// workloads (fault service ≈ 28 k cycles).
    pub fn new() -> Self {
        TraceHistograms {
            inter_fault: Histogram::new("inter_fault_cycles", 4_096, 64),
            residency: Histogram::new("residency_cycles", 65_536, 64),
            victim_age: Histogram::new("victim_age_faults", 16, 64),
            search_comparisons: Histogram::new("search_comparisons", 4, 64),
            hir_flush_entries: Histogram::new("hir_flush_entries", 4, 64),
            last_fault_time: None,
            serviced_at: HashMap::new(),
        }
    }

    /// Gap between consecutive raised faults, in cycles.
    pub fn inter_fault(&self) -> &Histogram {
        &self.inter_fault
    }

    /// Page lifetime from service to eviction, in cycles.
    pub fn residency(&self) -> &Histogram {
        &self.residency
    }

    /// Victim ages, in faults since the victim became resident.
    pub fn victim_age(&self) -> &Histogram {
        &self.victim_age
    }

    /// Comparisons spent per victim search.
    pub fn search_comparisons(&self) -> &Histogram {
        &self.search_comparisons
    }

    /// Records transferred per HIR flush.
    pub fn hir_flush_entries(&self) -> &Histogram {
        &self.hir_flush_entries
    }
}

impl Default for TraceHistograms {
    fn default() -> Self {
        Self::new()
    }
}

impl SimObserver for TraceHistograms {
    fn on_event(&mut self, event: SimEvent) {
        match event {
            SimEvent::FaultRaised { time, .. } => {
                if let Some(last) = self.last_fault_time {
                    self.inter_fault.record(time.saturating_sub(last));
                }
                self.last_fault_time = Some(time);
            }
            SimEvent::FaultServiced { time, page } => {
                self.serviced_at.insert(page, time);
            }
            SimEvent::Eviction { time, page } => {
                if let Some(at) = self.serviced_at.remove(&page) {
                    self.residency.record(time.saturating_sub(at));
                }
            }
            SimEvent::VictimSelected {
                search_comparisons,
                victim_age,
                ..
            } => {
                self.victim_age.record(victim_age);
                self.search_comparisons.record(search_comparisons);
            }
            SimEvent::HirFlush { entries, .. } => {
                self.hir_flush_entries.record(entries);
            }
            _ => {}
        }
    }
}

impl ToJson for TraceHistograms {
    fn to_json(&self) -> Json {
        json!({
            "inter_fault_cycles": self.inter_fault,
            "residency_cycles": self.residency,
            "victim_age_faults": self.victim_age,
            "search_comparisons": self.search_comparisons,
            "hir_flush_entries": self.hir_flush_entries,
        })
    }
}

/// Streams every event as one compact JSON object per line (JSONL).
///
/// Output is deterministic: a deterministic simulation produces
/// byte-identical files across runs. Write errors are held and reported
/// through [`JsonlWriter::take_error`] (the observer callback cannot
/// fail); once an error occurs, further events are dropped.
pub struct JsonlWriter<W: io::Write> {
    out: W,
    lines: u64,
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlWriter<W> {
    /// Wraps `out`.
    pub fn new(out: W) -> Self {
        JsonlWriter {
            out,
            lines: 0,
            error: None,
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// The first write error, if any (taking it clears the fuse).
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Flushes and unwraps the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the first deferred write error or the flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: io::Write> std::fmt::Debug for JsonlWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlWriter")
            .field("lines", &self.lines)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl<W: io::Write> SimObserver for JsonlWriter<W> {
    fn on_event(&mut self, event: SimEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json().to_string();
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
            return;
        }
        self.lines += 1;
    }
}

/// Parses a JSONL event stream produced by [`JsonlWriter`]. Blank lines
/// are skipped.
///
/// # Errors
///
/// Returns [`JsonError`] naming the first malformed line (1-based).
pub fn parse_jsonl(text: &str) -> Result<Vec<SimEvent>, JsonError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|e| JsonError::new(format!("line {}: {e}", i + 1)))?;
        let e = uvm_util::FromJson::from_json(&v)
            .map_err(|e| JsonError::new(format!("line {}: {e}", i + 1)))?;
        events.push(e);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uvm_types::StrategyTag;
    use uvm_util::FromJson;

    fn sample_events() -> Vec<SimEvent> {
        vec![
            SimEvent::FaultRaised {
                time: 10,
                page: PageId(1),
            },
            SimEvent::PageWalk {
                time: 10,
                page: PageId(1),
                hit: false,
            },
            SimEvent::FaultServiced {
                time: 40,
                page: PageId(1),
            },
            SimEvent::FaultRaised {
                time: 120,
                page: PageId(2),
            },
            SimEvent::PrefetchIssued {
                time: 120,
                page: PageId(3),
            },
            SimEvent::VictimSelected {
                time: 150,
                page: PageId(1),
                strategy: StrategyTag::MruC,
                search_comparisons: 3,
                victim_age: 2,
            },
            SimEvent::Eviction {
                time: 150,
                page: PageId(1),
            },
            SimEvent::WrongEviction {
                time: 200,
                page: PageId(1),
                refault_distance: 1,
            },
            SimEvent::HirFlush {
                time: 220,
                entries: 5,
                dropped: 1,
            },
            SimEvent::StrategySwitch {
                time: 230,
                from: StrategyTag::MruC,
                to: StrategyTag::Lru,
                ratio1: 0.2,
                ratio2: 2.0,
                fault_num: 64,
            },
            SimEvent::MemoryFull { time: 240 },
        ]
    }

    #[test]
    fn counters_count_every_kind() {
        let mut c = EventCounters::default();
        for e in sample_events() {
            c.on_event(e);
        }
        assert_eq!(c.faults_raised, 2);
        assert_eq!(c.faults_serviced, 1);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.memory_full, 1);
        assert_eq!(c.page_walks, 1);
        assert_eq!(c.walk_hits, 0);
        assert_eq!(c.prefetches, 1);
        assert_eq!(c.wrong_evictions, 1);
        assert_eq!(c.victims_selected, 1);
        assert_eq!(c.strategy_switches, 1);
        assert_eq!(c.hir_flushes, 1);
        assert_eq!(c.hir_entries, 5);
        assert_eq!(c.hir_dropped, 1);
        assert_eq!(c.total(), 11);
        let back = EventCounters::from_json(&c.to_json()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn multi_observer_fans_out_in_order() {
        let a = Rc::new(RefCell::new(EventCounters::default()));
        let b = Rc::new(RefCell::new(crate::EventLog::new()));
        let mut multi = MultiObserver::new();
        assert!(multi.is_empty());
        multi.push(a.clone());
        multi.push(b.clone());
        assert_eq!(multi.len(), 2);
        for e in sample_events() {
            multi.on_event(e);
        }
        assert_eq!(a.borrow().total(), 11);
        assert_eq!(b.borrow().events().len(), 11);
    }

    #[test]
    fn interval_collector_buckets_by_cycles() {
        let mut iv = IntervalCollector::new(IntervalKey::Cycles(100));
        for e in sample_events() {
            iv.on_event(e);
        }
        // Buckets: [0,100) [100,200) [200,300).
        assert_eq!(iv.rows().len(), 3);
        assert_eq!(iv.rows()[0].faults, 1);
        assert_eq!(iv.rows()[1].faults, 1);
        assert_eq!(iv.rows()[1].evictions, 1);
        assert_eq!(iv.rows()[2].wrong_evictions, 1);
        assert_eq!(iv.rows()[2].hir_entries, 5);
        assert_eq!(iv.rows()[2].strategy_switches, 1);
        let j = iv.to_json();
        assert_eq!(j["key"].as_str(), Some("cycles"));
        assert_eq!(j["width"].as_u64(), Some(100));
        assert_eq!(j["intervals"].as_u64(), Some(3));
        let faults: Vec<u64> = Vec::from_json(&j["series"]["faults"]).unwrap();
        assert_eq!(faults, vec![1, 1, 0]);
    }

    #[test]
    fn interval_collector_buckets_by_faults() {
        let mut iv = IntervalCollector::new(IntervalKey::Faults(2));
        for n in 0..5u64 {
            iv.on_event(SimEvent::FaultRaised {
                time: n * 1000,
                page: PageId(n),
            });
            iv.on_event(SimEvent::Eviction {
                time: n * 1000 + 1,
                page: PageId(n),
            });
        }
        // 5 faults in windows of 2 -> 3 windows; evictions follow the
        // fault clock, with eviction n landing after fault n advanced it.
        let faults: Vec<u64> = iv.rows().iter().map(|r| r.faults).collect();
        assert_eq!(faults, vec![2, 2, 1]);
        let evictions: Vec<u64> = iv.rows().iter().map(|r| r.evictions).collect();
        assert_eq!(evictions.iter().sum::<u64>(), 5);
    }

    #[test]
    #[should_panic(expected = "interval width must be nonzero")]
    fn interval_collector_rejects_zero_width() {
        IntervalCollector::new(IntervalKey::Faults(0));
    }

    #[test]
    fn histograms_record_distributions() {
        let mut h = TraceHistograms::new();
        for e in sample_events() {
            h.on_event(e);
        }
        assert_eq!(h.inter_fault().count(), 1); // one gap between two faults
        assert_eq!(h.inter_fault().sum(), 110);
        assert_eq!(h.residency().count(), 1); // page 1: serviced 40, evicted 150
        assert_eq!(h.residency().sum(), 110);
        assert_eq!(h.victim_age().count(), 1);
        assert_eq!(h.search_comparisons().sum(), 3);
        assert_eq!(h.hir_flush_entries().sum(), 5);
        let j = h.to_json();
        assert_eq!(j["victim_age_faults"]["count"].as_u64(), Some(1));
    }

    #[test]
    fn jsonl_roundtrips_and_is_deterministic() {
        let write = || {
            let mut w = JsonlWriter::new(Vec::new());
            for e in sample_events() {
                w.on_event(e);
            }
            assert_eq!(w.lines(), 11);
            w.finish().unwrap()
        };
        let bytes = write();
        assert_eq!(bytes, write(), "same events -> byte-identical JSONL");
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 11);
        let back = parse_jsonl(&text).unwrap();
        assert_eq!(back, sample_events());
    }

    #[test]
    fn parse_jsonl_reports_bad_line() {
        let err = parse_jsonl("{\"kind\":\"MemoryFull\",\"time\":1}\nnot json\n").unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn empty_run_histograms_are_well_formed() {
        // A run that raises no events must still summarize and export
        // cleanly: zero counts, no quantiles, valid JSON and rendering.
        let h = TraceHistograms::new();
        assert_eq!(h.inter_fault().count(), 0);
        assert_eq!(h.residency().count(), 0);
        assert_eq!(h.victim_age().quantile(0.99), None);
        for hist in [
            h.inter_fault(),
            h.residency(),
            h.victim_age(),
            h.search_comparisons(),
            h.hir_flush_entries(),
        ] {
            let rendered = hist.render();
            assert!(rendered.contains("0 samples"), "rendered: {rendered}");
            assert!(rendered.contains("min -"), "rendered: {rendered}");
        }
        let j = h.to_json();
        assert_eq!(j["inter_fault_cycles"]["count"].as_u64(), Some(0));
    }

    #[test]
    fn parse_jsonl_accepts_empty_and_blank_input() {
        assert_eq!(parse_jsonl("").unwrap(), Vec::new());
        assert_eq!(parse_jsonl("\n  \n\n").unwrap(), Vec::new());
    }

    #[test]
    fn parse_jsonl_rejects_truncated_line() {
        // A stream cut off mid-object (crashed writer) names the line.
        let good = "{\"kind\":\"MemoryFull\",\"time\":1}\n";
        let truncated = format!("{good}{}", &good[..good.len() / 2]);
        let err = parse_jsonl(&truncated).unwrap_err();
        assert!(err.to_string().contains("line 2"), "error: {err}");
    }

    #[test]
    fn parse_jsonl_rejects_valid_json_of_the_wrong_shape() {
        // Structurally valid JSON lines that are not events: unknown
        // kind, missing fields, and a non-object. Each names its line.
        for (line, lineno) in [
            ("{\"kind\":\"NotAnEvent\",\"time\":1}", "line 1"),
            ("{\"kind\":\"FaultRaised\"}", "line 1"),
            ("[1,2,3]", "line 1"),
        ] {
            let err = parse_jsonl(line).unwrap_err();
            assert!(err.to_string().contains(lineno), "error: {err}");
        }
        // And after a good line, the bad line number advances.
        let err =
            parse_jsonl("{\"kind\":\"MemoryFull\",\"time\":1}\n{\"kind\":\"Nope\"}").unwrap_err();
        assert!(err.to_string().contains("line 2"), "error: {err}");
    }
}
